//! A domain scenario: a bank analyst asks several natural-language questions
//! against the `financial` database and SEED supplies the missing domain
//! knowledge (issuance codes, gender codes, loan status codes) automatically.
//!
//! ```bash
//! cargo run --release --example financial_analyst
//! ```

use seed_datasets::{bird::build_bird, CorpusConfig, Question, Split};
use seed_eval::{evaluate_pair, score_set};
use seed_repro::core::SeedPipeline;
use seed_text2sql::{Chess, ChessConfig, GenerationContext, Text2SqlSystem};

fn main() {
    let bench = build_bird(&CorpusConfig::tiny());
    let train: Vec<&Question> = bench.split(Split::Train);
    let db = bench.database("financial").unwrap();
    let questions: Vec<&Question> = bench.split_for_db(Split::Dev, "financial");

    let seed = SeedPipeline::gpt();
    let analyst_system = Chess::new(ChessConfig::IrCgUt);

    let mut without = Vec::new();
    let mut with_seed = Vec::new();
    for q in &questions {
        let evidence = seed.generate(q, db, &train, true);
        let ctx_no =
            GenerationContext { question: q, database: db, evidence: None, train_pool: &train };
        let ctx_seed = GenerationContext {
            question: q,
            database: db,
            evidence: Some(&evidence.evidence),
            train_pool: &train,
        };
        without.push(evaluate_pair(db, &q.gold_sql, &analyst_system.generate(&ctx_no)));
        with_seed.push(evaluate_pair(db, &q.gold_sql, &analyst_system.generate(&ctx_seed)));
    }

    let s_no = score_set(&without);
    let s_seed = score_set(&with_seed);
    println!(
        "financial-analyst workload ({} questions) with {}:",
        questions.len(),
        analyst_system.name()
    );
    println!("  without evidence : EX {:.1}%  VES {:.1}%", s_no.ex, s_no.ves);
    println!("  with SEED        : EX {:.1}%  VES {:.1}%", s_seed.ex, s_seed.ves);
    println!("\nExample of generated evidence for the first question:");
    let first = questions[0];
    let e = seed.generate(first, db, &train, true);
    println!("  Q: {}", first.text);
    println!("  E: {}", e.evidence);
}
