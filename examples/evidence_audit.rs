//! Reproduces the paper's evidence audit workflow on the synthetic BIRD dev
//! set: measure how much human evidence is missing or defective, list example
//! defects, and quantify the impact of correcting them on a fine-tuned model.
//!
//! ```bash
//! cargo run --release --example evidence_audit
//! ```

use seed_datasets::{bird::build_bird, CorpusConfig, EvidenceStatus, Split};
use seed_eval::{
    analyze_evidence_defects, error_analysis::defect_examples, EvidenceSetting, ExperimentRunner,
};
use seed_text2sql::{CodeS, Text2SqlSystem};

fn main() {
    let bench = build_bird(&CorpusConfig::tiny());
    let dev = bench.split(Split::Dev);

    // 1. Figure-2-style audit.
    let breakdown = analyze_evidence_defects(dev.iter().copied());
    println!("evidence audit over {} dev questions:", breakdown.total);
    println!("  correct   : {:>5.2}%", breakdown.correct_rate());
    println!("  missing   : {:>5.2}%", breakdown.missing_rate());
    println!("  erroneous : {:>5.2}%", breakdown.erroneous_rate());
    for (label, count) in &breakdown.by_error_type {
        println!("    - {label}: {count}");
    }

    // 2. A few concrete defect examples (Table I style).
    println!("\nexample defects:");
    for (q, error) in defect_examples(dev.iter().copied()).into_iter().take(3) {
        println!("  [{}] {}", error.label(), q.text);
        println!(
            "    shipped  : {}",
            if q.human_evidence.text.is_empty() { "(none)" } else { &q.human_evidence.text }
        );
        println!("    corrected: {}", q.human_evidence.corrected);
    }

    // 3. Table-II-style impact measurement on the erroneous subset.
    let runner = ExperimentRunner::new(&bench, Split::Dev);
    let system = CodeS::new(7);
    let erroneous = |q: &seed_datasets::Question| {
        matches!(q.human_evidence.status, EvidenceStatus::Erroneous(_))
    };
    let defective = runner.evaluate_filtered(&system, EvidenceSetting::BirdEvidence, erroneous);
    let corrected = runner.evaluate_filtered(&system, EvidenceSetting::BirdCorrected, erroneous);
    println!(
        "\n{} on the erroneous pairs: EX {:.2}% with defective evidence, {:.2}% after correction",
        system.name(),
        defective.scores.ex,
        corrected.scores.ex
    );
}
