//! Quickstart: generate evidence for one question with SEED and feed it to a
//! text-to-SQL system.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use seed_datasets::{bird::build_bird, CorpusConfig, Question, Split};
use seed_eval::evaluate_pair;
use seed_repro::core::SeedPipeline;
use seed_text2sql::{CodeS, GenerationContext, Text2SqlSystem};

fn main() {
    // 1. Build the synthetic BIRD-like corpus (databases + questions).
    let bench = build_bird(&CorpusConfig::tiny());
    let train: Vec<&Question> = bench.split(Split::Train);

    // 2. Pick a dev question that needs domain knowledge.
    let question = bench
        .split(Split::Dev)
        .into_iter()
        .find(|q| q.db_id == "financial" && q.text.contains("weekly issuance"))
        .expect("weekly-issuance question");
    let db = bench.database(&question.db_id).unwrap();
    println!("question : {}", question.text);
    println!("gold SQL : {}\n", question.gold_sql);

    // 3. Generate evidence automatically with SEED (no human evidence used).
    let seed = SeedPipeline::gpt();
    let generated = seed.generate(question, db, &train, bench.has_descriptions);
    println!("SEED evidence: {}\n", generated.evidence);

    // 4. Translate the question with CodeS, with and without that evidence.
    let system = CodeS::new(7);
    for (label, evidence) in
        [("without evidence", None), ("with SEED evidence", Some(generated.evidence.as_str()))]
    {
        let ctx = GenerationContext { question, database: db, evidence, train_pool: &train };
        let sql = system.generate(&ctx);
        let eval = evaluate_pair(db, &question.gold_sql, &sql);
        println!("{label}:");
        println!("  predicted SQL: {sql}");
        println!("  correct: {}\n", eval.correct);
    }
}
