//! SEED on a Spider-style benchmark that ships no description files: first
//! synthesize descriptions from the database values (the paper does this with
//! DeepSeek-V3), then generate evidence and measure the improvement for a
//! zero-shot system.
//!
//! ```bash
//! cargo run --release --example spider_no_descriptions
//! ```

use seed_datasets::{spider::build_spider, spider::synthesize_descriptions, CorpusConfig, Split};
use seed_eval::{EvidenceSetting, ExperimentRunner};
use seed_repro::core::SeedVariant;
use seed_text2sql::{Text2SqlSystem, C3};

fn main() {
    let mut bench = build_spider(&CorpusConfig::tiny());
    println!(
        "Spider-style corpus: {} databases, {} questions, descriptions shipped: {}",
        bench.databases.len(),
        bench.questions.len(),
        bench.has_descriptions
    );

    // Step 1: synthesize description files from the data itself.
    synthesize_descriptions(&mut bench);
    let singer_country = bench
        .database("concert_singer")
        .unwrap()
        .schema()
        .table("singer")
        .unwrap()
        .column("country")
        .unwrap()
        .value_description
        .clone();
    println!("synthesized description for singer.country: {singer_country}");

    // Step 2: evaluate C3 with and without SEED evidence on the dev split.
    let runner = ExperimentRunner::new(&bench, Split::Dev).with_seed_variants(&[SeedVariant::Gpt]);
    let system = C3::new();
    let plain = runner.evaluate(&system, EvidenceSetting::WithoutEvidence);
    let seeded = runner.evaluate(&system, EvidenceSetting::SeedGpt);
    println!(
        "\n{} on Spider dev ({} questions): EX {:.1}% without SEED, {:.1}% with SEED_gpt",
        system.name(),
        plain.scores.n,
        plain.scores.ex,
        seeded.scores.ex
    );
}
