//! Write-path determinism for the `seed-serve` runtime: a seeded mixed
//! read/write batch must produce **identical per-statement results in
//! submission order and an identical final snapshot** at 1, 2, and 8
//! workers.
//!
//! Contract under test (see `crates/serve/README.md`, "Sessions, snapshots
//! and writes"):
//! * `execute_batch` splits a batch into read runs separated by write
//!   barriers; writes commit serially in submission order under the commit
//!   gate, read runs execute in parallel against the snapshot pinned at the
//!   run's start — so concurrency can reorder *scheduling*, never
//!   *observable results*;
//! * the final published snapshot (rows of every table, version epoch) is a
//!   pure function of the submitted batch, independent of worker count;
//! * a `Session` pins its snapshot at open: concurrent commits through the
//!   server never move an open session's view, while the session's own
//!   writes re-pin it (read-your-writes).

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use seed_repro::serve::{ServeConfig, Server};
use seed_repro::sqlengine::{ColumnDef, DataType, Database, TableSchema, Value};

/// A two-table base snapshot with enough seed rows that reads return
/// non-trivial results before the batch's own inserts land.
fn base_snapshot() -> Arc<Database> {
    let mut db = Database::new("writes");
    for name in ["accounts", "events"] {
        db.create_table(TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("k", DataType::Text),
                ColumnDef::new("amount", DataType::Integer),
            ],
        ))
        .unwrap();
    }
    for i in 0..40i64 {
        let word = ["alpha", "beta", "gamma", "delta", "epsilon"][(i % 5) as usize];
        db.insert("accounts", vec![Value::Integer(i), Value::text(word), Value::Integer(i * 7)])
            .unwrap();
        db.insert("events", vec![Value::Integer(i), Value::text(word), Value::Integer(i % 11)])
            .unwrap();
    }
    Arc::new(db)
}

const READS: &[&str] = &[
    "SELECT id, k, amount FROM accounts",
    "SELECT k, COUNT(*), SUM(amount) FROM accounts GROUP BY k ORDER BY 1",
    "SELECT a.id, e.amount FROM accounts AS a INNER JOIN events AS e ON a.k = e.k \
     WHERE a.amount > 50",
    "SELECT id FROM events WHERE EXISTS \
     (SELECT 1 FROM accounts WHERE accounts.id = events.id AND accounts.amount > 100)",
    "SELECT COUNT(*) FROM events",
];

/// A seeded mixed batch: reads drawn from the battery interleaved with
/// writes that mint deterministic unique ids. Built once and replayed
/// verbatim at every worker count — determinism must come from the server,
/// not from the generator.
fn mixed_batch(seed: u64, len: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = 1000i64;
    let mut batch = Vec::with_capacity(len);
    for i in 0..len {
        let roll: u32 = rng.gen_range(0..10);
        let stmt = match roll {
            // ~40% writes keeps several read-run/write-barrier alternations
            // in even a short batch.
            0 | 1 => {
                let id = next_id;
                next_id += 1;
                let table = if id % 2 == 0 { "accounts" } else { "events" };
                format!("INSERT INTO {table} VALUES ({id}, 'minted', {})", id % 13)
            }
            2 => format!("UPDATE accounts SET amount = amount + {} WHERE id <= {}", i, i % 37),
            3 => format!("DELETE FROM events WHERE id = {}", rng.gen_range(0..60)),
            _ => READS[rng.gen_range(0..READS.len())].to_string(),
        };
        batch.push(stmt);
    }
    let mut tail: Vec<String> = READS.iter().map(|s| s.to_string()).collect();
    tail.shuffle(&mut rng);
    batch.extend(tail); // end on reads so the final snapshot is observed
    batch
}

/// One statement outcome reduced to its observable content.
type Observed = Result<(Vec<String>, Vec<Vec<String>>), String>;

fn rendered(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter().map(|r| r.iter().map(Value::render).collect()).collect()
}

fn observe(server: &Server, batch: &[String]) -> (Vec<Observed>, Vec<Vec<Vec<String>>>, u64) {
    let outcomes = server.execute_batch(batch);
    assert_eq!(outcomes.len(), batch.len());
    let observed: Vec<Observed> = outcomes
        .iter()
        .map(|o| match o {
            Ok(out) => Ok((out.result.columns.clone(), rendered(&out.result.rows))),
            Err(e) => Err(format!("{e:?}")),
        })
        .collect();
    let snapshot = server.database();
    let tables: Vec<Vec<Vec<String>>> = snapshot
        .table_names()
        .into_iter()
        .map(|n| rendered(snapshot.table(&n).unwrap().rows()))
        .collect();
    (observed, tables, server.snapshot_version())
}

/// The headline gate: identical per-statement results (submission order)
/// and an identical final snapshot at 1, 2, and 8 workers, across several
/// seeds. Oversubscription keeps the pool machinery genuinely concurrent
/// even on small CI hosts.
#[test]
fn mixed_batches_are_deterministic_across_worker_counts() {
    for seed in [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003] {
        let batch = mixed_batch(seed, 64);
        assert!(batch.iter().any(|s| seed_repro::sqlengine::is_write_statement(s)));
        let base = base_snapshot();
        let reference = {
            let server = Server::new(Arc::clone(&base), ServeConfig::serial());
            observe(&server, &batch)
        };
        for workers in [1usize, 2, 8] {
            let server = Server::new(
                Arc::clone(&base),
                ServeConfig::default().with_workers(workers).oversubscribed(),
            );
            let run = observe(&server, &batch);
            for (i, (got, want)) in run.0.iter().zip(&reference.0).enumerate() {
                assert_eq!(
                    got, want,
                    "statement {i} diverged at {workers} workers (seed {seed:#x}): {}",
                    batch[i]
                );
            }
            assert_eq!(run.1, reference.1, "final snapshot diverged at {workers} workers");
            assert_eq!(run.2, reference.2, "snapshot version diverged at {workers} workers");
            // Writes must never be served from the result cache.
            let distinct_reads: HashSet<&String> =
                batch.iter().filter(|s| !seed_repro::sqlengine::is_write_statement(s)).collect();
            let reads = batch.len()
                - batch.iter().filter(|s| seed_repro::sqlengine::is_write_statement(s)).count();
            assert!(
                server.snapshot_stats().result_cache_hits
                    <= (reads - distinct_reads.len().min(reads)) as u64,
                "cache hits cannot exceed repeated reads"
            );
        }
    }
}

/// Session pinning: commits through the server never move an open
/// session's snapshot; the session's own write re-pins it.
#[test]
fn sessions_pin_snapshots_and_read_their_own_writes() {
    let server = Server::new(base_snapshot(), ServeConfig::serial());
    let mut session = server.session();
    let pinned_version = session.snapshot_version();
    let before: Vec<Observed> = READS
        .iter()
        .map(|sql| {
            let out = session.execute(sql).unwrap();
            Ok((out.result.columns, rendered(&out.result.rows)))
        })
        .collect();

    // A concurrent writer commits through the server.
    for sql in [
        "INSERT INTO accounts VALUES (900, 'late', 1)",
        "DELETE FROM events WHERE id <= 5",
        "UPDATE accounts SET amount = 0 WHERE k = 'alpha'",
    ] {
        server.execute(sql).unwrap();
    }
    assert!(server.snapshot_version() > pinned_version);

    // The open session is frozen at its pin: same version, same results.
    assert_eq!(session.snapshot_version(), pinned_version);
    for (sql, want) in READS.iter().zip(&before) {
        let out = session.execute(sql).unwrap();
        let got: Observed = Ok((out.result.columns, rendered(&out.result.rows)));
        assert_eq!(&got, want, "pinned session result moved on {sql}");
    }

    // The session's own write re-pins to the latest snapshot: it reads its
    // own write *and* every commit published before it.
    session.execute("INSERT INTO accounts VALUES (901, 'mine', 2)").unwrap();
    assert!(session.snapshot_version() > pinned_version);
    let out = session.execute("SELECT id, k FROM accounts WHERE id >= 900 ORDER BY id").unwrap();
    assert_eq!(
        rendered(&out.result.rows),
        vec![
            vec!["900".to_string(), "late".to_string()],
            vec!["901".to_string(), "mine".to_string()]
        ]
    );

    // A freshly opened session pins the latest snapshot.
    let mut fresh = server.session();
    assert_eq!(fresh.snapshot_version(), server.snapshot_version());
    let out = fresh.execute("SELECT COUNT(*) FROM accounts WHERE k = 'alpha'").unwrap();
    // All alpha rows were zeroed by the earlier UPDATE; count is unchanged.
    assert_eq!(out.result.rows[0][0], Value::Integer(8));
}

/// Session batches: reads before the first write see the session's pin,
/// and the segmented batch is deterministic at every worker count.
#[test]
fn session_batches_segment_reads_around_writes() {
    let batch: Vec<String> = vec![
        "SELECT COUNT(*) FROM accounts".into(),
        "INSERT INTO accounts VALUES (700, 'batch', 7)".into(),
        "SELECT COUNT(*) FROM accounts".into(),
        "DELETE FROM accounts WHERE id = 700".into(),
        "SELECT COUNT(*) FROM accounts".into(),
    ];
    let mut reference: Option<Vec<Vec<Vec<String>>>> = None;
    for workers in [1usize, 2, 8] {
        let server = Server::new(
            base_snapshot(),
            ServeConfig::default().with_workers(workers).oversubscribed(),
        );
        let mut session = server.session();
        let outcomes = session.execute_batch(&batch);
        let got: Vec<Vec<Vec<String>>> =
            outcomes.iter().map(|o| rendered(&o.as_ref().unwrap().result.rows)).collect();
        // 40 seed rows, +1 after the insert, back to 40 after the delete.
        assert_eq!(got[0], vec![vec!["40".to_string()]]);
        assert_eq!(got[2], vec![vec!["41".to_string()]]);
        assert_eq!(got[4], vec![vec!["40".to_string()]]);
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "session batch diverged at {workers} workers"),
        }
        // The session ends pinned at the batch's final snapshot.
        assert_eq!(session.snapshot_version(), server.snapshot_version());
    }
}
