//! Determinism suite for the `seed-serve` runtime and the parallel eval
//! runner: concurrency must never change what a query returns or what an
//! eval run scores.
//!
//! Contract under test (see `crates/serve/README.md`):
//! * `Server::execute_batch` returns, for every statement, rows and columns
//!   byte-identical to a direct serial execution in the server's own plan
//!   mode (the columnar serving default), in submission order, at any
//!   worker count — including under a seeded shuffle of the submission
//!   order;
//! * the cost-bearing work counters (and hence `ExecStats::cost`) are
//!   identical too, so VES-style accounting cannot drift under concurrency;
//! * with in-flight dedup, `result_cache_hits` is **exact** — `statements −
//!   distinct statements` — at every worker count, not merely
//!   scheduling-dependently close;
//! * `ExperimentRunner::evaluate_parallel` produces `Scores` equal to the
//!   serial runner on both gold corpora at 1, 2, and 8 workers.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seed_repro::datasets::Split;
use seed_repro::datasets::{bird::build_bird, spider::build_spider, Benchmark, CorpusConfig};
use seed_repro::eval::{EvidenceSetting, ExperimentRunner, Scores};
use seed_repro::serve::{ServeConfig, Server};
use seed_repro::sqlengine::{execute_with_stats_mode, PlanMode};
use seed_repro::text2sql::CodeS;

fn corpora() -> Vec<Benchmark> {
    vec![build_bird(&CorpusConfig::tiny()), build_spider(&CorpusConfig::tiny())]
}

/// Every gold query of `bench` that targets `db_id`, repeated the way an
/// eval run repeats gold statements, in a seeded-shuffled submission order.
fn shuffled_gold_batch(bench: &Benchmark, db_id: &str, seed: u64) -> Vec<String> {
    let mut batch: Vec<String> = bench
        .questions
        .iter()
        .filter(|q| q.db_id == db_id)
        .flat_map(|q| [q.gold_sql.clone(), q.gold_sql.clone()])
        .collect();
    batch.shuffle(&mut StdRng::seed_from_u64(seed));
    batch
}

#[test]
fn serve_batches_match_serial_execution_at_every_worker_count() {
    let mut statements_checked = 0usize;
    for bench in corpora() {
        for db in &bench.databases {
            let batch = shuffled_gold_batch(&bench, db.name(), 0x5eed);
            if batch.is_empty() {
                continue;
            }
            let snapshot = Arc::new(db.clone());
            let distinct: HashSet<&String> = batch.iter().collect();
            for workers in [1usize, 2, 8] {
                // Oversubscription keeps the cross-thread pool machinery
                // genuinely exercised even when the host exposes fewer
                // hardware threads than the worker count under test.
                let server = Server::new(
                    Arc::clone(&snapshot),
                    ServeConfig::default().with_workers(workers).oversubscribed(),
                );
                let outcomes = server.execute_batch(&batch);
                assert_eq!(outcomes.len(), batch.len());
                // In-flight dedup pins the hit counter exactly: one
                // canonical execution per distinct statement, every other
                // submission a hit, independent of scheduling.
                assert_eq!(
                    server.snapshot_stats().result_cache_hits,
                    (batch.len() - distinct.len()) as u64,
                    "result_cache_hits must be exact at {workers} workers on {}",
                    db.name()
                );
                for (sql, outcome) in batch.iter().zip(&outcomes) {
                    let served = outcome
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{}: serve failed: {e:?} ({sql})", db.name()));
                    // The serial reference runs in the server's own mode
                    // (columnar serving default): the contract is that
                    // *concurrency* changes nothing, and cost counters are
                    // deterministic per mode, not across modes.
                    let (direct, direct_stats) =
                        execute_with_stats_mode(db, sql, PlanMode::serving()).unwrap_or_else(|e| {
                            panic!("{}: direct failed: {e:?} ({sql})", db.name())
                        });
                    assert_eq!(
                        served.result.rows,
                        direct.rows,
                        "row divergence at {workers} workers on {}: {sql}",
                        db.name()
                    );
                    assert_eq!(served.result.columns, direct.columns);
                    assert_eq!(
                        served.stats.cost(),
                        direct_stats.cost(),
                        "cost divergence at {workers} workers on {}: {sql}",
                        db.name()
                    );
                    statements_checked += 1;
                }
            }
        }
    }
    assert!(
        statements_checked > 300,
        "expected substantive corpora coverage, checked {statements_checked}"
    );
}

/// The shared result cache must be an invisible optimization: the repeated
/// half of each batch is answered from cache, with outcomes (rows *and*
/// billed stats) equal to the first, fresh half.
#[test]
fn serve_result_cache_serves_repeats_without_changing_anything() {
    let bench = build_bird(&CorpusConfig::tiny());
    let db = &bench.databases[0];
    let uniques: Vec<String> = bench
        .questions
        .iter()
        .filter(|q| q.db_id == db.name())
        .map(|q| q.gold_sql.clone())
        .collect();
    assert!(!uniques.is_empty());
    let batch: Vec<String> = uniques.iter().chain(uniques.iter()).cloned().collect();
    let server = Server::new(Arc::new(db.clone()), ServeConfig::serial());
    let outcomes = server.execute_batch(&batch);
    let n = uniques.len();
    for i in 0..n {
        let fresh = outcomes[i].as_ref().unwrap();
        let repeat = outcomes[n + i].as_ref().unwrap();
        assert_eq!(fresh.result.rows, repeat.result.rows, "{}", batch[i]);
        assert_eq!(fresh.stats, repeat.stats, "cached stats bill the canonical execution");
    }
    let stats = server.snapshot_stats();
    // Distinct questions can share one gold query, so hits exceed the
    // repeated half exactly by the intra-half duplicates.
    let distinct: HashSet<&String> = batch.iter().collect();
    assert!(stats.result_cache_hits >= n as u64, "repeats come from the result cache");
    assert_eq!(
        stats.result_cache_hits,
        (batch.len() - distinct.len()) as u64,
        "hits are exactly statements minus distinct statements"
    );
    assert_eq!(stats.statements, batch.len() as u64);
}

fn scores_eq(a: &Scores, b: &Scores) -> bool {
    a == b
}

#[test]
fn parallel_eval_runner_matches_serial_scores_on_both_corpora() {
    for bench in corpora() {
        let runner = ExperimentRunner::new(&bench, Split::Dev);
        let system = CodeS::new(7);
        let serial = runner.evaluate(&system, EvidenceSetting::WithoutEvidence);
        // Tiny-corpus dev splits: bird has ~55 questions, spider ~12.
        assert!(serial.scores.n > 10, "{}: substantive split", bench.name);
        for workers in [1usize, 2, 8] {
            let parallel =
                runner.evaluate_parallel(&system, EvidenceSetting::WithoutEvidence, workers);
            assert!(
                scores_eq(&parallel.scores, &serial.scores),
                "{}: Scores diverged at {workers} workers: {:?} vs {:?}",
                bench.name,
                parallel.scores,
                serial.scores
            );
            assert_eq!(parallel.stats.rows_scanned, serial.stats.rows_scanned);
            assert_eq!(parallel.stats.evaluations, serial.stats.evaluations);
            assert_eq!(parallel.stats.hash_probes, serial.stats.hash_probes);
            assert_eq!(parallel.stats.hash_build_rows, serial.stats.hash_build_rows);
            assert_eq!(parallel.stats.index_lookups, serial.stats.index_lookups);
        }
    }
}
