//! Cross-crate integration tests: corpus → SEED evidence → baseline systems →
//! EX/VES evaluation, exercising the whole stack the way the paper's
//! experiments do.

use seed_repro::core::{SeedPipeline, SeedVariant};
use seed_repro::datasets::{
    bird::build_bird, spider::build_spider, spider::synthesize_descriptions, CorpusConfig, Split,
};
use seed_repro::eval::{analyze_evidence_defects, EvidenceSetting, ExperimentRunner};
use seed_repro::text2sql::{CodeS, DailSql};

fn config() -> CorpusConfig {
    CorpusConfig::tiny()
}

#[test]
fn seed_improves_codes_over_no_evidence_on_bird() {
    let bench = build_bird(&config());
    let runner = ExperimentRunner::new(&bench, Split::Dev).with_seed_variants(&[SeedVariant::Gpt]);
    let system = CodeS::new(15);
    let without = runner.evaluate(&system, EvidenceSetting::WithoutEvidence);
    let with_seed = runner.evaluate(&system, EvidenceSetting::SeedGpt);
    let with_bird = runner.evaluate(&system, EvidenceSetting::BirdEvidence);

    assert!(without.scores.n > 40);
    assert!(
        with_seed.scores.ex > without.scores.ex + 5.0,
        "SEED_gpt ({:.1}) should clearly beat no-evidence ({:.1})",
        with_seed.scores.ex,
        without.scores.ex
    );
    assert!(
        with_bird.scores.ex > without.scores.ex,
        "BIRD evidence ({:.1}) should beat no-evidence ({:.1})",
        with_bird.scores.ex,
        without.scores.ex
    );
}

#[test]
fn dail_sql_shows_largest_no_evidence_degradation() {
    let bench = build_bird(&config());
    let runner = ExperimentRunner::new(&bench, Split::Dev);
    let dail = DailSql::new();
    let codes = CodeS::new(15);
    let dail_gap = runner.evaluate(&dail, EvidenceSetting::BirdEvidence).scores.ex
        - runner.evaluate(&dail, EvidenceSetting::WithoutEvidence).scores.ex;
    let codes_gap = runner.evaluate(&codes, EvidenceSetting::BirdEvidence).scores.ex
        - runner.evaluate(&codes, EvidenceSetting::WithoutEvidence).scores.ex;
    assert!(dail_gap > 0.0);
    assert!(
        dail_gap + 1.0 >= codes_gap,
        "DAIL-SQL's evidence dependence ({dail_gap:.1}) should be at least as large as CodeS's ({codes_gap:.1})"
    );
}

#[test]
fn evidence_defect_rates_track_the_paper() {
    let bench = build_bird(&CorpusConfig::default());
    let b = analyze_evidence_defects(bench.split(Split::Dev));
    assert!((b.missing_rate() - 9.65).abs() < 2.5);
    assert!((b.erroneous_rate() - 6.84).abs() < 2.5);
}

#[test]
fn seed_pipeline_works_on_spider_after_description_synthesis() {
    let mut bench = build_spider(&config());
    synthesize_descriptions(&mut bench);
    let train: Vec<_> = bench.split(Split::Train);
    let pipeline = SeedPipeline::gpt();
    let mut produced = 0usize;
    for q in bench.split(Split::Dev).into_iter().take(10) {
        let db = bench.database(&q.db_id).unwrap();
        let out = pipeline.generate(q, db, &train, bench.has_descriptions);
        if !out.evidence.is_empty() {
            produced += 1;
        }
    }
    assert!(produced >= 1, "SEED should produce evidence for at least some Spider questions");
}

#[test]
fn revised_evidence_strips_join_information_end_to_end() {
    let bench = build_bird(&config());
    let runner = ExperimentRunner::new(&bench, Split::Dev)
        .with_seed_variants(&[SeedVariant::Deepseek, SeedVariant::Revised]);
    let mut saw_deepseek_join = false;
    for q in runner.questions() {
        if let Some(e) = runner.evidence_for(q, EvidenceSetting::SeedDeepseek) {
            if e.contains("join on") {
                saw_deepseek_join = true;
            }
        }
        if let Some(e) = runner.evidence_for(q, EvidenceSetting::SeedRevised) {
            assert!(!e.contains("join on"), "revised evidence must not contain join hints: {e}");
        }
    }
    assert!(saw_deepseek_join, "SEED_deepseek should emit join hints somewhere");
}
