//! Golden-file tests for `EXPLAIN`, plus the determinism guard for
//! `EXPLAIN ANALYZE`.
//!
//! The golden half pins the exact `EXPLAIN` rendering — plan mode, operator
//! tree, decorrelation verdicts, columnar bridge notes — for a battery of
//! representative queries across all three plan modes against files in
//! `tests/golden/`. `EXPLAIN` is purely static (plans, never executes), so
//! its output is byte-deterministic and safe to pin. Regenerate after an
//! intentional planner/renderer change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test explain_golden
//! ```
//!
//! The guard half proves the observability invariant the whole profiling
//! subsystem rests on: running a statement under the per-operator profiler
//! (what `EXPLAIN ANALYZE` does) leaves result rows and every
//! [`ExecStats`] counter — hence `cost()` — bit-identical to an unprofiled
//! run. Wall-clock measurements exist only in the rendered `ANALYZE` text,
//! never in the deterministic stats the VES metric consumes.

use std::path::{Path, PathBuf};

use seed_repro::sqlengine::{
    execute, execute_select_profiled, execute_statement, execute_with_stats_mode, explain_sql,
    explain_text, parse_select, Database, PlanCache, PlanMode,
};

/// A small deterministic banking schema in the BIRD "financial" idiom:
/// enough structure to exercise PK lookups, pushdown, hash and non-equi
/// joins, grouping, and every subquery strategy.
fn test_db() -> Database {
    let mut db = Database::new("explain_golden");
    execute_statement(
        &mut db,
        "CREATE TABLE account (account_id INTEGER PRIMARY KEY, district_id INTEGER)",
    )
    .unwrap();
    execute_statement(
        &mut db,
        "CREATE TABLE loan (loan_id INTEGER PRIMARY KEY, account_id INTEGER, \
         amount REAL, status TEXT)",
    )
    .unwrap();
    execute_statement(
        &mut db,
        "CREATE TABLE district (district_id INTEGER PRIMARY KEY, name TEXT)",
    )
    .unwrap();
    for i in 0..5i64 {
        execute_statement(&mut db, &format!("INSERT INTO district VALUES ({i}, 'd{i}')")).unwrap();
    }
    for i in 0..30i64 {
        execute_statement(&mut db, &format!("INSERT INTO account VALUES ({i}, {})", i % 5))
            .unwrap();
        execute_statement(
            &mut db,
            &format!(
                "INSERT INTO loan VALUES ({i}, {}, {}.0, '{}')",
                i % 30,
                (i * 37) % 1000,
                if i % 3 == 0 { "A" } else { "B" }
            ),
        )
        .unwrap();
    }
    db
}

/// The golden battery: one entry per pinned rendering. Each SQL is a bare
/// SELECT (explained under the entry's mode); the same list drives the
/// `EXPLAIN ANALYZE` determinism guard.
const CASES: &[(&str, PlanMode, &str)] = &[
    (
        "seqscan_pushdown",
        PlanMode::Optimized,
        "SELECT loan_id FROM loan WHERE amount > 100 AND status = 'A'",
    ),
    ("pk_lookup", PlanMode::Optimized, "SELECT district_id FROM account WHERE account_id = 5"),
    (
        "hash_join_optimized",
        PlanMode::Optimized,
        "SELECT account.district_id, loan.amount FROM account \
         INNER JOIN loan ON account.account_id = loan.account_id \
         WHERE loan.amount > 50 ORDER BY loan.loan_id",
    ),
    (
        "hash_join_columnar",
        PlanMode::Columnar,
        "SELECT account.district_id, loan.amount FROM account \
         INNER JOIN loan ON account.account_id = loan.account_id \
         WHERE loan.amount > 50 ORDER BY loan.loan_id",
    ),
    (
        "hash_join_nested_loop",
        PlanMode::NestedLoop,
        "SELECT account.district_id, loan.amount FROM account \
         INNER JOIN loan ON account.account_id = loan.account_id \
         WHERE loan.amount > 50 ORDER BY loan.loan_id",
    ),
    (
        "grouped_aggregate_columnar",
        PlanMode::Columnar,
        "SELECT account.district_id, COUNT(*), SUM(loan.amount) FROM account \
         INNER JOIN loan ON account.account_id = loan.account_id \
         GROUP BY account.district_id ORDER BY account.district_id",
    ),
    (
        "exists_decorrelated",
        PlanMode::Optimized,
        "SELECT account_id FROM account WHERE EXISTS \
         (SELECT 1 FROM loan WHERE loan.account_id = account.account_id AND loan.amount > 500)",
    ),
    (
        "scalar_aggregate_group_join",
        PlanMode::Optimized,
        "SELECT loan_id FROM loan WHERE amount > \
         (SELECT AVG(l2.amount) FROM loan AS l2 WHERE l2.account_id = loan.account_id)",
    ),
    (
        "uncorrelated_scalar_columnar",
        PlanMode::Columnar,
        "SELECT loan_id FROM loan WHERE amount > (SELECT AVG(amount) FROM loan) \
         ORDER BY loan_id",
    ),
    (
        "decorrelation_refused",
        PlanMode::Optimized,
        "SELECT account_id FROM account WHERE EXISTS \
         (SELECT 1 FROM loan WHERE loan.account_id > account.account_id)",
    ),
    (
        "non_equi_join_columnar",
        PlanMode::Columnar,
        "SELECT account.account_id FROM account \
         INNER JOIN loan ON loan.amount > account.account_id \
         WHERE account.district_id = 2",
    ),
    (
        "derived_table",
        PlanMode::Optimized,
        "SELECT x.d FROM (SELECT district_id AS d FROM account WHERE account_id < 10) AS x \
         ORDER BY x.d",
    ),
];

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

#[test]
fn explain_matches_golden_files() {
    let db = test_db();
    let bless = std::env::var("UPDATE_GOLDEN").is_ok();
    let mut mismatches = Vec::new();
    for (name, mode, sql) in CASES {
        let stmt = parse_select(sql).unwrap();
        let rendered = explain_text(&db, &stmt, *mode).unwrap();
        let path = golden_path(name);
        if bless {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display())
        });
        if rendered != expected {
            mismatches.push(format!(
                "=== {name} ===\n--- expected ---\n{expected}\n--- rendered ---\n{rendered}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "EXPLAIN golden mismatches (UPDATE_GOLDEN=1 to regenerate):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn explain_is_reachable_through_the_sql_surface() {
    let db = test_db();
    // `EXPLAIN <select>` executes as a statement and returns the rendering
    // as one QUERY PLAN row per line, under the default (Optimized) mode.
    let rs = execute(&db, "EXPLAIN SELECT loan_id FROM loan WHERE amount > 100").unwrap();
    assert_eq!(rs.columns, vec!["QUERY PLAN".to_string()]);
    let lines: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
    assert_eq!(lines[0], "Plan mode: Optimized");
    assert!(lines.iter().any(|l| l.contains("SeqScan loan")), "{lines:?}");
    // And `explain_sql` accepts the same text under an explicit mode.
    let columnar =
        explain_sql(&db, "EXPLAIN SELECT loan_id FROM loan WHERE amount > 100", PlanMode::Columnar)
            .unwrap();
    assert_eq!(columnar.rows[0][0].render(), "Plan mode: Columnar");
}

#[test]
fn explain_analyze_renders_measurements_in_every_mode() {
    let db = test_db();
    for mode in [PlanMode::Optimized, PlanMode::Columnar, PlanMode::NestedLoop] {
        let rs = explain_sql(
            &db,
            "EXPLAIN ANALYZE SELECT account.district_id, loan.amount FROM account \
             INNER JOIN loan ON account.account_id = loan.account_id \
             WHERE loan.amount > 50 ORDER BY loan.loan_id",
            mode,
        )
        .unwrap();
        let text: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
        let joined = text.join("\n");
        assert!(
            joined.contains("rows=") && joined.contains("time=") && joined.contains("invocations="),
            "mode {mode:?} must render measured per-operator lines:\n{joined}"
        );
        assert!(joined.contains("Execution:"), "summary line present ({mode:?})");
        assert!(joined.contains("ExecStats:"), "stats block present ({mode:?})");
        if mode == PlanMode::Columnar {
            assert!(joined.contains("batches="), "columnar profile reports batches:\n{joined}");
        }
    }
}

#[test]
fn plain_explain_never_contains_measurements() {
    let db = test_db();
    for (name, mode, sql) in CASES {
        let stmt = parse_select(sql).unwrap();
        let rendered = explain_text(&db, &stmt, *mode).unwrap();
        assert!(
            !rendered.contains("time=") && !rendered.contains("invocations="),
            "{name}: static EXPLAIN must carry no measurements:\n{rendered}"
        );
    }
}

/// The determinism guard: profiling is observationally invisible. For every
/// case and mode, a profiled execution returns the same rows and the same
/// `ExecStats` (every counter, hence the same `cost()`) as unprofiled
/// executions — timings live only in the `QueryProfile` beside them.
#[test]
fn explain_analyze_timings_never_leak_into_stats_or_rows() {
    let db = test_db();
    for (name, _, sql) in CASES {
        for mode in [PlanMode::Optimized, PlanMode::Columnar, PlanMode::NestedLoop] {
            let stmt = parse_select(sql).unwrap();
            let (profiled_rows, profiled_stats, _, profile) =
                execute_select_profiled(&db, &stmt, mode, PlanCache::default()).unwrap();
            let (plain_rows, plain_stats) = execute_with_stats_mode(&db, sql, mode).unwrap();
            assert_eq!(
                profiled_rows.rows, plain_rows.rows,
                "{name} ({mode:?}): profiling changed result rows"
            );
            assert_eq!(
                profiled_stats, plain_stats,
                "{name} ({mode:?}): profiling perturbed a deterministic counter"
            );
            assert_eq!(
                profiled_stats.cost(),
                plain_stats.cost(),
                "{name} ({mode:?}): profiling perturbed cost()"
            );
            // The measurements went somewhere: the profile, not the stats.
            assert!(
                !profile.ops().is_empty() || plain_rows.rows.is_empty(),
                "{name} ({mode:?}): profiled execution recorded no operators"
            );
        }
    }
}
