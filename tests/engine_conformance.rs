//! Engine conformance tests over the synthetic corpora: every gold query of
//! every benchmark must parse, execute, and be stable across repeated runs,
//! the execution-accuracy comparator must behave as a congruence, and the
//! physical planner (hash joins, PK lookups, predicate pushdown) must be
//! result-identical to the legacy nested-loop executor on every query.

use seed_repro::datasets::{bird::build_bird, spider::build_spider, CorpusConfig};
use seed_repro::sqlengine::{
    commit_statement, execute, execute_select_with_plan_cache, execute_with_stats,
    execute_with_stats_mode, parse_select, plan_select, PlanCache, PlanMode,
};

#[test]
fn every_gold_query_in_both_benchmarks_executes() {
    let bird = build_bird(&CorpusConfig::tiny());
    let spider = build_spider(&CorpusConfig::tiny());
    for bench in [&bird, &spider] {
        for q in &bench.questions {
            let db = bench.database(&q.db_id).unwrap();
            let rs = execute(db, &q.gold_sql);
            assert!(rs.is_ok(), "{}: {} -> {:?}", q.id, q.gold_sql, rs.err());
        }
    }
}

#[test]
fn execution_is_deterministic_and_costed() {
    let bird = build_bird(&CorpusConfig::tiny());
    for q in bird.questions.iter().take(40) {
        let db = bird.database(&q.db_id).unwrap();
        let (a, stats_a) = execute_with_stats(db, &q.gold_sql).unwrap();
        let (b, stats_b) = execute_with_stats(db, &q.gold_sql).unwrap();
        assert!(a.result_eq(&b));
        assert_eq!(stats_a, stats_b, "cost model must be deterministic");
        assert!(stats_a.cost() > 0.0);
    }
}

/// The planner-equivalence property: for every gold query of both corpora,
/// the optimized plan (hash joins, PK lookups, pushdown) and the vectorized
/// columnar pipeline must both produce the same rows as the legacy
/// nested-loop executor — not just the same multiset (`result_eq`), but the
/// same row *order*, so that LIMIT-without-ORDER-BY queries cannot diverge
/// between plans.
#[test]
fn optimized_plans_match_nested_loop_on_every_gold_query() {
    let bird = build_bird(&CorpusConfig::tiny());
    let spider = build_spider(&CorpusConfig::tiny());
    let mut checked = 0usize;
    for bench in [&bird, &spider] {
        for q in &bench.questions {
            let db = bench.database(&q.db_id).unwrap();
            let (opt, _) = execute_with_stats_mode(db, &q.gold_sql, PlanMode::Optimized)
                .unwrap_or_else(|e| panic!("{}: optimized failed: {e:?} ({})", q.id, q.gold_sql));
            let (col, _) = execute_with_stats_mode(db, &q.gold_sql, PlanMode::Columnar)
                .unwrap_or_else(|e| panic!("{}: columnar failed: {e:?} ({})", q.id, q.gold_sql));
            let (legacy, _) = execute_with_stats_mode(db, &q.gold_sql, PlanMode::NestedLoop)
                .unwrap_or_else(|e| panic!("{}: legacy failed: {e:?} ({})", q.id, q.gold_sql));
            assert!(
                opt.result_eq(&legacy),
                "{}: result mismatch\nsql: {}\noptimized: {:?}\nlegacy: {:?}",
                q.id,
                q.gold_sql,
                opt.rows,
                legacy.rows
            );
            assert_eq!(
                opt.rows.len(),
                legacy.rows.len(),
                "{}: row-count mismatch ({})",
                q.id,
                q.gold_sql
            );
            assert_eq!(opt.rows, legacy.rows, "{}: row-order mismatch ({})", q.id, q.gold_sql);
            assert_eq!(
                col.columns, opt.columns,
                "{}: columnar header mismatch ({})",
                q.id, q.gold_sql
            );
            assert_eq!(
                col.rows, opt.rows,
                "{}: columnar row/order mismatch ({})",
                q.id, q.gold_sql
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "expected a substantive corpus, checked only {checked}");
}

/// Hash-join plans must be strictly cheaper than their nested-loop
/// equivalents under the deterministic cost model — this is the VES-facing
/// payoff of the physical planner.
#[test]
fn hash_join_plans_cost_less_than_nested_loop() {
    let bird = build_bird(&CorpusConfig::tiny());
    let spider = build_spider(&CorpusConfig::tiny());
    let mut hash_cases = 0usize;
    for bench in [&bird, &spider] {
        for q in &bench.questions {
            let db = bench.database(&q.db_id).unwrap();
            let Ok(stmt) = parse_select(&q.gold_sql) else { continue };
            let plan = plan_select(db, &stmt).unwrap();
            if !plan.uses_hash_join() {
                continue;
            }
            hash_cases += 1;
            let (_, opt) = execute_with_stats_mode(db, &q.gold_sql, PlanMode::Optimized).unwrap();
            let (_, legacy) =
                execute_with_stats_mode(db, &q.gold_sql, PlanMode::NestedLoop).unwrap();
            assert!(
                opt.cost() < legacy.cost(),
                "{}: hash plan not cheaper ({} vs {})\nsql: {}\nplan:\n{}",
                q.id,
                opt.cost(),
                legacy.cost(),
                q.gold_sql,
                plan.explain()
            );
        }
    }
    assert!(
        hash_cases >= 20,
        "expected the corpora to exercise hash joins broadly, found {hash_cases}"
    );
}

/// The optimized executor's stats are part of the VES contract: repeated
/// runs of the same query must report identical statistics in both modes.
#[test]
fn optimized_stats_are_deterministic() {
    let bird = build_bird(&CorpusConfig::tiny());
    for q in bird.questions.iter().take(40) {
        let db = bird.database(&q.db_id).unwrap();
        for mode in [PlanMode::Optimized, PlanMode::Columnar, PlanMode::NestedLoop] {
            let (a, stats_a) = execute_with_stats_mode(db, &q.gold_sql, mode).unwrap();
            let (b, stats_b) = execute_with_stats_mode(db, &q.gold_sql, mode).unwrap();
            assert!(a.result_eq(&b));
            assert_eq!(stats_a, stats_b, "{}: stats must be deterministic ({mode:?})", q.id);
            assert!(stats_a.cost() > 0.0);
        }
    }
}

/// Subquery plan caching must be pure observability: every gold query of
/// both corpora stays row-identical (order included) between the cached
/// optimized path and the nested-loop reference — this is asserted per query
/// by `optimized_plans_match_nested_loop_on_every_gold_query` above, which
/// now runs entirely through the per-statement plan cache. Here we assert
/// the cache engages on every gold query (the top-level statement itself
/// plans through it, deterministically) — the gold corpora contain no
/// subqueries today, so re-execution hits are pinned by the dedicated
/// correlated-workload test below and the criterion bench instead.
#[test]
fn plan_cache_engages_on_every_gold_query() {
    let bird = build_bird(&CorpusConfig::tiny());
    let spider = build_spider(&CorpusConfig::tiny());
    for bench in [&bird, &spider] {
        for q in &bench.questions {
            let db = bench.database(&q.db_id).unwrap();
            let (_, a) = execute_with_stats_mode(db, &q.gold_sql, PlanMode::Optimized).unwrap();
            let (_, b) = execute_with_stats_mode(db, &q.gold_sql, PlanMode::Optimized).unwrap();
            assert!(
                a.plan_cache_misses >= 1,
                "{}: the top-level statement plans through the cache",
                q.id
            );
            assert_eq!(
                (a.plan_cache_hits, a.plan_cache_misses),
                (b.plan_cache_hits, b.plan_cache_misses),
                "{}: cache traffic is deterministic",
                q.id
            );
        }
    }
}

/// A correlated scalar subquery re-executes once per outer row; with plan
/// caching it must plan exactly twice (outer + subquery) and report a hit
/// for every re-execution after the first.
#[test]
fn correlated_subquery_plans_once_and_hits_thereafter() {
    let bird = build_bird(&CorpusConfig::tiny());
    let db = bird.database("financial").unwrap();
    let outer_rows = db.table("account").unwrap().len() as u64;

    // This subquery *looks* correlated, but `account.district_id` resolves
    // against the inner scan (a table aliased `T` still answers to its base
    // name), so the executor never reads the outer row — and the
    // uncorrelated-subquery result cache therefore executes it exactly once,
    // replaying the result for every other outer row.
    let sql = "SELECT account_id FROM account \
               WHERE account_id > (SELECT AVG(T.account_id) FROM account AS T \
                                   WHERE T.district_id = account.district_id)";
    let (rs, stats) = execute_with_stats_mode(db, sql, PlanMode::Optimized).unwrap();
    let (legacy, _) = execute_with_stats_mode(db, sql, PlanMode::NestedLoop).unwrap();
    assert_eq!(rs.rows, legacy.rows, "caching must not change results");
    assert_eq!(stats.plan_cache_misses, 2, "one plan for the outer query, one for the subquery");
    assert_eq!(stats.plan_cache_hits, 0, "a result-cached subquery never replans");
    assert_eq!(stats.subquery_result_misses, 1, "the subquery executes exactly once");
    assert_eq!(
        stats.subquery_result_hits,
        outer_rows - 1,
        "every outer row after the first replays the cached subquery result"
    );

    // A *genuinely* correlated scalar aggregate (the outer alias cannot
    // resolve inside) is decorrelated into a hash group join: the rewritten
    // build side plans and executes once, and each outer row becomes a hash
    // probe (memoized per distinct correlation key) instead of a subquery
    // re-execution.
    let sql = "SELECT account_id FROM account AS outer_a \
               WHERE account_id > (SELECT AVG(T.account_id) FROM account AS T \
                                   WHERE T.district_id = outer_a.district_id)";
    let (rs, stats) = execute_with_stats_mode(db, sql, PlanMode::Optimized).unwrap();
    let (legacy, _) = execute_with_stats_mode(db, sql, PlanMode::NestedLoop).unwrap();
    assert_eq!(rs.rows, legacy.rows, "decorrelation must not change results");
    assert_eq!(stats.plan_cache_misses, 2, "one plan for the outer query, one for the build side");
    assert_eq!(stats.plan_cache_hits, 0, "per-outer-row re-execution is gone");
    assert_eq!(stats.decorrelated_subqueries, 1, "the rewrite engaged");
    assert_eq!(
        stats.decorrelated_probes + stats.decorrelated_memo_hits,
        outer_rows,
        "every outer row is answered by a probe or the per-key memo"
    );
    assert!(stats.decorrelated_probes >= 1);
    assert_eq!(stats.subquery_result_misses, 0, "correlated subqueries are never result-cached");
    assert_eq!(stats.subquery_result_hits, 0);

    // The per-outer-row cached-plan path survives behind
    // `PlanCache::without_decorrelation`, row-identical, for triangulation.
    let stmt = parse_select(sql).unwrap();
    let (norw, norw_stats, _) = execute_select_with_plan_cache(
        db,
        &stmt,
        PlanMode::Optimized,
        PlanCache::without_decorrelation(),
    )
    .unwrap();
    assert_eq!(norw.rows, rs.rows);
    assert_eq!(norw_stats.decorrelated_subqueries, 0);
    assert_eq!(
        norw_stats.plan_cache_hits,
        outer_rows - 1,
        "every outer row after the first replays the cached subquery plan"
    );
}

/// The checked-in fallback budget: every gold query of both corpora must run
/// *fully* columnar — zero per-operator row bridges, zero mixed-mode
/// statements. Measured after the per-operator fallback rework (PR 8): all
/// 103 gold queries execute with `columnar_fallbacks == 0`, so the budget is
/// zero across the board. A kernel regression that silently demotes an
/// operator to the row bridge now fails this test instead of just getting
/// slower; if a future query class legitimately needs a bridge, raise its
/// budget here deliberately, in review.
#[test]
fn gold_queries_stay_within_columnar_fallback_budget() {
    let bird = build_bird(&CorpusConfig::tiny());
    let spider = build_spider(&CorpusConfig::tiny());
    let budget_for = |_query_id: &str| -> u64 { 0 };
    let mut checked = 0;
    for bench in [&bird, &spider] {
        for q in &bench.questions {
            let db = bench.database(&q.db_id).unwrap();
            let (_, stats) = execute_with_stats_mode(db, &q.gold_sql, PlanMode::Columnar).unwrap();
            let budget = budget_for(&q.id);
            assert!(
                stats.columnar_fallbacks <= budget,
                "{}: {} per-operator fallbacks exceeds budget {} ({})",
                q.id,
                stats.columnar_fallbacks,
                budget,
                q.gold_sql
            );
            if budget == 0 {
                assert_eq!(
                    stats.columnar_partial, 0,
                    "{}: statement mixed modes despite a zero fallback budget ({})",
                    q.id, q.gold_sql
                );
            }
            checked += 1;
        }
    }
    assert!(checked > 100, "gold corpus shrank: only {checked} queries checked");
}

/// Mutate-then-query conformance: after committing writes against a gold
/// corpus database through the copy-on-write commit path, every gold query
/// of that database must still be row-identical (order included) across all
/// three plan modes — and still run *fully* columnar. Incrementally
/// maintained PK indexes and restamped chunks must be indistinguishable
/// from freshly built ones, fallback budget included.
#[test]
fn gold_queries_stay_conformant_and_fully_columnar_after_commits() {
    let bird = build_bird(&CorpusConfig::tiny());
    for base in &bird.databases {
        let mut db = base.clone();
        // One mutation of each kind against every table, committed through
        // successive snapshots.
        for name in db.table_names() {
            let table = db.table(&name).unwrap();
            let width = table.schema.columns.len();
            let Some(pk) = table.primary_key_column() else { continue };
            let max_id = table
                .rows()
                .iter()
                .filter_map(|r| match &r[pk] {
                    seed_repro::sqlengine::Value::Integer(i) => Some(*i),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            for sql in [
                format!(
                    "INSERT INTO {name} ({}) VALUES ({})",
                    table.schema.columns[pk].name,
                    max_id + 1
                ),
                format!(
                    "DELETE FROM {name} WHERE {} = {}",
                    table.schema.columns[pk].name,
                    max_id + 1
                ),
            ]
            .iter()
            .chain(
                // Update a non-PK column to itself on a slice of rows:
                // contents unchanged, but the COW/update machinery (PK
                // remove+insert, chunk restamp, BM25 extension) fully runs.
                (width > 1)
                    .then(|| {
                        let col = &table.schema.columns[if pk == 0 { 1 } else { 0 }].name;
                        format!(
                            "UPDATE {name} SET {col} = {col} WHERE {} <= {}",
                            table.schema.columns[pk].name,
                            max_id / 2
                        )
                    })
                    .iter(),
            ) {
                let outcome = commit_statement(&db, sql)
                    .unwrap_or_else(|e| panic!("{}: commit failed: {e:?} ({sql})", base.name()));
                db = outcome.db;
            }
        }
        // Every gold query of this database: three-way identical, zero
        // fallbacks, no mixed-mode statements.
        let mut checked = 0usize;
        for q in bird.questions.iter().filter(|q| q.db_id == base.name()) {
            let (col, stats) = execute_with_stats_mode(&db, &q.gold_sql, PlanMode::Columnar)
                .unwrap_or_else(|e| panic!("{}: columnar failed post-commit: {e:?}", q.id));
            let (opt, _) = execute_with_stats_mode(&db, &q.gold_sql, PlanMode::Optimized).unwrap();
            let (legacy, _) =
                execute_with_stats_mode(&db, &q.gold_sql, PlanMode::NestedLoop).unwrap();
            assert_eq!(col.rows, opt.rows, "{}: columnar diverged post-commit", q.id);
            assert_eq!(opt.rows, legacy.rows, "{}: optimized diverged post-commit", q.id);
            assert_eq!(
                stats.columnar_fallbacks, 0,
                "{}: commits must not demote operators to the row bridge ({})",
                q.id, q.gold_sql
            );
            assert_eq!(stats.columnar_partial, 0, "{}: mixed-mode post-commit", q.id);
            checked += 1;
        }
        assert!(checked > 0, "{}: no gold queries exercised", base.name());
    }
}

#[test]
fn result_comparison_ignores_projection_order_of_rows_only() {
    let bird = build_bird(&CorpusConfig::tiny());
    let db = bird.database("financial").unwrap();
    let a = execute(db, "SELECT account_id FROM account WHERE district_id = 1 ORDER BY account_id")
        .unwrap();
    let b = execute(
        db,
        "SELECT account_id FROM account WHERE district_id = 1 ORDER BY account_id DESC",
    )
    .unwrap();
    assert!(a.result_eq(&b), "row order must not matter");
    let c = execute(db, "SELECT account_id FROM account WHERE district_id = 2").unwrap();
    assert!(!a.result_eq(&c), "different contents must not compare equal");
}
