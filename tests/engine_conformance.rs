//! Engine conformance tests over the synthetic corpora: every gold query of
//! every benchmark must parse, execute, and be stable across repeated runs,
//! and the execution-accuracy comparator must behave as a congruence.

use seed_repro::datasets::{bird::build_bird, spider::build_spider, CorpusConfig};
use seed_repro::sqlengine::{execute, execute_with_stats};

#[test]
fn every_gold_query_in_both_benchmarks_executes() {
    let bird = build_bird(&CorpusConfig::tiny());
    let spider = build_spider(&CorpusConfig::tiny());
    for bench in [&bird, &spider] {
        for q in &bench.questions {
            let db = bench.database(&q.db_id).unwrap();
            let rs = execute(db, &q.gold_sql);
            assert!(rs.is_ok(), "{}: {} -> {:?}", q.id, q.gold_sql, rs.err());
        }
    }
}

#[test]
fn execution_is_deterministic_and_costed() {
    let bird = build_bird(&CorpusConfig::tiny());
    for q in bird.questions.iter().take(40) {
        let db = bird.database(&q.db_id).unwrap();
        let (a, stats_a) = execute_with_stats(db, &q.gold_sql).unwrap();
        let (b, stats_b) = execute_with_stats(db, &q.gold_sql).unwrap();
        assert!(a.result_eq(&b));
        assert_eq!(stats_a, stats_b, "cost model must be deterministic");
        assert!(stats_a.cost() > 0.0);
    }
}

#[test]
fn result_comparison_ignores_projection_order_of_rows_only() {
    let bird = build_bird(&CorpusConfig::tiny());
    let db = bird.database("financial").unwrap();
    let a = execute(db, "SELECT account_id FROM account WHERE district_id = 1 ORDER BY account_id").unwrap();
    let b = execute(db, "SELECT account_id FROM account WHERE district_id = 1 ORDER BY account_id DESC").unwrap();
    assert!(a.result_eq(&b), "row order must not matter");
    let c = execute(db, "SELECT account_id FROM account WHERE district_id = 2").unwrap();
    assert!(!a.result_eq(&c), "different contents must not compare equal");
}
