//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's API shape: `lock()` returns
//! the guard directly instead of a `Result`, recovering from poisoning (a
//! panicked holder) by taking the inner guard, which matches parking_lot's
//! no-poisoning semantics.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
