//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind parking_lot's API
//! shape: `lock()` / `read()` / `write()` return the guard directly instead
//! of a `Result`, recovering from poisoning (a panicked holder) by taking the
//! inner guard, which matches parking_lot's no-poisoning semantics.
//!
//! API coverage: `Mutex::{new, lock, get_mut, into_inner}`,
//! `RwLock::{new, read, write, get_mut, into_inner}`, and
//! `Condvar::{new, wait, notify_one, notify_all}` — exactly what the
//! sharded plan/result caches, the in-flight execution table, and the
//! persistent worker pool in `seed-sqlengine` and `seed-serve` need.
//! Fairness, `try_*`, timeouts, and upgradable reads are not stubbed.
//!
//! One deliberate API divergence: real parking_lot's `Condvar::wait` takes
//! `&mut MutexGuard`; this stub keeps the `std` move-the-guard shape
//! (`wait(guard) -> guard`), which every caller in this workspace uses.
//! Adjust call sites if this stub is ever swapped for the real crate.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock whose `read` / `write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]; `wait` never fails.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard and blocks until notified, then
    /// reacquires the lock. Spurious wakeups are possible — callers loop on
    /// their predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_shared_reads_and_exclusive_write() {
        let l = RwLock::new(vec![1u32, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4, "concurrent readers coexist");
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_a_predicate_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
            42u32
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert_eq!(waiter.join().unwrap(), 42);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = std::sync::Arc::new(RwLock::new(7u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }
}
