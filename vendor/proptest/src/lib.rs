//! Offline stand-in for `proptest`.
//!
//! The workspace's property tests only use string strategies of the shape
//! `"[chars]{m,n}"` (a single character class with a repetition bound), so
//! this crate implements exactly that: the [`proptest!`] macro expands each
//! case into a deterministic loop of [`CASES`] generated inputs, and
//! `prop_assert*` macros forward to the std assertions. No shrinking, no
//! persistence, no general regex engine — swap for the real crate when the
//! build environment has registry access.

/// Number of generated inputs per property.
pub const CASES: usize = 128;

/// Deterministic input generator for one property-test function.
///
/// Seeded from the property name so every run of the suite exercises the
/// same inputs (failures are reproducible), while distinct properties see
/// distinct streams.
pub struct Runner {
    state: u64,
}

impl Runner {
    pub fn new(name: &str) -> Self {
        // FNV-1a over the property name.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Runner { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Generates a string matching a `[class]{m,n}` / `[class]{n}` pattern.
    ///
    /// Panics on any pattern outside that subset, so an unsupported strategy
    /// fails loudly rather than silently testing nothing.
    pub fn gen_string(&mut self, pattern: &str) -> String {
        let (alphabet, lo, hi) = parse_pattern(pattern);
        let len = lo + (self.next_u64() as usize) % (hi - lo + 1);
        (0..len).map(|_| alphabet[(self.next_u64() as usize) % alphabet.len()]).collect()
    }
}

/// Parses `[class]{m,n}` into (alphabet, min_len, max_len).
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    fn bad(pattern: &str) -> ! {
        panic!("unsupported proptest pattern {pattern:?}: expected \"[class]{{m,n}}\"")
    }
    let Some(rest) = pattern.strip_prefix('[') else { bad(pattern) };
    let Some((class, rep)) = rest.split_once(']') else { bad(pattern) };
    let Some(rep) = rep.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else { bad(pattern) };
    let (lo, hi): (usize, usize) = match rep.split_once(',') {
        Some((a, b)) => match (a.parse(), b.parse()) {
            (Ok(a), Ok(b)) => (a, b),
            _ => bad(pattern),
        },
        None => match rep.parse() {
            Ok(n) => (n, n),
            Err(_) => bad(pattern),
        },
    };
    if hi < lo {
        bad(pattern);
    }
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if b < a {
                bad(pattern);
            }
            alphabet.extend(a..=b);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        bad(pattern);
    }
    (alphabet, lo, hi)
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Runner, CASES};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Expands each property into a `#[test]` that loops over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $pat:literal),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::Runner::new(stringify!($name));
                for _ in 0..$crate::CASES {
                    $(let $arg: String = runner.gen_string($pat);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_subset_parses_and_generates() {
        let mut r = Runner::new("t");
        for _ in 0..200 {
            let s = r.gen_string("[a-z0-9 ]{2,5}");
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
        let s = r.gen_string("[xy]{3}");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let a: Vec<String> = {
            let mut r = Runner::new("p");
            (0..10).map(|_| r.gen_string("[a-z]{0,8}")).collect()
        };
        let mut r = Runner::new("p");
        let b: Vec<String> = (0..10).map(|_| r.gen_string("[a-z]{0,8}")).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn macro_smoke(a in "[a-c]{1,4}") {
            prop_assert!(!a.is_empty());
        }
    }
}
