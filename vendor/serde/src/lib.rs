//! Offline stand-in for `serde`.
//!
//! The workspace builds without network access, so the real serde framework
//! cannot be fetched. The only serde surface the workspace uses is
//! `#[derive(Serialize, Deserialize)]` annotations on a handful of types in
//! `seed-sqlengine` (nothing actually serializes them yet — they mark the
//! wire-format boundary for a future persistence layer). These no-op derive
//! macros let those annotations compile; swap this vendored crate for the
//! real dependency once the build environment has registry access.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
