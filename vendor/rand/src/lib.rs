//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the narrow slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen`, `gen_bool`, and `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for the synthetic-corpus generation and LLM
//! simulation this workspace does. The exact stream differs from upstream
//! `rand`'s StdRng (ChaCha12); nothing in the workspace depends on the
//! upstream stream, only on determinism for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value from the "standard" distribution (uniform in `[0, 1)`
    /// for floats, full-range uniform for integers, fair coin for bool).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics when the range is empty, matching upstream behaviour.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Maps a `u64` to a uniform float in `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers; only in-place shuffling is provided.
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the workspace's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10i64);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=6usize);
            assert!((1..=6).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
