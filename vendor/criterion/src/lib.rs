//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace's benches use —
//! `Criterion::bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — on top of a simple
//! wall-clock measurement loop. Reports median and mean per-iteration time
//! to stdout. No statistics engine, plotting, or baseline comparison; swap
//! for the real crate when the build environment has registry access.

use std::time::Instant;

/// Re-export shape of criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Minimal benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: a warm-up pass, then `sample_size` timed samples.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up / calibration pass sizes each sample to roughly 5 ms.
        let mut b = Bencher { iters: 1, elapsed_ns: 0 };
        f(&mut b);
        let per_iter = b.elapsed_ns.max(1);
        let iters_per_sample = (5_000_000 / per_iter).clamp(1, 1_000_000);

        let mut samples_ns: Vec<u64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: iters_per_sample, elapsed_ns: 0 };
            f(&mut b);
            samples_ns.push(b.elapsed_ns / iters_per_sample);
        }
        samples_ns.sort_unstable();
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<u64>() / samples_ns.len() as u64;
        println!(
            "bench {name:<40} median {:>12} mean {:>12} ({} samples x {} iters)",
            fmt_ns(median),
            fmt_ns(mean),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Handed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
}

impl Bencher {
    /// Times `routine`, running it the sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as u64;
    }
}

/// Declares a benchmark group; supports both the plain and `name =`/`config =`
/// forms of the upstream macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` that runs each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }
}
