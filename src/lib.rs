//! # seed-repro
//!
//! Facade crate for the SEED (ICDE 2025) reproduction: *SEED — Enhancing
//! Text-to-SQL Performance and Practical Usability Through Automatic Evidence
//! Generation*.
//!
//! The workspace is organised as a stack of substrates under the paper's
//! contribution:
//!
//! | crate | role |
//! |---|---|
//! | [`sqlengine`] | in-memory relational SQL engine (the SQLite stand-in) with a physical planner: hash equi-joins, PK hash-index lookups, predicate pushdown, and a deterministic cost model feeding VES |
//! | [`retrieval`] | BM25 / edit distance / longest common substring |
//! | [`embedding`] | deterministic sentence embeddings (all-mpnet stand-in) |
//! | [`llm`] | simulated language models, prompts, token budgets |
//! | [`datasets`] | synthetic BIRD- and Spider-like corpora with evidence defects |
//! | [`text2sql`] | CodeS, CHESS, RSL-SQL, DAIL-SQL, C3 baselines |
//! | [`core`] | SEED itself: schema summarization, sample SQL, evidence generation |
//! | [`eval`] | EX / VES metrics, defect analysis, experiment runners (serial + parallel) |
//! | [`serve`] | concurrent query-serving runtime: worker-pool batches over shared snapshots with process-wide plan/result caches |
//!
//! See `README.md` for a tour, `DESIGN.md` for the substitution arguments, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use seed_repro::datasets::{bird::build_bird, CorpusConfig, Split};
//! use seed_repro::core::SeedPipeline;
//!
//! let bench = build_bird(&CorpusConfig::tiny());
//! let train: Vec<_> = bench.split(Split::Train);
//! let question = bench.split(Split::Dev)[0];
//! let db = bench.database(&question.db_id).unwrap();
//! let evidence = SeedPipeline::gpt().generate(question, db, &train, true);
//! assert!(evidence.trace.sample_queries > 0);
//! ```

pub use seed_core as core;
pub use seed_datasets as datasets;
pub use seed_embedding as embedding;
pub use seed_eval as eval;
pub use seed_llm as llm;
pub use seed_retrieval as retrieval;
pub use seed_serve as serve;
pub use seed_sqlengine as sqlengine;
pub use seed_text2sql as text2sql;
