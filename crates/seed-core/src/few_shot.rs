//! Few-shot example selection (paper §III-C).
//!
//! SEED selects the training question most similar to the query (all-mpnet
//! cosine similarity in the paper, the deterministic hashed embedder here),
//! then retrieves four more related questions *from the same database*.

use seed_datasets::Question;
use seed_embedding::{cosine_similarity, EmbeddingModel};
use seed_llm::FewShotExample;

/// Total number of few-shot examples selected (1 global + 4 same-database).
pub const FEW_SHOT_TOTAL: usize = 5;

/// Selects few-shot examples for a question from the training pool.
pub fn select_examples<M: EmbeddingModel>(
    embedder: &M,
    question: &Question,
    train_pool: &[&Question],
) -> Vec<FewShotExample> {
    if train_pool.is_empty() {
        return Vec::new();
    }
    let target = embedder.embed(&question.text);
    let mut scored: Vec<(usize, f32)> = train_pool
        .iter()
        .enumerate()
        .map(|(i, q)| (i, cosine_similarity(&target, &embedder.embed(&q.text))))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut picked: Vec<usize> = Vec::new();
    // 1. The globally most similar training question.
    if let Some((best, _)) = scored.first() {
        picked.push(*best);
    }
    // 2. Four more from the same database, by similarity.
    for (i, _) in &scored {
        if picked.len() >= FEW_SHOT_TOTAL {
            break;
        }
        if picked.contains(i) {
            continue;
        }
        if train_pool[*i].db_id == question.db_id {
            picked.push(*i);
        }
    }
    // 3. Top up with the next most similar questions if the database has too few.
    for (i, _) in &scored {
        if picked.len() >= FEW_SHOT_TOTAL {
            break;
        }
        if !picked.contains(i) {
            picked.push(*i);
        }
    }

    picked
        .into_iter()
        .map(|i| {
            let q = train_pool[i];
            FewShotExample {
                question: q.text.clone(),
                evidence: q.human_evidence.text.clone(),
                sql: q.gold_sql.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_datasets::{bird::build_bird, CorpusConfig, Split};
    use seed_embedding::HashedEmbedder;

    #[test]
    fn selects_five_examples_mostly_from_same_database() {
        let bench = build_bird(&CorpusConfig::default());
        let train: Vec<&Question> = bench.split(Split::Train);
        let dev = bench.split(Split::Dev);
        let q = dev.iter().find(|q| q.db_id == "financial").unwrap();
        let examples = select_examples(&HashedEmbedder::default(), q, &train);
        assert_eq!(examples.len(), FEW_SHOT_TOTAL);
        // At least the same-database slots should exist: count training
        // questions whose text matches a financial training question.
        let financial_texts: Vec<&str> =
            train.iter().filter(|t| t.db_id == "financial").map(|t| t.text.as_str()).collect();
        let from_financial =
            examples.iter().filter(|e| financial_texts.contains(&e.question.as_str())).count();
        assert!(from_financial >= 3, "only {from_financial} examples from the same database");
    }

    #[test]
    fn empty_pool_yields_no_examples() {
        let bench = build_bird(&CorpusConfig::tiny());
        let q = bench.split(Split::Dev)[0];
        assert!(select_examples(&HashedEmbedder::default(), q, &[]).is_empty());
    }

    #[test]
    fn examples_carry_evidence_and_sql() {
        let bench = build_bird(&CorpusConfig::tiny());
        let train: Vec<&Question> = bench.split(Split::Train);
        let q = bench.split(Split::Dev)[0];
        for ex in select_examples(&HashedEmbedder::default(), q, &train) {
            assert!(!ex.sql.is_empty());
            assert!(ex.sql.to_uppercase().starts_with("SELECT"));
        }
    }
}
