//! The SEED pipelines (paper Figure 3).
//!
//! * **SEED_gpt** — sample SQL execution with GPT-4o-mini, evidence generation
//!   with GPT-4o, no schema summarization (the full schema fits the context).
//! * **SEED_deepseek** — every stage on DeepSeek-R1; schema summarization runs
//!   first because of the 8,192-token API limit; evidence is rendered in the
//!   fully-qualified style with join hints (the Table VI observation).
//! * **SEED_revised** — SEED_deepseek followed by the join-information removal
//!   of [`crate::revise`] (DeepSeek-V3 in the paper).

use seed_datasets::Question;
use seed_embedding::HashedEmbedder;
use seed_llm::{EvidenceGenTask, LanguageModel, ModelProfile, SimLlm};
use seed_sqlengine::Database;

use crate::few_shot::select_examples;
use crate::revise::remove_join_information;
use crate::sample_sql::run_sample_sql;
use crate::schema_summary::summarize_if_needed;

/// Which SEED architecture to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedVariant {
    /// Long-context architecture (Figure 3a): GPT-4o-mini + GPT-4o.
    Gpt,
    /// Limited-context architecture (Figure 3b): DeepSeek-R1 end to end.
    Deepseek,
    /// SEED_deepseek followed by join-information removal.
    Revised,
}

impl SeedVariant {
    /// Display name used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            SeedVariant::Gpt => "SEED_gpt",
            SeedVariant::Deepseek => "SEED_deepseek",
            SeedVariant::Revised => "SEED_revised",
        }
    }
}

/// Trace of one pipeline run (drives the Figure 3 harness and debugging).
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    /// Stage names in execution order.
    pub stages: Vec<String>,
    /// Tables kept by schema summarization (`None` when not applied).
    pub kept_tables: Option<Vec<String>>,
    /// Number of probe queries executed by the sample-SQL stage.
    pub sample_queries: usize,
    /// Number of (table, column) groups grounded.
    pub grounded_columns: usize,
    /// Few-shot examples placed in the evidence prompt.
    pub few_shot_examples: usize,
    /// Prompt tokens of the final evidence-generation call.
    pub prompt_tokens: usize,
    /// Whether the evidence prompt overflowed the model's context window.
    pub context_overflow: bool,
}

/// Evidence produced by a pipeline run.
#[derive(Debug, Clone)]
pub struct GeneratedEvidence {
    /// The evidence text (possibly empty).
    pub evidence: String,
    /// Execution trace.
    pub trace: PipelineTrace,
}

/// A configured SEED pipeline.
pub struct SeedPipeline {
    variant: SeedVariant,
    /// Model used for keyword extraction / sample SQL (GPT-4o-mini or DeepSeek-R1).
    sampler: SimLlm,
    /// Model used for evidence generation (GPT-4o or DeepSeek-R1).
    generator: SimLlm,
    embedder: HashedEmbedder,
}

impl SeedPipeline {
    /// SEED_gpt (Figure 3a).
    pub fn gpt() -> Self {
        SeedPipeline {
            variant: SeedVariant::Gpt,
            sampler: SimLlm::new(ModelProfile::gpt_4o_mini()),
            generator: SimLlm::new(ModelProfile::gpt_4o()),
            embedder: HashedEmbedder::default(),
        }
    }

    /// SEED_deepseek (Figure 3b).
    pub fn deepseek() -> Self {
        SeedPipeline {
            variant: SeedVariant::Deepseek,
            sampler: SimLlm::new(ModelProfile::deepseek_r1()),
            generator: SimLlm::new(ModelProfile::deepseek_r1()),
            embedder: HashedEmbedder::default(),
        }
    }

    /// SEED_revised: SEED_deepseek plus join-information removal.
    pub fn revised() -> Self {
        let mut p = Self::deepseek();
        p.variant = SeedVariant::Revised;
        p
    }

    /// Builds a pipeline for an arbitrary variant.
    pub fn new(variant: SeedVariant) -> Self {
        match variant {
            SeedVariant::Gpt => Self::gpt(),
            SeedVariant::Deepseek => Self::deepseek(),
            SeedVariant::Revised => Self::revised(),
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> SeedVariant {
        self.variant
    }

    /// Total simulated LLM calls made so far (both stages).
    pub fn llm_calls(&self) -> u64 {
        self.sampler.usage().calls + self.generator.usage().calls
    }

    /// Generates evidence for one question.
    ///
    /// `has_descriptions` states whether the benchmark ships description files
    /// (BIRD) or they were synthesized (Spider after
    /// [`seed_datasets::spider::synthesize_descriptions`]).
    pub fn generate(
        &self,
        question: &Question,
        db: &Database,
        train_pool: &[&Question],
        has_descriptions: bool,
    ) -> GeneratedEvidence {
        let mut trace = PipelineTrace::default();

        // Stage 1: schema summarization, only when the context demands it.
        let summary = summarize_if_needed(&self.generator, &question.text, db.schema(), 3_000);
        if let Some(kept) = &summary.kept_tables {
            trace.stages.push(format!("schema summarization (kept {} tables)", kept.len()));
        } else {
            trace.stages.push("full schema (no summarization)".to_string());
        }
        trace.kept_tables = summary.kept_tables.clone();

        // Stage 2: sample SQL execution.
        let samples =
            run_sample_sql(&self.sampler, &question.text, db, summary.kept_tables.as_deref());
        trace.stages.push(format!("sample SQL execution ({} probes)", samples.probes.len()));
        trace.sample_queries = samples.probes.len();
        trace.grounded_columns = samples.grounded.len();

        // Stage 3: few-shot selection from the training set.
        let few_shot = select_examples(&self.embedder, question, train_pool);
        trace.stages.push(format!("few-shot selection ({} examples)", few_shot.len()));
        trace.few_shot_examples = few_shot.len();

        // Stage 4: evidence generation.
        let (qualified_style, join_hints) = match self.variant {
            SeedVariant::Gpt => (false, Vec::new()),
            SeedVariant::Deepseek | SeedVariant::Revised => (true, join_hints_for(question, db)),
        };
        let task = EvidenceGenTask {
            question_id: &question.id,
            question: &question.text,
            schema: db.schema(),
            schema_subset: summary.kept_tables.as_deref(),
            grounded_values: &samples.grounded,
            few_shot: &few_shot,
            atoms: &question.atoms,
            descriptions_available: has_descriptions,
            qualified_style,
            join_hints: &join_hints,
        };
        let out = self.generator.generate_evidence(&task);
        trace.stages.push("evidence generation".to_string());
        trace.prompt_tokens = out.prompt_tokens;
        trace.context_overflow = out.context_overflow;

        // Stage 5 (SEED_revised only): strip join information.
        let evidence = if self.variant == SeedVariant::Revised {
            trace.stages.push("evidence revision (remove join information)".to_string());
            remove_join_information(&out.evidence)
        } else {
            out.evidence
        };

        GeneratedEvidence { evidence, trace }
    }
}

/// Derives join hints from the foreign keys connecting the tables the question
/// touches — the extra information SEED_deepseek appends (Table VI).
fn join_hints_for(question: &Question, db: &Database) -> Vec<String> {
    let mut tables: Vec<&str> = question.atoms.iter().map(|a| a.correct.table.as_str()).collect();
    tables.sort();
    tables.dedup();
    let mut hints = Vec::new();
    let schema = db.schema();
    for i in 0..tables.len() {
        for j in (i + 1)..tables.len() {
            if let Some(fk) = schema.join_between(tables[i], tables[j]) {
                hints.push(format!(
                    "join on `{}`.`{}` = `{}`.`{}`",
                    fk.from_table, fk.from_column, fk.to_table, fk.to_column
                ));
            }
        }
    }
    // Single-table questions still get a hint when the table links to another
    // one, mirroring SEED_deepseek's tendency to volunteer join information.
    if hints.is_empty() {
        if let Some(t) = tables.first() {
            if let Some(fk) = schema.foreign_keys_for(t).first() {
                hints.push(format!(
                    "join on `{}`.`{}` = `{}`.`{}`",
                    fk.from_table, fk.from_column, fk.to_table, fk.to_column
                ));
            }
        }
    }
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_datasets::{bird::build_bird, CorpusConfig, Split};

    fn setup() -> (seed_datasets::Benchmark, Vec<String>) {
        let bench = build_bird(&CorpusConfig::tiny());
        let ids: Vec<String> = bench.split(Split::Dev).iter().map(|q| q.id.clone()).collect();
        (bench, ids)
    }

    #[test]
    fn seed_gpt_grounds_value_codes() {
        let (bench, _) = setup();
        let train: Vec<&Question> = bench.split(Split::Train);
        let pipeline = SeedPipeline::gpt();
        let q = bench
            .split(Split::Dev)
            .into_iter()
            .find(|q| q.db_id == "financial" && q.text.contains("weekly issuance"))
            .expect("weekly-issuance question exists");
        let db = bench.database("financial").unwrap();
        let out = pipeline.generate(q, db, &train, true);
        assert!(
            out.evidence.contains("POPLATEK TYDNE"),
            "SEED_gpt should ground the issuance code, got: {}",
            out.evidence
        );
        assert!(out.trace.sample_queries > 0);
        assert!(!out.trace.context_overflow);
    }

    #[test]
    fn deepseek_variant_uses_qualified_style_and_join_hints() {
        let (bench, _) = setup();
        let train: Vec<&Question> = bench.split(Split::Train);
        let pipeline = SeedPipeline::deepseek();
        let dev = bench.split(Split::Dev);
        let mut saw_join_hint = false;
        for q in dev.iter().filter(|q| q.db_id == "financial").take(8) {
            let db = bench.database("financial").unwrap();
            let out = pipeline.generate(q, db, &train, true);
            if out.evidence.contains("join on") {
                saw_join_hint = true;
            }
        }
        assert!(saw_join_hint, "SEED_deepseek should emit join hints for some questions");
    }

    #[test]
    fn revised_variant_never_contains_join_hints() {
        let (bench, _) = setup();
        let train: Vec<&Question> = bench.split(Split::Train);
        let pipeline = SeedPipeline::revised();
        for q in bench.split(Split::Dev).into_iter().take(10) {
            let db = bench.database(&q.db_id).unwrap();
            let out = pipeline.generate(q, db, &train, true);
            assert!(!out.evidence.contains("join on"), "revised evidence: {}", out.evidence);
        }
    }

    #[test]
    fn pipeline_is_deterministic_and_metered() {
        let (bench, _) = setup();
        let train: Vec<&Question> = bench.split(Split::Train);
        let pipeline = SeedPipeline::gpt();
        let q = bench.split(Split::Dev)[0];
        let db = bench.database(&q.db_id).unwrap();
        let a = pipeline.generate(q, db, &train, true);
        let b = pipeline.generate(q, db, &train, true);
        assert_eq!(a.evidence, b.evidence);
        assert!(pipeline.llm_calls() >= 4);
    }

    #[test]
    fn variant_labels_are_stable() {
        assert_eq!(SeedVariant::Gpt.label(), "SEED_gpt");
        assert_eq!(SeedVariant::Deepseek.label(), "SEED_deepseek");
        assert_eq!(SeedVariant::Revised.label(), "SEED_revised");
        assert_eq!(SeedPipeline::new(SeedVariant::Revised).variant(), SeedVariant::Revised);
    }
}
