//! Sample SQL execution (paper §III-B).
//!
//! SEED emulates how a human without domain knowledge would inspect the
//! database: extract keywords from the question, pair them with candidate
//! columns, and run probe queries — `SELECT DISTINCT col`, `LIKE '%kw%'`
//! filters, and edit-distance similar-value retrieval — to see what the
//! database actually contains. Multi-word keywords additionally run through
//! a per-column BM25 index over the probed distinct values, which surfaces
//! values sharing any token with the keyword even when no contiguous
//! substring matches (the inverted index makes this probe cheap).

use seed_llm::{ExtractedKeyword, GroundedColumn, KeywordExtractionTask, LanguageModel};
use seed_retrieval::{normalized_similarity, Bm25Index};
use seed_sqlengine::{execute, Database};

/// A probe query that was executed, kept for the pipeline trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleQuery {
    pub sql: String,
    pub rows_returned: usize,
}

/// Output of the sample-SQL stage.
#[derive(Debug, Clone, Default)]
pub struct SampleSqlResult {
    /// Values grounded per (table, column), ready to embed in the prompt.
    pub grounded: Vec<GroundedColumn>,
    /// Every probe query executed.
    pub probes: Vec<SampleQuery>,
}

/// Maximum number of keyword/column pairs probed per question.
const MAX_PAIRS: usize = 12;
/// Values reported per grounded column.
const VALUES_PER_COLUMN: usize = 8;

/// Runs the sample-SQL stage for one question.
///
/// `keep_tables` restricts probing to a summarized schema (SEED_deepseek);
/// pass `None` to probe the whole database (SEED_gpt).
pub fn run_sample_sql<M: LanguageModel>(
    model: &M,
    question: &str,
    db: &Database,
    keep_tables: Option<&[String]>,
) -> SampleSqlResult {
    let keywords = model.extract_keywords(&KeywordExtractionTask { question, schema: db.schema() });
    ground_keywords(&keywords, question, db, keep_tables)
}

/// Grounds already-extracted keywords (separated out for testability).
pub fn ground_keywords(
    keywords: &[ExtractedKeyword],
    question: &str,
    db: &Database,
    keep_tables: Option<&[String]>,
) -> SampleSqlResult {
    let mut result = SampleSqlResult::default();
    let mut pairs = 0usize;
    for kw in keywords {
        for (table, column) in &kw.candidate_columns {
            if pairs >= MAX_PAIRS {
                break;
            }
            if let Some(keep) = keep_tables {
                if !keep.iter().any(|t| t.eq_ignore_ascii_case(table)) {
                    continue;
                }
            }
            pairs += 1;
            // Probe 1: distinct values of the candidate column.
            let distinct_sql = format!("SELECT DISTINCT `{column}` FROM `{table}` LIMIT 40");
            let mut values: Vec<String> = Vec::new();
            if let Ok(rs) = execute(db, &distinct_sql) {
                result.probes.push(SampleQuery { sql: distinct_sql, rows_returned: rs.len() });
                values = rs.rows.iter().filter_map(|r| r.first()).map(|v| v.render()).collect();
            }
            // Probe 2: LIKE filter with the keyword.
            let like_sql = format!(
                "SELECT DISTINCT `{column}` FROM `{table}` WHERE `{column}` LIKE '%{}%' LIMIT 10",
                kw.keyword.replace('\'', "''")
            );
            let mut like_hits: Vec<String> = Vec::new();
            if let Ok(rs) = execute(db, &like_sql) {
                result.probes.push(SampleQuery { sql: like_sql, rows_returned: rs.len() });
                like_hits = rs.rows.iter().filter_map(|r| r.first()).map(|v| v.render()).collect();
            }
            // Similar values by edit distance (the paper's second retrieval mode).
            let mut similar: Vec<(String, f64)> = values
                .iter()
                .map(|v| (v.clone(), normalized_similarity(&kw.keyword, v)))
                .filter(|(_, s)| *s >= 0.5)
                .collect();
            similar.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            // BM25 over the column's distinct values: catches multi-word
            // keywords whose tokens appear non-contiguously in a value,
            // which both the LIKE probe and whole-string edit distance miss.
            let bm25_hits: Vec<String> = if kw.keyword.split_whitespace().nth(1).is_some() {
                let index = Bm25Index::build(values.iter().cloned());
                index
                    .search(&kw.keyword, VALUES_PER_COLUMN)
                    .into_iter()
                    .map(|hit| values[hit.doc_id].clone())
                    .collect()
            } else {
                Vec::new()
            };

            let mut selected: Vec<String> = Vec::new();
            for v in
                like_hits.into_iter().chain(similar.into_iter().map(|(v, _)| v)).chain(bm25_hits)
            {
                if !selected.contains(&v) {
                    selected.push(v);
                }
                if selected.len() >= VALUES_PER_COLUMN {
                    break;
                }
            }
            // When nothing matched lexically, still report a small sample of
            // distinct values — this is what lets the evidence generator see
            // 'POPLATEK TYDNE' even though no question word resembles it.
            if selected.is_empty() {
                selected = values.into_iter().take(VALUES_PER_COLUMN).collect();
            }
            if selected.is_empty() {
                continue;
            }
            match result.grounded.iter_mut().find(|g| {
                g.table.eq_ignore_ascii_case(table) && g.column.eq_ignore_ascii_case(column)
            }) {
                Some(existing) => {
                    for v in selected {
                        if !existing.values.contains(&v)
                            && existing.values.len() < VALUES_PER_COLUMN
                        {
                            existing.values.push(v);
                        }
                    }
                }
                None => result.grounded.push(GroundedColumn::new(table, column, selected)),
            }
        }
    }
    let _ = question;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_datasets::{bird::build_bird, CorpusConfig};
    use seed_llm::{ModelProfile, SimLlm};

    fn financial() -> (seed_datasets::Benchmark, SimLlm) {
        (build_bird(&CorpusConfig::tiny()), SimLlm::new(ModelProfile::gpt_4o_mini()))
    }

    #[test]
    fn grounds_frequency_codes_via_distinct_probe() {
        let (bench, model) = financial();
        let db = bench.database("financial").unwrap();
        let out = run_sample_sql(
            &model,
            "Among the weekly issuance accounts, how many have a loan of under 200000? What frequency do they use?",
            db,
            None,
        );
        assert!(!out.probes.is_empty());
        let freq = out.grounded.iter().find(|g| g.column == "frequency");
        assert!(
            freq.is_some_and(|g| g.values.iter().any(|v| v.contains("POPLATEK"))),
            "sample SQL must surface the issuance codes: {:?}",
            out.grounded
        );
    }

    #[test]
    fn respects_table_subset() {
        let (bench, model) = financial();
        let db = bench.database("financial").unwrap();
        let keep = vec!["loan".to_string()];
        let out = run_sample_sql(&model, "What is the average loan amount?", db, Some(&keep));
        assert!(out.grounded.iter().all(|g| g.table == "loan"));
    }

    #[test]
    fn probe_queries_are_recorded() {
        let (bench, model) = financial();
        let db = bench.database("card_games").unwrap();
        let out = run_sample_sql(
            &model,
            "How many cards are restricted in the vintage format?",
            db,
            None,
        );
        assert!(out.probes.iter().any(|p| p.sql.contains("LIKE")));
        assert!(out.probes.iter().any(|p| p.sql.starts_with("SELECT DISTINCT")));
    }

    #[test]
    fn bm25_grounds_multi_word_keywords_with_scrambled_token_order() {
        let (bench, _) = financial();
        let db = bench.database("financial").unwrap();
        // "MESICNE POPLATEK" reverses the stored token order, so the LIKE
        // probe finds no contiguous substring and whole-string edit distance
        // stays under threshold — only the BM25 token match can ground it.
        let kw = ExtractedKeyword {
            keyword: "MESICNE POPLATEK".to_string(),
            candidate_columns: vec![("account".to_string(), "frequency".to_string())],
        };
        let out = ground_keywords(&[kw], "irrelevant", db, None);
        let freq = out.grounded.iter().find(|g| g.column == "frequency").expect("grounded");
        assert_eq!(
            freq.values.first().map(String::as_str),
            Some("POPLATEK MESICNE"),
            "the value containing both query tokens must rank first: {:?}",
            freq.values
        );
    }

    #[test]
    fn exact_casing_is_preserved_in_grounded_values() {
        let (bench, model) = financial();
        let db = bench.database("card_games").unwrap();
        let out = run_sample_sql(&model, "How many cards have a restricted status?", db, None);
        let status = out.grounded.iter().find(|g| g.column == "status");
        assert!(status.is_some_and(|g| g.values.iter().any(|v| v == "Restricted")));
    }
}
