//! Evidence revision (paper §IV-E-2).
//!
//! The paper observes that SEED_deepseek evidence differs from BIRD evidence
//! mainly by including join information, and that CHESS — whose prompts are
//! engineered around the BIRD format — performs worse with it. SEED_revised
//! removes the join-related sentences (the paper uses DeepSeek-V3 for this
//! textual clean-up; a deterministic filter reproduces it exactly).

/// Removes join-information clauses from evidence text and strips the heavy
/// backtick qualification, yielding BIRD-shaped evidence.
pub fn remove_join_information(evidence: &str) -> String {
    let kept: Vec<String> = evidence
        .split([';', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .filter(|s| {
            let lower = s.to_lowercase();
            !(lower.starts_with("join on")
                || lower.starts_with("join ")
                || lower.contains(" join on "))
        })
        .map(strip_qualification)
        .collect();
    kept.join("; ")
}

/// Rewrites `` `table`.`column` `` references to bare `column`, the way BIRD
/// evidence is written.
fn strip_qualification(sentence: &str) -> String {
    let mut out = String::with_capacity(sentence.len());
    let mut rest = sentence;
    while let Some(start) = rest.find('`') {
        out.push_str(&rest[..start]);
        // Pattern: `table`.`column`
        let after = &rest[start + 1..];
        if let Some(t_end) = after.find('`') {
            let table = &after[..t_end];
            let tail = &after[t_end + 1..];
            if let Some(stripped) = tail.strip_prefix(".`") {
                if let Some(c_end) = stripped.find('`') {
                    out.push_str(&stripped[..c_end]);
                    rest = &stripped[c_end + 1..];
                    continue;
                }
            }
            // Lone `identifier`
            out.push_str(table);
            rest = tail;
            continue;
        }
        out.push('`');
        rest = after;
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_join_sentences() {
        let evidence = "SAT test takers of over 500 refers to `satscores`.`NumTstTakr` > 500;\n\
                        magnet schools or offer a magnet program refers to `schools`.`Magnet` = 1;\n\
                        join on `satscores`.`cds` = `schools`.`CDSCode`";
        let revised = remove_join_information(evidence);
        assert!(!revised.contains("join on"));
        assert!(revised.contains("NumTstTakr > 500"));
        assert!(revised.contains("Magnet = 1"));
    }

    #[test]
    fn strips_backtick_qualification() {
        assert_eq!(
            strip_qualification("weekly refers to `account`.`frequency` = 'POPLATEK TYDNE'"),
            "weekly refers to frequency = 'POPLATEK TYDNE'"
        );
    }

    #[test]
    fn plain_bird_evidence_is_unchanged_in_content() {
        let e =
            "restricted refers to status = 'Restricted'; have text boxes refers to isTextless = 0";
        assert_eq!(remove_join_information(e), e);
    }

    #[test]
    fn empty_input_stays_empty() {
        assert_eq!(remove_join_information(""), "");
    }
}
