//! Schema summarization (paper §III-A).
//!
//! When the base model's context window cannot hold the full schema plus
//! examples (DeepSeek-R1's 8,192-token limit), SEED first compares the
//! question with the schema and keeps only the relevant tables. The paper
//! notes this carries risk — pruning away a needed table hurts — which is why
//! SEED_gpt skips it entirely.

use seed_llm::{count_tokens, LanguageModel, SchemaSummaryTask};
use seed_sqlengine::DatabaseSchema;

/// Result of the summarization decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaSummary {
    /// Tables kept in the prompt; `None` means the full schema is used.
    pub kept_tables: Option<Vec<String>>,
    /// Estimated token size of the full schema DDL.
    pub full_schema_tokens: usize,
}

/// Decides whether to summarize and, if so, which tables to keep.
///
/// Summarization is applied only when the full schema (plus a fixed overhead
/// for instructions, examples, and sample values) would not fit the model's
/// context window — the behaviour split between SEED_gpt and SEED_deepseek.
pub fn summarize_if_needed<M: LanguageModel>(
    model: &M,
    question: &str,
    schema: &DatabaseSchema,
    prompt_overhead_tokens: usize,
) -> SchemaSummary {
    let full_schema_tokens = count_tokens(&schema.to_ddl());
    let budget = model.profile().context_window;
    if full_schema_tokens + prompt_overhead_tokens <= budget {
        return SchemaSummary { kept_tables: None, full_schema_tokens };
    }
    // Keep roughly as many tables as fit in half the remaining budget.
    let avg_table_tokens = (full_schema_tokens / schema.tables.len().max(1)).max(1);
    let available = budget.saturating_sub(prompt_overhead_tokens).max(avg_table_tokens);
    let max_tables = (available / 2 / avg_table_tokens).clamp(1, schema.tables.len());
    let out = model.summarize_schema(&SchemaSummaryTask { question, schema, max_tables });
    SchemaSummary { kept_tables: Some(out.tables), full_schema_tokens }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_datasets::{bird::build_bird, CorpusConfig};
    use seed_llm::{ModelProfile, SimLlm};

    #[test]
    fn long_context_model_keeps_full_schema() {
        let bench = build_bird(&CorpusConfig::tiny());
        let db = bench.database("financial").unwrap();
        let model = SimLlm::new(ModelProfile::gpt_4o());
        let s = summarize_if_needed(
            &model,
            "How many weekly issuance accounts are there?",
            db.schema(),
            2_000,
        );
        assert!(s.kept_tables.is_none());
    }

    #[test]
    fn small_context_model_prunes() {
        let bench = build_bird(&CorpusConfig::tiny());
        let db = bench.database("financial").unwrap();
        let mut profile = ModelProfile::deepseek_r1();
        // Shrink the window below the schema size to force summarization.
        profile.context_window = 120;
        let model = SimLlm::new(profile);
        let s = summarize_if_needed(
            &model,
            "What is the total loan amount of weekly issuance accounts?",
            db.schema(),
            50,
        );
        let kept = s.kept_tables.expect("summarization must trigger");
        assert!(!kept.is_empty());
        assert!(kept.len() < db.schema().tables.len());
    }

    #[test]
    fn kept_tables_are_question_relevant() {
        let bench = build_bird(&CorpusConfig::tiny());
        let db = bench.database("financial").unwrap();
        let mut profile = ModelProfile::deepseek_r1();
        profile.context_window = 200;
        let model = SimLlm::new(profile);
        let s = summarize_if_needed(&model, "What is the average loan amount?", db.schema(), 50);
        let kept = s.kept_tables.unwrap();
        assert!(kept.iter().any(|t| t == "loan"), "kept {kept:?}");
    }
}
