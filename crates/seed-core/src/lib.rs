//! # seed-core
//!
//! The paper's contribution: SEED (System for Evidence Extraction and Domain
//! knowledge generation). Given a question and a database — and *no* human
//! evidence — SEED produces the evidence automatically by:
//!
//! 1. **Schema summarization** ([`schema_summary`]) when the base model's
//!    context window is small (SEED_deepseek; DeepSeek-R1's API accepts only
//!    8,192 tokens), skipped for long-context models (SEED_gpt).
//! 2. **Sample SQL execution** ([`sample_sql`]) — extract column/value
//!    keywords from the question, pair them with candidate columns, and run
//!    `SELECT DISTINCT` / `LIKE` / edit-distance probes against the database
//!    to ground them in real values.
//! 3. **Evidence generation** ([`pipeline`]) — build a prompt from few-shot
//!    examples selected by embedding similarity ([`few_shot`]), the sample-SQL
//!    results, the schema, and the question, and have the model write the
//!    evidence sentences.
//!
//! The SEED_revised variant ([`revise`]) post-processes SEED_deepseek evidence
//! to strip the join-information sentences that the paper's Table VII analysis
//! shows confuse CHESS.

pub mod few_shot;
pub mod pipeline;
pub mod revise;
pub mod sample_sql;
pub mod schema_summary;

pub use pipeline::{GeneratedEvidence, PipelineTrace, SeedPipeline, SeedVariant};
pub use revise::remove_join_information;
