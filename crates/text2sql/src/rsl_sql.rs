//! RSL-SQL: robust (bidirectional) schema linking.
//!
//! RSL-SQL first generates a preliminary SQL query over the *full* schema,
//! extracts the schema elements that query references, and then generates the
//! final query over the union of forward-linked and backward-extracted
//! elements. The bidirectional step is what makes its pruning robust: tables
//! the preliminary query needed are never dropped.

use seed_llm::{LanguageModel, ModelProfile, SimLlm, SqlGenTask};

use crate::value_retrieval::retrieve_values;
use crate::{GenerationContext, Text2SqlSystem};

/// The RSL-SQL system (GPT-4o base, as in the paper's Table IV).
pub struct RslSql {
    model: SimLlm,
}

impl Default for RslSql {
    fn default() -> Self {
        Self::new()
    }
}

impl RslSql {
    pub fn new() -> Self {
        RslSql { model: SimLlm::new(ModelProfile::gpt_4o()) }
    }

    /// The underlying simulated model.
    pub fn model(&self) -> &SimLlm {
        &self.model
    }

    /// Extracts the tables a SQL string references (backward schema linking).
    fn referenced_tables(sql: &str, schema: &seed_sqlengine::DatabaseSchema) -> Vec<String> {
        let lowered = sql.to_lowercase();
        schema
            .tables
            .iter()
            .filter(|t| lowered.contains(&t.name.to_lowercase()))
            .map(|t| t.name.clone())
            .collect()
    }
}

impl Text2SqlSystem for RslSql {
    fn name(&self) -> String {
        "RSL-SQL (GPT-4o)".to_string()
    }

    fn generate(&self, ctx: &GenerationContext<'_>) -> String {
        let grounded = retrieve_values(&ctx.question.text, ctx.database);
        fn make_task<'a>(
            ctx: &GenerationContext<'a>,
            grounded: &'a [seed_llm::GroundedColumn],
            schema_subset: Option<&'a [String]>,
            sample_index: u32,
        ) -> SqlGenTask<'a> {
            SqlGenTask {
                question_id: &ctx.question.id,
                question: &ctx.question.text,
                schema: ctx.database.schema(),
                schema_subset,
                evidence: ctx.evidence,
                descriptions_in_prompt: true,
                grounded_values: grounded,
                few_shot: &[],
                atoms: &ctx.question.atoms,
                gold_sql: &ctx.question.gold_sql,
                difficulty: ctx.question.difficulty,
                calibration_hints: false,
                sample_index,
            }
        }

        // Step 1: preliminary SQL over the full schema (forward pass).
        let preliminary = self.model.generate_sql(&make_task(ctx, &grounded, None, 0)).sql;
        // Step 2: backward linking — keep the tables the preliminary SQL used.
        let linked = Self::referenced_tables(&preliminary, ctx.database.schema());
        if linked.is_empty() {
            return preliminary;
        }
        // Step 3: final generation over the bidirectionally linked schema.
        self.model.generate_sql(&make_task(ctx, &grounded, Some(&linked), 1)).sql
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use seed_datasets::Split;
    use seed_sqlengine::execute;

    #[test]
    fn backward_linking_extracts_tables_from_sql() {
        let bench = tiny_bird();
        let db = bench.database("financial").unwrap();
        let tables = RslSql::referenced_tables(
            "SELECT COUNT(*) FROM account INNER JOIN loan ON 1 = 1",
            db.schema(),
        );
        assert!(tables.contains(&"account".to_string()));
        assert!(tables.contains(&"loan".to_string()));
        assert!(!tables.contains(&"client".to_string()));
    }

    #[test]
    fn rsl_sql_answers_a_reasonable_fraction_with_evidence() {
        let bench = tiny_bird();
        let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
        let system = RslSql::new();
        let mut ok = 0usize;
        let mut total = 0usize;
        for (q, db) in dev_cases(&bench) {
            total += 1;
            let gold = execute(db, &q.gold_sql).unwrap();
            let ev = q.oracle_evidence();
            let ctx = GenerationContext {
                question: q,
                database: db,
                evidence: Some(&ev),
                train_pool: &train,
            };
            if execute(db, &system.generate(&ctx)).map(|r| r.result_eq(&gold)).unwrap_or(false) {
                ok += 1;
            }
        }
        assert!(ok as f64 / total as f64 > 0.5, "got {ok}/{total}");
    }
}
