//! # seed-text2sql
//!
//! Re-implementations of the text-to-SQL systems the SEED paper evaluates:
//! CodeS (fine-tuned), CHESS (multi-agent), RSL-SQL (bidirectional schema
//! linking), DAIL-SQL (in-context learning), and C3 (zero-shot with
//! self-consistency). Each system keeps its published pipeline structure —
//! what it retrieves, how it prunes, how it consumes evidence, how many
//! candidates it generates — while the underlying "LLM" is the deterministic
//! simulator from [`seed_llm`].

pub mod c3;
pub mod chess;
pub mod codes;
pub mod dail_sql;
pub mod rsl_sql;
pub mod value_retrieval;

use seed_datasets::Question;
use seed_sqlengine::Database;

pub use c3::C3;
pub use chess::{Chess, ChessConfig};
pub use codes::CodeS;
pub use dail_sql::DailSql;
pub use rsl_sql::RslSql;

/// Everything a system gets to see when translating one question.
#[derive(Debug, Clone, Copy)]
pub struct GenerationContext<'a> {
    /// The question (gold SQL and atoms are the simulator's latent oracle; the
    /// systems themselves only consult the text, schema, and evidence).
    pub question: &'a Question,
    /// The populated database.
    pub database: &'a Database,
    /// Evidence supplied to the system (`None` in the no-evidence setting).
    pub evidence: Option<&'a str>,
    /// Training-split questions available for few-shot selection.
    pub train_pool: &'a [&'a Question],
}

/// A text-to-SQL system under evaluation.
pub trait Text2SqlSystem {
    /// Display name used in result tables (e.g. `"SFT CodeS-15B"`).
    fn name(&self) -> String;

    /// Translates the question into SQL.
    fn generate(&self, ctx: &GenerationContext<'_>) -> String;
}

#[cfg(test)]
pub(crate) mod test_support {
    use seed_datasets::{bird::build_bird, Benchmark, CorpusConfig};

    /// A small shared BIRD corpus for the system tests.
    pub fn tiny_bird() -> Benchmark {
        build_bird(&CorpusConfig::tiny())
    }

    /// Returns (dev question, its database) pairs for a benchmark.
    pub fn dev_cases(
        bench: &Benchmark,
    ) -> Vec<(&seed_datasets::Question, &seed_sqlengine::Database)> {
        bench
            .split(seed_datasets::Split::Dev)
            .into_iter()
            .map(|q| (q, bench.database(&q.db_id).unwrap()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use seed_datasets::Split;
    use seed_sqlengine::execute;

    /// Every system must produce the gold answer more often with oracle
    /// evidence than without any evidence.
    #[test]
    fn all_systems_benefit_from_oracle_evidence() {
        let bench = tiny_bird();
        let systems: Vec<Box<dyn Text2SqlSystem>> = vec![
            Box::new(CodeS::new(7)),
            Box::new(Chess::new(ChessConfig::IrCgUt)),
            Box::new(RslSql::new()),
            Box::new(DailSql::new()),
            Box::new(C3::new()),
        ];
        let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
        for system in &systems {
            let mut with_ev = 0usize;
            let mut without_ev = 0usize;
            let mut total = 0usize;
            for (q, db) in dev_cases(&bench) {
                if q.atoms.is_empty() {
                    continue;
                }
                total += 1;
                let gold = execute(db, &q.gold_sql).unwrap();
                let oracle = q.oracle_evidence();
                let ctx_ev = GenerationContext {
                    question: q,
                    database: db,
                    evidence: Some(&oracle),
                    train_pool: &train,
                };
                let ctx_no = GenerationContext {
                    question: q,
                    database: db,
                    evidence: None,
                    train_pool: &train,
                };
                if execute(db, &system.generate(&ctx_ev))
                    .map(|r| r.result_eq(&gold))
                    .unwrap_or(false)
                {
                    with_ev += 1;
                }
                if execute(db, &system.generate(&ctx_no))
                    .map(|r| r.result_eq(&gold))
                    .unwrap_or(false)
                {
                    without_ev += 1;
                }
            }
            assert!(total > 10);
            assert!(
                with_ev > without_ev,
                "{} should benefit from oracle evidence ({with_ev} vs {without_ev})",
                system.name(),
            );
        }
    }

    #[test]
    fn system_names_are_distinct() {
        let names: Vec<String> = vec![
            CodeS::new(15).name(),
            CodeS::new(7).name(),
            Chess::new(ChessConfig::IrCgUt).name(),
            Chess::new(ChessConfig::IrSsCg).name(),
            RslSql::new().name(),
            DailSql::new().name(),
            C3::new().name(),
        ];
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
