//! CodeS: fine-tuned open-source text-to-SQL models (1B/3B/7B/15B).
//!
//! The published system fine-tunes StarCoder, links schema elements with the
//! RESDSQL recipe, and references database values through a BM25 index plus
//! longest-common-substring matching. It consumes evidence by simple
//! concatenation with the question. Here the fine-tuned generator is the
//! simulator with a `sft-codes-*` profile (small context, very high
//! evidence-grounding fidelity), and the value referencing is
//! [`crate::value_retrieval`].

use seed_llm::{LanguageModel, ModelProfile, SimLlm, SqlGenTask};

use crate::value_retrieval::retrieve_values;
use crate::{GenerationContext, Text2SqlSystem};

/// The CodeS system at a given parameter count (in billions).
pub struct CodeS {
    model: SimLlm,
    billions: u32,
}

impl CodeS {
    /// Creates a CodeS system of the given size (1, 3, 7, or 15 billion).
    pub fn new(billions: u32) -> Self {
        CodeS { model: SimLlm::new(ModelProfile::codes(billions)), billions }
    }

    /// The underlying simulated model (exposed for usage accounting).
    pub fn model(&self) -> &SimLlm {
        &self.model
    }
}

impl Text2SqlSystem for CodeS {
    fn name(&self) -> String {
        format!("SFT CodeS-{}B", self.billions)
    }

    fn generate(&self, ctx: &GenerationContext<'_>) -> String {
        // Coarse-to-fine value referencing (BM25 + LCS in the paper).
        let grounded = retrieve_values(&ctx.question.text, ctx.database);
        let task = SqlGenTask {
            question_id: &ctx.question.id,
            question: &ctx.question.text,
            schema: ctx.database.schema(),
            schema_subset: None,
            evidence: ctx.evidence,
            descriptions_in_prompt: false,
            grounded_values: &grounded,
            few_shot: &[],
            atoms: &ctx.question.atoms,
            gold_sql: &ctx.question.gold_sql,
            difficulty: ctx.question.difficulty,
            calibration_hints: false,
            sample_index: 0,
        };
        self.model.generate_sql(&task).sql
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use seed_datasets::Split;
    use seed_sqlengine::execute;

    #[test]
    fn larger_codes_is_at_least_as_good_without_evidence() {
        let bench = tiny_bird();
        let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
        let small = CodeS::new(1);
        let large = CodeS::new(15);
        let mut small_ok = 0;
        let mut large_ok = 0;
        for (q, db) in dev_cases(&bench) {
            let gold = execute(db, &q.gold_sql).unwrap();
            for (system, counter) in [(&small, &mut small_ok), (&large, &mut large_ok)] {
                let ctx = GenerationContext {
                    question: q,
                    database: db,
                    evidence: None,
                    train_pool: &train,
                };
                if execute(db, &system.generate(&ctx)).map(|r| r.result_eq(&gold)).unwrap_or(false)
                {
                    *counter += 1;
                }
            }
        }
        assert!(large_ok >= small_ok, "CodeS-15B ({large_ok}) should beat CodeS-1B ({small_ok})");
    }

    #[test]
    fn generation_is_deterministic() {
        let bench = tiny_bird();
        let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
        let system = CodeS::new(7);
        let (q, db) = dev_cases(&bench)[0];
        let ctx =
            GenerationContext { question: q, database: db, evidence: None, train_pool: &train };
        assert_eq!(system.generate(&ctx), system.generate(&ctx));
    }

    #[test]
    fn usage_is_metered() {
        let bench = tiny_bird();
        let system = CodeS::new(3);
        let (q, db) = dev_cases(&bench)[0];
        let ctx = GenerationContext { question: q, database: db, evidence: None, train_pool: &[] };
        system.generate(&ctx);
        assert_eq!(system.model().usage().calls, 1);
    }
}
