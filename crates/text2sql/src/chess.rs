//! CHESS: contextual harnessing for efficient SQL synthesis.
//!
//! CHESS is a multi-agent framework with four agents: an information retriever
//! (IR) that pulls relevant values and descriptions, a schema selector (SS)
//! that prunes the schema, a candidate generator (CG), and a unit tester (UT)
//! that filters candidates. The paper evaluates two configurations on
//! GPT-4o-mini: IR+CG+UT and IR+SS+CG; both are reproduced here.
//!
//! CHESS's prompts are engineered around the *format* of BIRD evidence —
//! the paper's Table VI/VII analysis shows that SEED_deepseek's extra
//! join-information sentences confuse it. That format sensitivity is modelled
//! as a difficulty penalty when the supplied evidence contains join hints.

use seed_llm::{LanguageModel, ModelProfile, SchemaSummaryTask, SimLlm, SqlGenTask};
use seed_sqlengine::execute;

use crate::value_retrieval::retrieve_values;
use crate::{GenerationContext, Text2SqlSystem};

/// Which agents are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChessConfig {
    /// Information retriever + candidate generator + unit tester.
    IrCgUt,
    /// Information retriever + schema selector + candidate generator.
    IrSsCg,
}

/// The CHESS system.
pub struct Chess {
    model: SimLlm,
    config: ChessConfig,
}

impl Chess {
    /// Creates CHESS with the given agent configuration (GPT-4o-mini base).
    pub fn new(config: ChessConfig) -> Self {
        Chess { model: SimLlm::new(ModelProfile::gpt_4o_mini()), config }
    }

    /// The underlying simulated model.
    pub fn model(&self) -> &SimLlm {
        &self.model
    }

    /// Number of candidates the generator produces.
    fn candidates(&self) -> u32 {
        match self.config {
            ChessConfig::IrCgUt => 3,
            ChessConfig::IrSsCg => 1,
        }
    }
}

impl Text2SqlSystem for Chess {
    fn name(&self) -> String {
        match self.config {
            ChessConfig::IrCgUt => "CHESS(IR+CG+UT) (GPT-4o-mini)".to_string(),
            ChessConfig::IrSsCg => "CHESS(IR+SS+CG) (GPT-4o-mini)".to_string(),
        }
    }

    fn generate(&self, ctx: &GenerationContext<'_>) -> String {
        // IR agent: values + description lines.
        let grounded = retrieve_values(&ctx.question.text, ctx.database);

        // SS agent: prune the schema (only in the IR+SS+CG configuration).
        let schema_subset = if self.config == ChessConfig::IrSsCg {
            let summary = self.model.summarize_schema(&SchemaSummaryTask {
                question: &ctx.question.text,
                schema: ctx.database.schema(),
                max_tables: 3,
            });
            Some(summary.tables)
        } else {
            None
        };

        // Evidence-format sensitivity: CHESS's prompt engineering expects
        // BIRD-shaped evidence; join hints and heavy qualification distract it.
        let mut difficulty = ctx.question.difficulty;
        if let Some(e) = ctx.evidence {
            if e.contains("join on") {
                difficulty = (difficulty + 0.22).min(0.95);
            }
        }

        // CG agent: candidate generation (+ UT agent filtering when active).
        let mut best: Option<String> = None;
        let mut fallback: Option<String> = None;
        for sample in 0..self.candidates() {
            let task = SqlGenTask {
                question_id: &ctx.question.id,
                question: &ctx.question.text,
                schema: ctx.database.schema(),
                schema_subset: schema_subset.as_deref(),
                evidence: ctx.evidence,
                descriptions_in_prompt: true,
                grounded_values: &grounded,
                few_shot: &[],
                atoms: &ctx.question.atoms,
                gold_sql: &ctx.question.gold_sql,
                difficulty,
                calibration_hints: false,
                sample_index: sample,
            };
            let sql = self.model.generate_sql(&task).sql;
            if fallback.is_none() {
                fallback = Some(sql.clone());
            }
            if self.config == ChessConfig::IrCgUt {
                // UT agent: keep the first candidate that executes and returns rows.
                match execute(ctx.database, &sql) {
                    Ok(rs) if !rs.is_empty() => {
                        best = Some(sql);
                        break;
                    }
                    Ok(_) if best.is_none() => best = Some(sql),
                    _ => {}
                }
            } else {
                best = Some(sql);
                break;
            }
        }
        best.or(fallback).unwrap_or_else(|| "SELECT 1".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use seed_datasets::Split;

    fn accuracy(
        system: &Chess,
        evidence_for: impl Fn(&seed_datasets::Question) -> Option<String>,
    ) -> f64 {
        let bench = tiny_bird();
        let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
        let mut ok = 0usize;
        let mut total = 0usize;
        for (q, db) in dev_cases(&bench) {
            total += 1;
            let gold = execute(db, &q.gold_sql).unwrap();
            let ev = evidence_for(q);
            let ctx = GenerationContext {
                question: q,
                database: db,
                evidence: ev.as_deref(),
                train_pool: &train,
            };
            if execute(db, &system.generate(&ctx)).map(|r| r.result_eq(&gold)).unwrap_or(false) {
                ok += 1;
            }
        }
        ok as f64 / total as f64
    }

    #[test]
    fn unit_tester_configuration_beats_schema_selector_without_evidence() {
        let with_ut = accuracy(&Chess::new(ChessConfig::IrCgUt), |_| None);
        let with_ss = accuracy(&Chess::new(ChessConfig::IrSsCg), |_| None);
        assert!(
            with_ut >= with_ss,
            "IR+CG+UT ({with_ut:.2}) should be at least as accurate as IR+SS+CG ({with_ss:.2})"
        );
    }

    #[test]
    fn join_hint_evidence_is_less_helpful_than_plain_evidence() {
        let system = Chess::new(ChessConfig::IrCgUt);
        let plain = accuracy(&system, |q| Some(q.oracle_evidence()));
        let with_joins = accuracy(&system, |q| {
            Some(format!(
                "{};\njoin on `a`.`x` = `b`.`y`;\njoin on `c`.`z` = `d`.`w`",
                q.oracle_evidence()
            ))
        });
        assert!(
            plain >= with_joins,
            "BIRD-shaped evidence ({plain:.2}) should not underperform join-laden evidence ({with_joins:.2})"
        );
    }
}
