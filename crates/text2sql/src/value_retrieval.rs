//! Database-value retrieval shared by the CodeS, CHESS, and RSL-SQL pipelines.
//!
//! Given a question, the retriever scans the text columns of the database for
//! values that lexically match question words (coarse BM25-style token match,
//! then longest-common-substring / edit-distance refinement, the CodeS recipe).
//! Matching values are surfaced to the model as [`GroundedColumn`]s — which is
//! how a system can recover exact value casing ("Restricted") without evidence,
//! but not opaque codes ("POPLATEK TYDNE" from "weekly").

use seed_llm::GroundedColumn;
use seed_retrieval::{content_words, lcs_ratio, normalized_similarity};
use seed_sqlengine::Database;

/// Maximum distinct values scanned per column.
const VALUES_PER_COLUMN: usize = 64;
/// Maximum values reported per grounded column.
const REPORTED_VALUES: usize = 6;

/// Retrieves values relevant to the question from every text column.
pub fn retrieve_values(question: &str, db: &Database) -> Vec<GroundedColumn> {
    let words = content_words(question);
    let mut out = Vec::new();
    for table_name in db.table_names() {
        let table = match db.table(&table_name) {
            Ok(t) => t,
            Err(_) => continue,
        };
        for col in &table.schema.columns {
            if col.data_type != seed_sqlengine::DataType::Text {
                continue;
            }
            let values = match table.distinct_values(&col.name, VALUES_PER_COLUMN) {
                Ok(v) => v,
                Err(_) => continue,
            };
            let mut matched: Vec<(String, f64)> = Vec::new();
            for v in values {
                let text = v.render();
                let score = best_match_score(&words, &text);
                if score >= 0.72 {
                    matched.push((text, score));
                }
            }
            if matched.is_empty() {
                continue;
            }
            matched.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            out.push(GroundedColumn::new(
                &table_name,
                &col.name,
                matched.into_iter().take(REPORTED_VALUES).map(|(v, _)| v).collect(),
            ));
        }
    }
    out
}

/// Scores how well any question word matches a candidate value.
fn best_match_score(words: &[String], value: &str) -> f64 {
    let value_lower = value.to_lowercase();
    let mut best: f64 = 0.0;
    for w in words {
        if value_lower == *w {
            return 1.0;
        }
        if value_lower.contains(w.as_str()) && w.len() >= 4 {
            best = best.max(0.9);
        }
        let sim = normalized_similarity(w, &value_lower);
        let lcs = lcs_ratio(w, &value_lower);
        best = best.max(0.55 * sim + 0.45 * lcs);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_datasets::{bird::build_bird, CorpusConfig};

    #[test]
    fn recovers_exact_casing_from_case_insensitive_mention() {
        let bench = build_bird(&CorpusConfig::tiny());
        let db = bench.database("card_games").unwrap();
        let grounded = retrieve_values("How many cards are restricted in the vintage format?", db);
        let status = grounded
            .iter()
            .find(|g| g.table == "legalities" && g.column == "status")
            .expect("status column grounded");
        assert!(status.values.iter().any(|v| v == "Restricted"));
    }

    #[test]
    fn does_not_recover_opaque_codes() {
        let bench = build_bird(&CorpusConfig::tiny());
        let db = bench.database("financial").unwrap();
        let grounded =
            retrieve_values("Among the weekly issuance accounts, how many have a loan?", db);
        let freq_values: Vec<&String> = grounded
            .iter()
            .filter(|g| g.column == "frequency")
            .flat_map(|g| g.values.iter())
            .collect();
        assert!(
            freq_values.iter().all(|v| !v.contains("POPLATEK")),
            "lexical retrieval must not bridge 'weekly' to 'POPLATEK TYDNE': {freq_values:?}"
        );
    }

    #[test]
    fn district_names_are_recovered() {
        let bench = build_bird(&CorpusConfig::tiny());
        let db = bench.database("financial").unwrap();
        let grounded =
            retrieve_values("How many clients opened accounts in the Jesenik branch?", db);
        assert!(grounded
            .iter()
            .any(|g| g.column == "district_name" && g.values.iter().any(|v| v == "Jesenik")));
    }

    #[test]
    fn empty_question_matches_nothing_catastrophic() {
        let bench = build_bird(&CorpusConfig::tiny());
        let db = bench.database("financial").unwrap();
        let grounded = retrieve_values("", db);
        assert!(grounded.len() < 3);
    }
}
