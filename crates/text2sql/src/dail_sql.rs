//! DAIL-SQL: systematic prompt engineering for in-context learning.
//!
//! DAIL-SQL's contribution is its prompt design: how to represent the schema,
//! how to retrieve few-shot examples (masked-question similarity), and how to
//! render them. It performs no database-value retrieval of its own and simply
//! concatenates the evidence with the question — which is why the paper finds
//! it suffers the largest degradation (−20.86 EX) when evidence is withheld.

use seed_embedding::{rank_by_similarity, EmbeddingModel, HashedEmbedder};
use seed_llm::{FewShotExample, LanguageModel, ModelProfile, SimLlm, SqlGenTask};

use crate::{GenerationContext, Text2SqlSystem};

/// Number of few-shot examples placed in the prompt.
const FEW_SHOT: usize = 5;

/// The DAIL-SQL system (GPT-4 base, as in the paper's Table IV).
pub struct DailSql {
    model: SimLlm,
    embedder: HashedEmbedder,
}

impl Default for DailSql {
    fn default() -> Self {
        Self::new()
    }
}

impl DailSql {
    pub fn new() -> Self {
        DailSql { model: SimLlm::new(ModelProfile::gpt_4()), embedder: HashedEmbedder::default() }
    }

    /// The underlying simulated model.
    pub fn model(&self) -> &SimLlm {
        &self.model
    }

    /// Selects the most similar training questions as few-shot examples.
    fn select_examples(&self, ctx: &GenerationContext<'_>) -> Vec<FewShotExample> {
        if ctx.train_pool.is_empty() {
            return Vec::new();
        }
        let candidates: Vec<&str> = ctx.train_pool.iter().map(|q| q.text.as_str()).collect();
        let ranked = rank_by_similarity(&self.embedder, &ctx.question.text, &candidates);
        ranked
            .into_iter()
            .take(FEW_SHOT)
            .map(|(i, _)| {
                let q = ctx.train_pool[i];
                FewShotExample {
                    question: q.text.clone(),
                    evidence: q.human_evidence.text.clone(),
                    sql: q.gold_sql.clone(),
                }
            })
            .collect()
    }
}

impl Text2SqlSystem for DailSql {
    fn name(&self) -> String {
        "DAIL-SQL (GPT-4)".to_string()
    }

    fn generate(&self, ctx: &GenerationContext<'_>) -> String {
        let few_shot = self.select_examples(ctx);
        let task = SqlGenTask {
            question_id: &ctx.question.id,
            question: &ctx.question.text,
            schema: ctx.database.schema(),
            schema_subset: None,
            evidence: ctx.evidence,
            descriptions_in_prompt: false,
            grounded_values: &[],
            few_shot: &few_shot,
            atoms: &ctx.question.atoms,
            gold_sql: &ctx.question.gold_sql,
            difficulty: ctx.question.difficulty,
            calibration_hints: false,
            sample_index: 0,
        };
        self.model.generate_sql(&task).sql
    }
}

impl DailSql {
    /// Embedding dimension used for example selection (exposed for tests).
    pub fn embedding_dimension(&self) -> usize {
        self.embedder.dimension()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use seed_datasets::Split;
    use seed_sqlengine::execute;

    #[test]
    fn few_shot_examples_come_from_the_same_topic_when_available() {
        let bench = tiny_bird();
        let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
        let system = DailSql::new();
        let (q, db) = dev_cases(&bench).into_iter().find(|(q, _)| q.db_id == "financial").unwrap();
        let ctx =
            GenerationContext { question: q, database: db, evidence: None, train_pool: &train };
        let examples = system.select_examples(&ctx);
        assert!(!examples.is_empty());
        assert!(examples.len() <= FEW_SHOT);
    }

    #[test]
    fn dail_sql_degrades_sharply_without_evidence() {
        let bench = tiny_bird();
        let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
        let system = DailSql::new();
        let mut with_ev = 0usize;
        let mut without_ev = 0usize;
        let mut total = 0usize;
        for (q, db) in dev_cases(&bench) {
            if q.atoms.is_empty() {
                continue;
            }
            total += 1;
            let gold = execute(db, &q.gold_sql).unwrap();
            let ev = q.oracle_evidence();
            for (evidence, counter) in [(Some(ev.as_str()), &mut with_ev), (None, &mut without_ev)]
            {
                let ctx =
                    GenerationContext { question: q, database: db, evidence, train_pool: &train };
                if execute(db, &system.generate(&ctx)).map(|r| r.result_eq(&gold)).unwrap_or(false)
                {
                    *counter += 1;
                }
            }
        }
        let gap = with_ev as f64 / total as f64 - without_ev as f64 / total as f64;
        assert!(gap > 0.2, "DAIL-SQL's evidence gap should be large, got {gap:.2}");
    }
}
