//! C3: zero-shot text-to-SQL with ChatGPT.
//!
//! C3 has three stages: Clear Prompting (schema linking via zero-shot
//! instructions), Calibration with Hints (bias-correcting instructions such as
//! "use COUNT(*), LEFT JOIN, or OR only when necessary"), and Consistent
//! Output (execute several sampled queries and vote on the result). No
//! few-shot examples and no value retrieval are used — it is the lightest
//! baseline in the paper.

use seed_llm::{LanguageModel, ModelProfile, SimLlm, SqlGenTask};
use seed_sqlengine::execute;

use crate::{GenerationContext, Text2SqlSystem};

/// Number of self-consistency samples.
const SAMPLES: u32 = 3;

/// The C3 system (ChatGPT base).
pub struct C3 {
    model: SimLlm,
}

impl Default for C3 {
    fn default() -> Self {
        Self::new()
    }
}

impl C3 {
    pub fn new() -> Self {
        C3 { model: SimLlm::new(ModelProfile::chatgpt()) }
    }

    /// The underlying simulated model.
    pub fn model(&self) -> &SimLlm {
        &self.model
    }
}

impl Text2SqlSystem for C3 {
    fn name(&self) -> String {
        "C3 (ChatGPT)".to_string()
    }

    fn generate(&self, ctx: &GenerationContext<'_>) -> String {
        // Consistent Output: sample several queries and vote on the execution result.
        let mut candidates: Vec<String> = Vec::new();
        for sample in 0..SAMPLES {
            let task = SqlGenTask {
                question_id: &ctx.question.id,
                question: &ctx.question.text,
                schema: ctx.database.schema(),
                schema_subset: None,
                evidence: ctx.evidence,
                descriptions_in_prompt: false,
                grounded_values: &[],
                few_shot: &[],
                atoms: &ctx.question.atoms,
                gold_sql: &ctx.question.gold_sql,
                difficulty: ctx.question.difficulty,
                calibration_hints: true,
                sample_index: sample,
            };
            candidates.push(self.model.generate_sql(&task).sql);
        }
        // Vote by execution-result fingerprint; unexecutable candidates lose.
        let mut buckets: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
        for (i, sql) in candidates.iter().enumerate() {
            if let Ok(rs) = execute(ctx.database, sql) {
                let fp = rs.fingerprint();
                match buckets.iter_mut().find(|(f, _)| *f == fp) {
                    Some((_, members)) => members.push(i),
                    None => buckets.push((fp, vec![i])),
                }
            }
        }
        buckets
            .iter()
            .max_by_key(|(_, members)| members.len())
            .map(|(_, members)| candidates[members[0]].clone())
            .unwrap_or_else(|| candidates[0].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use seed_datasets::Split;

    #[test]
    fn voting_prefers_executable_candidates() {
        let bench = tiny_bird();
        let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
        let system = C3::new();
        let mut executable = 0usize;
        let mut total = 0usize;
        for (q, db) in dev_cases(&bench).into_iter().take(20) {
            total += 1;
            let ctx =
                GenerationContext { question: q, database: db, evidence: None, train_pool: &train };
            if execute(db, &system.generate(&ctx)).is_ok() {
                executable += 1;
            }
        }
        assert!(
            executable as f64 / total as f64 > 0.7,
            "self-consistency should mostly return executable SQL ({executable}/{total})"
        );
    }

    #[test]
    fn c3_output_is_deterministic() {
        let bench = tiny_bird();
        let system = C3::new();
        let (q, db) = dev_cases(&bench)[0];
        let ctx = GenerationContext { question: q, database: db, evidence: None, train_pool: &[] };
        assert_eq!(system.generate(&ctx), system.generate(&ctx));
    }
}
