//! # seed-serve
//!
//! A concurrent query-serving runtime for the SEED reproduction's SQL
//! engine: submit a batch of SQL statements (or a whole eval workload) and
//! get per-statement results back **in submission order**, executed by a
//! persistent worker pool against an `Arc`-shared, read-only
//! [`Database`] snapshot.
//!
//! ## Snapshot / write model
//!
//! The engine executes reads through `&Database` — no executor mutates
//! storage — so any number of worker threads may run queries against one
//! snapshot simultaneously. A [`Server`] holds the **currently published
//! snapshot** behind `RwLock<Arc<Database>>`; every read pins an `Arc` of
//! some snapshot for its duration, so nothing a reader touches can change
//! underneath it. Writes (`INSERT`/`UPDATE`/`DELETE`/`CREATE`) run through
//! the engine's copy-on-write commit path
//! ([`seed_sqlengine::commit_statement`]): one writer at a time (the commit
//! gate) clones the database — cheap, tables are `Arc`-shared — mutates
//! only the touched table's copy, and publishes the new snapshot
//! atomically. In-flight readers keep serving their pinned version;
//! publishes never block reads.
//!
//! [`Server::session`] opens a [`Session`] that **pins** the snapshot
//! current at open time: every read the session makes sees that one
//! version, regardless of concurrent commits, until the session itself
//! commits — its own writes re-pin it to the snapshot they published
//! (read-your-writes). Mixed batches are split into **read runs** —
//! consecutive reads served in parallel by the worker pool against the
//! snapshot current at run start — separated by writes, each committed
//! serially in submission order. That structure makes a mixed batch's
//! per-statement results and final snapshot identical at any worker count.
//!
//! ## Shared caches
//!
//! Both shared caches are **sharded by statement-text hash** into
//! independent lock stripes (at least as many stripes as workers), so two
//! workers serving *different* statements never contend on a lock — the
//! fix for the negative scaling the single-lock layout showed in
//! `BENCH_serve.json`.
//!
//! * **Plans** — one process-wide [`SharedPlanCache`] per server, striped
//!   internally: a repeated statement parses and plans once, then every
//!   execution (any worker, any session) replays the pinned plan. Plans
//!   depend only on the schema, so they survive commits untouched. Reuse is
//!   visible as `plan_cache_hits` in each statement's [`ExecStats`].
//! * **Results** — a statement's result is a pure function of its text
//!   *and the versions of the tables it reads*. Entries are therefore
//!   keyed two-level: the statement's **dependency fingerprint**
//!   ([`seed_sqlengine::Database::dependency_fingerprint`] over its
//!   referenced tables' generations), then its text. A commit that touches
//!   a statement's tables changes the fingerprint — the old entry simply
//!   stops being probed — while entries for statements over *untouched*
//!   tables keep hitting across snapshots. With
//!   [`ServeConfig::cache_results`] on (the default), each distinct
//!   (fingerprint, statement) pair *executes exactly once*: an **in-flight
//!   execution table** (one slot per stripe entry) makes concurrent
//!   submissions of the same statement block on the one canonical
//!   execution instead of racing it, then serves them its result. That
//!   makes `result_cache_hits` exact — `statements − distinct statements`
//!   at any worker count on a quiescent snapshot — not merely
//!   scheduling-dependently close. Each stripe is its own bounded LRU
//!   segment: at most `ceil(result_cache_cap / stripes)` (minimum 1)
//!   entries live per stripe, with least-recently-served eviction across
//!   all fingerprints (stale-fingerprint entries age out like any other
//!   cold entry), so a long-lived server's memory stays bounded and
//!   eviction scans stay per-stripe. In-flight slots are transient and
//!   never evicted.
//!
//! ### In-flight dedup state machine
//!
//! A stripe slot for a statement is either `Ready(result)` or
//! `InFlight(flight)`:
//!
//! ```text
//!   miss ──insert InFlight──▶ Running ──publish──▶ Done(Ok)  → slot becomes Ready
//!                                │  │
//!                                │  └──publish──▶ Done(Err) → slot removed (errors
//!                                │                            are never cached)
//!                                └──panic/unwind─▶ Abandoned → slot removed, waiters
//!                                                             retry admission
//! ```
//!
//! Waiters block on the flight's condvar; `Done(Ok)` waiters are served
//! the canonical entry and count as result-cache hits, `Done(Err)` waiters
//! get the same (deterministic) error, `Abandoned` waiters loop back and
//! re-attempt admission themselves.
//!
//! ## Worker pool
//!
//! [`Server::new`] spawns `min(workers, available_parallelism) − 1`
//! persistent threads (all `workers − 1` with
//! [`ServeConfig::oversubscribe`]) that park on a condvar between batches
//! (the calling thread is the final worker), and returns only once every
//! pool thread is parked, so [`Server::execute_batch`] pays no
//! thread-spawn or thread-startup cost per batch. Workers
//! pull statements off a shared atomic cursor — work stealing, not fixed
//! chunking — so a skewed batch (a few expensive statements among many
//! cheap ones) keeps every worker busy until the cursor is drained.
//! Results land in their submission slots, so output order never depends
//! on scheduling, and each worker accumulates its serving counters in a
//! thread-local [`struct@ExecStats`] tally merged into the server totals
//! once per batch, not once per statement.
//!
//! A batch likewise wakes at most `min(workers, statements,
//! available_parallelism)` workers — waking a parked thread the CPU
//! cannot run costs a futex round-trip plus two context switches per
//! batch and can only subtract throughput, which is exactly the "more
//! workers, less qps" regression this crate exists to avoid. When the
//! bound leaves a batch with a single runnable worker, the caller serves
//! it inline with no job-board traffic at all. The configured worker
//! count is the ceiling the same config reaches on bigger hardware; tests
//! that must drive the cross-thread machinery on any host opt into
//! [`ServeConfig::oversubscribe`].
//!
//! ## Determinism contract
//!
//! For a given snapshot and statement list, the returned rows, columns,
//! errors, and every cost-bearing work counter (`rows_scanned`,
//! `evaluations`, hash/index units — hence [`ExecStats::cost`]) are
//! byte-identical regardless of worker count, submission order of *other*
//! statements, or scheduling. With in-flight dedup, the aggregate
//! `result_cache_hits` counter is exact as well (`statements − distinct
//! statements`, whenever the distinct set fits the cache cap); only
//! per-statement `from_result_cache` flags — *which* submission became the
//! canonical execution — remain scheduling-dependent, and those are
//! excluded from `cost()`. The workspace determinism suite
//! (`tests/serve_determinism.rs`) pins this contract against both gold
//! corpora at 1, 2, and 8 workers.
//!
//! ## Observability
//!
//! Every server carries an always-on [`metrics::MetricsRegistry`]:
//! relaxed-atomic counters, gauges, and log-bucketed latency histograms
//! keyed by [`metrics::StatementClass`], read back as a consistent
//! [`metrics::MetricsSnapshot`] via [`Server::metrics_snapshot`] (or as
//! Prometheus-style text via [`Server::render_metrics`]). Canonical
//! executions additionally run under the engine's per-operator profiler
//! (bit-identical rows and [`struct@ExecStats`] to an unprofiled run), and
//! any execution at or above [`ServeConfig::slow_query_threshold_nanos`]
//! lands in a bounded **slow-query log** — the
//! [`ServeConfig::slow_query_log_cap`] worst statements with their SQL,
//! rendered plan, and per-operator profile ([`Server::slow_queries`]).
//! None of this feeds back into [`struct@ExecStats`] or its `cost()`:
//! wall-clock observations live strictly beside the deterministic
//! counters, never in them, so the determinism contract above is
//! unaffected.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, RwLock};
use seed_sqlengine::{
    commit_statement, is_write_statement, Database, ExecStats, MutationKind, PlanMode,
    PreparedStatement, QueryProfile, ResultSet, SharedPlanCache, SqlError, SqlResult,
};

pub mod metrics;

pub use metrics::{
    ClassLatency, HistogramSnapshot, LatencyHistogram, MetricsRegistry, MetricsSnapshot,
    StatementClass,
};

/// Minimum number of result-cache stripes, so even low worker counts get
/// contention-free admission from concurrent sessions.
const MIN_RESULT_SHARDS: usize = 8;

/// Configuration for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads used by [`Server::execute_batch`]. `1` serves
    /// strictly serially (no threads are spawned). `0` is treated as `1`
    /// everywhere — [`Server::new`] and batch admission both clamp, so a
    /// zero written via a struct literal can never reach the pool.
    pub workers: usize,
    /// Plan mode every statement executes under. Defaults to
    /// [`PlanMode::serving`] — the vectorized columnar pipeline, which
    /// executes the same physical plans as [`PlanMode::Optimized`] (so
    /// plan-cache sharing and result identity are unaffected) but moves
    /// data in batches.
    pub mode: PlanMode,
    /// Serve repeated statements from the shared result cache and dedup
    /// concurrent executions of the same statement. Sound because the
    /// snapshot is frozen for the server's lifetime; disable only to
    /// measure raw execution throughput.
    pub cache_results: bool,
    /// Approximate maximum number of distinct statements the result cache
    /// holds. The cap is distributed over the cache's lock stripes: each
    /// stripe holds at most `ceil(result_cache_cap / stripes)` entries
    /// (minimum 1), evicting its least-recently-served entry on overflow —
    /// so the true bound is `stripes * ceil(result_cache_cap / stripes)`,
    /// i.e. within one entry per stripe of the configured cap. `0`
    /// disables result caching (and in-flight dedup) entirely.
    pub result_cache_cap: usize,
    /// Allow more workers than the host has hardware threads. Off by
    /// default: a worker thread beyond `available_parallelism()` can never
    /// run concurrently with the others — it only adds thread-startup
    /// cost, a futex round-trip and two context switches per batch it is
    /// woken for, and scheduler pressure — so the pool spawns and wakes at
    /// most `available_parallelism()` workers. The configured count is
    /// still the ceiling the same config reaches on bigger hardware.
    /// Tests that need to drive the cross-thread batch machinery
    /// regardless of host size turn this on.
    pub oversubscribe: bool,
    /// Canonical executions whose measured wall-clock time reaches this
    /// many nanoseconds are recorded in the slow-query log (SQL text,
    /// rendered plan, per-operator profile). `0` records every canonical
    /// execution. Wall-clock observations never feed [`struct@ExecStats`]
    /// or its `cost()`, so this threshold cannot affect determinism.
    pub slow_query_threshold_nanos: u64,
    /// Maximum entries the slow-query log retains — the N worst statements
    /// by measured time, slowest first. `0` disables the log.
    pub slow_query_log_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            mode: PlanMode::serving(),
            cache_results: true,
            result_cache_cap: 1024,
            oversubscribe: false,
            // 50ms: far above anything the in-memory engine serves under
            // test, so the log is quiet by default; operators lower it.
            slow_query_threshold_nanos: 50_000_000,
            slow_query_log_cap: 16,
        }
    }
}

impl ServeConfig {
    /// A serial configuration (one worker), otherwise default.
    pub fn serial() -> Self {
        ServeConfig { workers: 1, ..Default::default() }
    }

    /// Same configuration with a different worker count.
    pub fn with_workers(self, workers: usize) -> Self {
        ServeConfig { workers: workers.max(1), ..self }
    }

    /// Same configuration with oversubscription allowed: batches may make
    /// all configured workers runnable even past the host's hardware
    /// threads. See [`ServeConfig::oversubscribe`].
    pub fn oversubscribed(self) -> Self {
        ServeConfig { oversubscribe: true, ..self }
    }

    /// Same configuration with a slow-query log keeping the `cap` worst
    /// statements at or above `threshold_nanos` measured nanoseconds.
    pub fn with_slow_query_log(self, threshold_nanos: u64, cap: usize) -> Self {
        ServeConfig { slow_query_threshold_nanos: threshold_nanos, slow_query_log_cap: cap, ..self }
    }

    /// The worker count the pool actually runs with: struct-literal zeros
    /// are clamped to serial here and at every admission point.
    fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// The outcome of one served statement.
#[derive(Debug, Clone)]
pub struct StatementOutcome {
    /// The rows, exactly as a direct `execute_with_stats` would produce.
    pub result: ResultSet,
    /// Execution statistics. For a result-cache hit these are the cached
    /// execution's stats (the work the statement costs), keeping VES-style
    /// cost accounting independent of cache luck.
    pub stats: ExecStats,
    /// Whether the result came from the shared result cache or from
    /// waiting on the canonical in-flight execution. The aggregate count of
    /// these flags is deterministic (`statements − distinct statements`
    /// while the distinct set fits the cap); *which* submission executed is
    /// scheduling-dependent.
    pub from_result_cache: bool,
}

/// Aggregate serving counters, reported by [`Server::snapshot_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Statements served (cache hits included), across all sessions.
    pub statements: u64,
    /// Statements answered from the shared result cache or by a canonical
    /// in-flight execution. Exact under dedup: `statements − distinct
    /// statements` whenever the distinct set fits the cache cap.
    pub result_cache_hits: u64,
    /// Distinct statements pinned in the shared plan cache.
    pub prepared_statements: usize,
    /// Sum of every served statement's [`ExecStats`], merged without double
    /// counting via [`ExecStats::merge`].
    pub totals: ExecStats,
    /// Canonical executions recorded by the slow-query log so far (recorded,
    /// not retained — the log itself keeps only the worst
    /// [`ServeConfig::slow_query_log_cap`]). Timing-dependent by nature:
    /// never compared by the determinism suite, and never part of any
    /// cost accounting.
    pub slow_queries: u64,
}

/// One entry of the slow-query log: everything needed to understand a slow
/// statement after the fact without re-running it.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The statement text as submitted.
    pub sql: String,
    /// Measured wall-clock nanoseconds of the canonical execution.
    pub nanos: u64,
    /// The execution's deterministic [`ExecStats::cost`], for correlating
    /// measured time against modeled work.
    pub cost: f64,
    /// The statement's rendered physical plan (`EXPLAIN` text) under the
    /// server's plan mode.
    pub plan: String,
    /// The per-operator wall-clock profile of the recorded execution.
    pub profile: String,
}

/// Bounded ring of the N worst canonical executions, sorted slowest first.
struct SlowQueryLog {
    threshold_nanos: u64,
    cap: usize,
    entries: Mutex<Vec<SlowQuery>>,
    recorded: AtomicU64,
}

impl SlowQueryLog {
    fn new(config: &ServeConfig) -> Self {
        SlowQueryLog {
            threshold_nanos: config.slow_query_threshold_nanos,
            cap: config.slow_query_log_cap,
            entries: Mutex::new(Vec::new()),
            recorded: AtomicU64::new(0),
        }
    }

    fn qualifies(&self, nanos: u64) -> bool {
        self.cap > 0 && nanos >= self.threshold_nanos
    }

    fn record(&self, q: SlowQuery) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        let pos = entries.iter().position(|e| e.nanos < q.nanos).unwrap_or(entries.len());
        entries.insert(pos, q);
        entries.truncate(self.cap);
    }

    fn snapshot(&self) -> Vec<SlowQuery> {
        self.entries.lock().clone()
    }

    fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }
}

/// One cached statement result plus its recency stamp. The stamp is atomic
/// so cache *hits* (the hot path) bump recency under the stripe's read
/// lock; only insertions and evictions take the stripe's write lock.
struct CachedResult {
    result: ResultSet,
    stats: ExecStats,
    last_used: AtomicU64,
}

/// State of one canonical execution that concurrent duplicates wait on.
enum FlightState {
    /// The canonical execution is running.
    Running,
    /// The canonical execution finished; waiters share its outcome.
    Done(Result<Arc<CachedResult>, SqlError>),
    /// The canonical execution unwound without publishing; waiters must
    /// re-attempt admission themselves.
    Abandoned,
}

/// An in-flight canonical execution of one statement.
struct InFlight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight { state: Mutex::new(FlightState::Running), done: Condvar::new() }
    }

    /// Blocks until the canonical execution publishes or abandons.
    /// `None` means abandoned — the caller should retry admission.
    fn wait(&self) -> Option<Result<Arc<CachedResult>, SqlError>> {
        let mut state = self.state.lock();
        loop {
            match &*state {
                FlightState::Running => state = self.done.wait(state),
                FlightState::Done(outcome) => return Some(outcome.clone()),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn publish(&self, outcome: Result<Arc<CachedResult>, SqlError>) {
        *self.state.lock() = FlightState::Done(outcome);
        self.done.notify_all();
    }

    fn abandon(&self) {
        *self.state.lock() = FlightState::Abandoned;
        self.done.notify_all();
    }
}

/// A stripe slot: either a cached result or the execution producing one.
enum Slot {
    Ready(Arc<CachedResult>),
    InFlight(Arc<InFlight>),
}

/// One lock stripe of the sharded result cache. The map is two-level —
/// dependency fingerprint (the versions of the tables the statement
/// reads), then SQL text — so the hot path probes with a borrowed `&str`
/// and a commit to a statement's tables retires its entries by changing
/// which fingerprint is probed, never by scanning.
struct ResultShard {
    slots: RwLock<HashMap<u64, HashMap<String, Slot>>>,
    /// Monotonic recency clock for this stripe's LRU.
    tick: AtomicU64,
}

impl ResultShard {
    /// Serves a cached entry, bumping its recency. Read-lock-only path.
    fn hit(&self, entry: &CachedResult) -> StatementOutcome {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(tick, Ordering::Relaxed);
        StatementOutcome {
            result: entry.result.clone(),
            stats: entry.stats,
            from_result_cache: true,
        }
    }

    fn ready_len(&self) -> usize {
        self.slots
            .read()
            .values()
            .flat_map(HashMap::values)
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }
}

/// The sharded statement-result cache plus in-flight execution table.
struct ShardedResultCache {
    shards: Box<[ResultShard]>,
    /// Per-stripe LRU capacity; `0` means caching (and dedup) is off.
    stripe_cap: usize,
    evictions: AtomicU64,
}

impl ShardedResultCache {
    fn new(workers: usize, config: &ServeConfig) -> Self {
        let n = workers.max(MIN_RESULT_SHARDS).next_power_of_two();
        let cap = if config.cache_results { config.result_cache_cap } else { 0 };
        let stripe_cap = if cap == 0 { 0 } else { cap.div_ceil(n) };
        ShardedResultCache {
            shards: (0..n)
                .map(|_| ResultShard {
                    slots: RwLock::new(HashMap::new()),
                    tick: AtomicU64::new(0),
                })
                .collect(),
            stripe_cap,
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, sql: &str) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        sql.hash(&mut hasher);
        // Stripe count is a power of two, so masking maps uniformly.
        (hasher.finish() as usize) & (self.shards.len() - 1)
    }
}

/// Removes a still-in-flight slot and wakes its waiters if the canonical
/// execution unwinds (panic in the engine) before publishing. Disarmed on
/// the normal path.
struct FlightGuard<'a> {
    cache: &'a ShardedResultCache,
    shard: usize,
    vkey: u64,
    sql: &'a str,
    flight: &'a Arc<InFlight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let shard = &self.cache.shards[self.shard];
        let mut slots = shard.slots.write();
        if let Some(by_sql) = slots.get_mut(&self.vkey) {
            if let Some(Slot::InFlight(f)) = by_sql.get(self.sql) {
                if Arc::ptr_eq(f, self.flight) {
                    by_sql.remove(self.sql);
                }
            }
            if by_sql.is_empty() {
                slots.remove(&self.vkey);
            }
        }
        drop(slots);
        self.flight.abandon();
    }
}

/// Per-worker serving counters, accumulated lock-free during a batch and
/// folded into the server totals exactly once per worker per batch.
#[derive(Default)]
struct Tally {
    statements: u64,
    result_hits: u64,
    totals: ExecStats,
}

impl Tally {
    fn absorb(&mut self, outcome: &SqlResult<StatementOutcome>) {
        self.statements += 1;
        if let Ok(o) = outcome {
            if o.from_result_cache {
                self.result_hits += 1;
            }
            self.totals.merge(&o.stats);
        }
    }
}

/// Everything workers share: the published snapshot, both sharded caches,
/// and the aggregate counters. Lives behind `Arc` so the persistent pool
/// threads can hold it without borrowing the `Server`.
struct ServerCore {
    /// The currently published snapshot. Readers clone the `Arc` out (a
    /// refcount bump under a read lock) and serve from their pinned copy;
    /// the commit path swaps in the next snapshot under the write lock.
    snapshot: RwLock<Arc<Database>>,
    /// Write admission: one committing writer at a time, so commits
    /// serialize (each plans against the snapshot its predecessor
    /// published) without ever blocking readers.
    commit_gate: Mutex<()>,
    config: ServeConfig,
    plans: SharedPlanCache,
    results: ShardedResultCache,
    statements: AtomicU64,
    result_hits: AtomicU64,
    totals: Mutex<ExecStats>,
    metrics: MetricsRegistry,
    slow_log: SlowQueryLog,
}

impl ServerCore {
    /// Pins the currently published snapshot.
    fn snapshot(&self) -> Arc<Database> {
        Arc::clone(&self.snapshot.read())
    }

    /// Commits one mutation statement: plan against the latest snapshot,
    /// apply copy-on-write, publish the result. Serialized by the commit
    /// gate; never blocks readers (they keep their pinned snapshots).
    fn commit_one(&self, sql: &str) -> SqlResult<StatementOutcome> {
        let _gate = self.commit_gate.lock();
        let base = self.snapshot();
        let outcome = commit_statement(&base, sql)?;
        let version = outcome.db.version();
        let affected = outcome.rows_affected as u64;
        let (ins, upd, del) = match outcome.kind {
            MutationKind::Insert => (affected, 0, 0),
            MutationKind::Update => (0, affected, 0),
            MutationKind::Delete => (0, 0, affected),
            MutationKind::CreateTable => (0, 0, 0),
        };
        *self.snapshot.write() = Arc::new(outcome.db);
        self.metrics.record_commit(ins, upd, del, version);
        Ok(StatementOutcome {
            result: outcome.result,
            stats: ExecStats::default(),
            from_result_cache: false,
        })
    }
    /// Folds one worker's batch tally into the server aggregates — the
    /// only totals-lock acquisition a worker makes per batch.
    fn fold(&self, tally: Tally) {
        if tally.statements == 0 {
            return;
        }
        self.statements.fetch_add(tally.statements, Ordering::Relaxed);
        self.result_hits.fetch_add(tally.result_hits, Ordering::Relaxed);
        self.totals.lock().merge(&tally.totals);
    }

    /// Serves one statement against the pinned snapshot `db`, recording its
    /// latency (keyed by statement class), result-cache outcome, and — for
    /// canonical executions — the engine's plan/subquery cache counters
    /// into the metrics registry. Mutation statements route to the commit
    /// path (which always targets the *latest* snapshot, not `db`). Errors
    /// count as result-cache misses.
    fn serve_one(&self, db: &Arc<Database>, sql: &str) -> SqlResult<StatementOutcome> {
        let started = Instant::now();
        let outcome = if is_write_statement(sql) {
            self.commit_one(sql)
        } else {
            self.serve_uncounted(db, sql)
        };
        let nanos = started.elapsed().as_nanos() as u64;
        let hit = matches!(&outcome, Ok(o) if o.from_result_cache);
        self.metrics.record_statement(StatementClass::of(sql), nanos, hit);
        if let Ok(o) = &outcome {
            // Engine counters are billed once per canonical execution;
            // cache hits replay the canonical stats and must not double
            // count its planning work.
            if !o.from_result_cache {
                self.metrics.record_engine_caches(
                    o.stats.plan_cache_hits,
                    o.stats.plan_cache_misses,
                    o.stats.subquery_result_hits,
                    o.stats.subquery_result_misses,
                );
            }
        }
        outcome
    }

    /// Serves one read statement against the pinned snapshot `db` through
    /// the sharded caches and the in-flight dedup table. Pure with respect
    /// to the aggregate counters (the caller's tally absorbs the outcome).
    fn serve_uncounted(&self, db: &Arc<Database>, sql: &str) -> SqlResult<StatementOutcome> {
        if self.results.stripe_cap == 0 {
            // Caching (and dedup) off: the known-miss path does no cache
            // round-trips at all.
            let (result, stats) = self.plans.execute(db, sql, self.config.mode)?;
            return Ok(StatementOutcome { result, stats, from_result_cache: false });
        }
        // The cache key's data-dependency half: the versions (generations)
        // of every table the statement reads, under the pinned snapshot.
        // Two executions sharing a vkey see identical table states, so a
        // cached result is valid for both even across different snapshots.
        let prepared = self.plans.prepare(db.name(), sql)?;
        let vkey = db.dependency_fingerprint(prepared.referenced_tables());
        let idx = self.results.shard_of(sql);
        let shard = &self.results.shards[idx];
        loop {
            // Fast path: per-stripe read lock only.
            let flight = match shard.slots.read().get(&vkey).and_then(|m| m.get(sql)) {
                Some(Slot::Ready(entry)) => return Ok(shard.hit(entry)),
                Some(Slot::InFlight(f)) => Some(Arc::clone(f)),
                None => None,
            };
            let flight = match flight {
                Some(f) => f,
                None => {
                    // Admission: one write lock decides the canonical
                    // executor among racing duplicates.
                    let mut slots = shard.slots.write();
                    match slots.get(&vkey).and_then(|m| m.get(sql)) {
                        Some(Slot::Ready(entry)) => {
                            let entry = Arc::clone(entry);
                            drop(slots);
                            return Ok(shard.hit(&entry));
                        }
                        Some(Slot::InFlight(f)) => Arc::clone(f),
                        None => {
                            let f = Arc::new(InFlight::new());
                            slots
                                .entry(vkey)
                                .or_default()
                                .insert(sql.to_string(), Slot::InFlight(Arc::clone(&f)));
                            drop(slots);
                            return self.run_canonical(db, &prepared, idx, vkey, sql, &f);
                        }
                    }
                }
            };
            let wait_started = Instant::now();
            let waited = flight.wait();
            self.metrics.record_dedup_wait(wait_started.elapsed().as_nanos() as u64);
            match waited {
                Some(Ok(entry)) => return Ok(shard.hit(&entry)),
                Some(Err(e)) => return Err(e),
                // Canonical execution unwound: retry admission.
                None => continue,
            }
        }
    }

    /// Runs the canonical execution this worker won admission for, then
    /// publishes the outcome to the stripe and to every waiter.
    fn run_canonical(
        &self,
        db: &Arc<Database>,
        prepared: &PreparedStatement,
        idx: usize,
        vkey: u64,
        sql: &str,
        flight: &Arc<InFlight>,
    ) -> SqlResult<StatementOutcome> {
        let mut guard =
            FlightGuard { cache: &self.results, shard: idx, vkey, sql, flight, armed: true };
        // Canonical executions run under the per-operator profiler: rows
        // and stats are bit-identical to an unprofiled run, and the profile
        // is what the slow-query log records.
        let executed = prepared.execute_profiled(db, self.config.mode);
        let shard = &self.results.shards[idx];
        let published = match &executed {
            Ok((result, stats, _profile)) => {
                let entry = Arc::new(CachedResult {
                    result: result.clone(),
                    stats: *stats,
                    last_used: AtomicU64::new(shard.tick.fetch_add(1, Ordering::Relaxed) + 1),
                });
                let mut slots = shard.slots.write();
                // Reclaim the admission-time key so publishing a result does
                // not re-allocate the statement text.
                let key = slots
                    .get_mut(&vkey)
                    .and_then(|m| m.remove_entry(sql))
                    .map(|(key, _)| key)
                    .unwrap_or_else(|| sql.to_string());
                // Per-stripe LRU admission: evict the least-recently-served
                // ready entries — across every fingerprint, so entries keyed
                // by versions no one probes anymore age out like any other
                // cold entry — until the newcomer fits. In-flight slots are
                // never evicted. The O(stripe len) scans are bounded by the
                // stripe cap, not the whole cache.
                while slots
                    .values()
                    .flat_map(HashMap::values)
                    .filter(|s| matches!(s, Slot::Ready(_)))
                    .count()
                    >= self.results.stripe_cap
                {
                    let coldest = slots
                        .iter()
                        .flat_map(|(vk, m)| {
                            m.iter().filter_map(move |(k, s)| match s {
                                Slot::Ready(e) => {
                                    Some((*vk, k.clone(), e.last_used.load(Ordering::Relaxed)))
                                }
                                Slot::InFlight(_) => None,
                            })
                        })
                        .min_by_key(|(_, _, used)| *used)
                        .map(|(vk, k, _)| (vk, k))
                        .expect("stripe cap > 0, so a full stripe has a coldest ready entry");
                    if let Some(m) = slots.get_mut(&coldest.0) {
                        m.remove(&coldest.1);
                        if m.is_empty() {
                            slots.remove(&coldest.0);
                        }
                    }
                    self.results.evictions.fetch_add(1, Ordering::Relaxed);
                }
                slots.entry(vkey).or_default().insert(key, Slot::Ready(Arc::clone(&entry)));
                Ok(entry)
            }
            Err(e) => {
                // Errors are deterministic but never cached: remove the
                // slot so later submissions re-report through the engine.
                let mut slots = shard.slots.write();
                if let Some(m) = slots.get_mut(&vkey) {
                    m.remove(sql);
                    if m.is_empty() {
                        slots.remove(&vkey);
                    }
                }
                Err(e.clone())
            }
        };
        guard.armed = false;
        flight.publish(published);
        executed.map(|(result, stats, profile)| {
            self.note_slow(db, prepared, sql, &stats, &profile);
            StatementOutcome { result, stats, from_result_cache: false }
        })
    }

    /// Records a canonical execution in the slow-query log when its
    /// measured time reaches the configured threshold.
    fn note_slow(
        &self,
        db: &Arc<Database>,
        prepared: &PreparedStatement,
        sql: &str,
        stats: &ExecStats,
        profile: &QueryProfile,
    ) {
        if !self.slow_log.qualifies(profile.total_nanos) {
            return;
        }
        // Slow path only: re-rendering the plan replays the shared plan
        // cache, so no statement is ever re-planned for the log.
        let plan = prepared
            .explain(db, self.config.mode)
            .unwrap_or_else(|e| format!("(plan unavailable: {e})"));
        self.slow_log.record(SlowQuery {
            sql: sql.to_string(),
            nanos: profile.total_nanos,
            cost: stats.cost(),
            plan,
            profile: profile.render(),
        });
    }
}

/// One read run moving through the worker pool: statements in, outcome
/// slots out, a shared work-stealing cursor in between, all served against
/// one pinned snapshot.
struct BatchState {
    /// The snapshot every statement of this run executes against, pinned at
    /// run start. Workers serve from this `Arc`, so a commit publishing a
    /// newer snapshot mid-run cannot change what the run sees.
    db: Arc<Database>,
    stmts: Vec<String>,
    slots: Vec<Mutex<Option<SqlResult<StatementOutcome>>>>,
    /// Next unclaimed statement index — the work-stealing cursor.
    cursor: AtomicUsize,
    /// Statements fully served (outcome written, stats folded).
    completed: AtomicUsize,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

impl BatchState {
    fn new(db: Arc<Database>, stmts: Vec<String>) -> Self {
        let slots = stmts.iter().map(|_| Mutex::new(None)).collect();
        BatchState {
            db,
            stmts,
            slots,
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        }
    }
}

/// Serves statements off the batch cursor until it drains, folding this
/// worker's tally exactly once, then signals completion if this worker
/// finished the last statement.
fn run_batch_tasks(core: &ServerCore, batch: &BatchState) {
    let n = batch.stmts.len();
    let mut tally = Tally::default();
    let mut served = 0usize;
    core.metrics.worker_started();
    loop {
        let i = batch.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let outcome = core.serve_one(&batch.db, &batch.stmts[i]);
        tally.absorb(&outcome);
        *batch.slots[i].lock() = Some(outcome);
        served += 1;
    }
    core.metrics.worker_finished();
    // Fold before counting completion: when `completed` reaches the batch
    // size, every statement's stats are already in the server totals.
    core.fold(tally);
    if served > 0 && batch.completed.fetch_add(served, Ordering::AcqRel) + served == n {
        *batch.finished.lock() = true;
        batch.finished_cv.notify_all();
    }
}

/// The job board persistent workers park on between batches.
#[derive(Default)]
struct JobBoard {
    /// Bumped once per published batch so each worker joins a batch at
    /// most once.
    generation: u64,
    batch: Option<Arc<BatchState>>,
    /// Workers that have reached their parking spot at least once.
    /// [`Server::new`] blocks on this so a freshly constructed server's
    /// pool is fully parked — the first batch pays wake-ups, never
    /// thread-startup CPU.
    ready: usize,
    shutdown: bool,
}

struct PoolShared {
    job: Mutex<JobBoard>,
    available: Condvar,
    /// Signals [`JobBoard::ready`] increments to the constructing thread.
    parked: Condvar,
}

fn worker_loop(core: Arc<ServerCore>, pool: Arc<PoolShared>) {
    let mut seen_generation = 0u64;
    let mut announced = false;
    loop {
        let batch = {
            let mut job = pool.job.lock();
            if !announced {
                // Startup handshake: tell `Server::new` this worker has
                // reached the board (under the same lock it parks with, so
                // the announcement and the park are atomic to observers).
                announced = true;
                job.ready += 1;
                pool.parked.notify_all();
            }
            loop {
                if job.shutdown {
                    return;
                }
                if job.generation != seen_generation {
                    if let Some(batch) = &job.batch {
                        seen_generation = job.generation;
                        break Arc::clone(batch);
                    }
                }
                job = pool.available.wait(job);
            }
        };
        run_batch_tasks(&core, &batch);
    }
}

/// A query server over one frozen database snapshot.
///
/// Construction spawns the persistent worker pool (`workers − 1` threads;
/// the thread calling [`Server::execute_batch`] is the final worker) and
/// returns only once every pool thread is parked, so batches pay
/// wake-ups — never thread spawns or leftover thread-startup work.
/// Dropping the server shuts the pool down and joins every thread.
pub struct Server {
    core: Arc<ServerCore>,
    pool: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Hardware threads the host exposes, sampled once at construction.
    /// Bounds how many workers a batch makes runnable unless
    /// [`ServeConfig::oversubscribe`] is set.
    hardware: usize,
    /// Serializes batch publication: concurrent `execute_batch` callers
    /// take turns on the pool (each still executes correctly — the caller
    /// thread alone can drain its batch), rather than overwriting each
    /// other's job board entry.
    batch_gate: Mutex<()>,
}

impl Server {
    /// Creates a server over an initial snapshot. The server owns snapshot
    /// publication from here on: reads pin the currently published version,
    /// writes commit copy-on-write and publish the next one.
    pub fn new(db: Arc<Database>, config: ServeConfig) -> Self {
        let workers = config.effective_workers();
        let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // Pool sizing follows the hardware: threads beyond
        // `available_parallelism` can never run concurrently, so they are
        // not spawned at all unless oversubscription is requested — the
        // configured count stays the ceiling the same config reaches on
        // bigger hardware.
        let spawned = if config.oversubscribe { workers } else { workers.min(hardware) };
        let initial_version = db.version();
        let core = Arc::new(ServerCore {
            snapshot: RwLock::new(db),
            commit_gate: Mutex::new(()),
            config,
            plans: SharedPlanCache::with_shards(workers.max(MIN_RESULT_SHARDS)),
            results: ShardedResultCache::new(workers, &config),
            statements: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            totals: Mutex::new(ExecStats::default()),
            metrics: MetricsRegistry::new(),
            slow_log: SlowQueryLog::new(&config),
        });
        core.metrics.set_snapshot_version(initial_version);
        let pool = Arc::new(PoolShared {
            job: Mutex::new(JobBoard::default()),
            available: Condvar::new(),
            parked: Condvar::new(),
        });
        let handles: Vec<JoinHandle<()>> = (1..spawned)
            .map(|_| {
                let core = Arc::clone(&core);
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || worker_loop(core, pool))
            })
            .collect();
        // Wait for every pool thread to reach its parking spot: a returned
        // server has a fully parked pool, so the first batch pays wake-ups
        // rather than absorbing leftover thread-startup work.
        {
            let mut job = pool.job.lock();
            while job.ready < handles.len() {
                job = pool.parked.wait(job);
            }
        }
        Server { core, pool, workers: handles, hardware, batch_gate: Mutex::new(()) }
    }

    /// Cached statement results currently live (ready entries across all
    /// stripes; in-flight executions are not counted).
    pub fn result_cache_len(&self) -> usize {
        self.core.results.shards.iter().map(|s| s.ready_len()).sum()
    }

    /// Ready entries per stripe, for observability and bound checking.
    pub fn result_cache_shard_lens(&self) -> Vec<usize> {
        self.core.results.shards.iter().map(|s| s.ready_len()).collect()
    }

    /// Number of lock stripes the result cache is spread across (a power
    /// of two, at least the worker count).
    pub fn result_cache_shards(&self) -> usize {
        self.core.results.shards.len()
    }

    /// Maximum ready entries a single stripe holds before evicting
    /// (`ceil(result_cache_cap / stripes)`, minimum 1); `0` when result
    /// caching is disabled.
    pub fn result_cache_stripe_cap(&self) -> usize {
        self.core.results.stripe_cap
    }

    /// The stripe `sql` maps to — exposed so tests can construct
    /// same-stripe workloads deterministically.
    pub fn result_cache_shard_of(&self, sql: &str) -> usize {
        self.core.results.shard_of(sql)
    }

    /// Result-cache entries evicted under the per-stripe LRU cap so far.
    pub fn result_cache_evictions(&self) -> u64 {
        self.core.results.evictions.load(Ordering::Relaxed)
    }

    /// The currently published snapshot, pinned: the returned `Arc` keeps
    /// serving this exact version even as later commits publish newer ones.
    pub fn database(&self) -> Arc<Database> {
        self.core.snapshot()
    }

    /// The version of the currently published snapshot.
    pub fn snapshot_version(&self) -> u64 {
        self.core.snapshot().version()
    }

    /// The server configuration.
    pub fn config(&self) -> ServeConfig {
        self.core.config
    }

    /// Opens a session: a lightweight per-client handle that **pins** the
    /// currently published snapshot for its lifetime. Every read the
    /// session makes sees that one version regardless of concurrent
    /// commits; the session's own writes re-pin it to the snapshot they
    /// published (read-your-writes).
    pub fn session(&self) -> Session<'_> {
        Session { server: self, db: self.core.snapshot(), stats: ExecStats::default(), executed: 0 }
    }

    /// Serves one statement through the shared caches: reads against the
    /// currently published snapshot, writes through the commit path.
    pub fn execute(&self, sql: &str) -> SqlResult<StatementOutcome> {
        self.core.metrics.record_enqueue(1);
        let db = self.core.snapshot();
        let outcome = self.core.serve_one(&db, sql);
        let mut tally = Tally::default();
        tally.absorb(&outcome);
        self.core.fold(tally);
        outcome
    }

    /// Executes a batch, returning one outcome per statement **in
    /// submission order**. The batch is split into **read runs** —
    /// maximal stretches of consecutive reads, each served in parallel by
    /// the worker pool against the snapshot current at run start —
    /// separated by writes, each committed serially in submission order
    /// (and visible to every later statement of the batch). This structure
    /// makes a mixed batch's per-statement results and final snapshot
    /// identical at any worker count.
    pub fn execute_batch(&self, stmts: &[String]) -> Vec<SqlResult<StatementOutcome>> {
        self.batch_segmented(None, stmts)
    }

    /// The shared mixed-batch driver. With `pin` set (session batches) read
    /// runs execute against the caller's pinned snapshot and the pin
    /// advances past each of the caller's own commits; without it (server
    /// batches) each read run pins the latest published snapshot.
    fn batch_segmented(
        &self,
        mut pin: Option<&mut Arc<Database>>,
        stmts: &[String],
    ) -> Vec<SqlResult<StatementOutcome>> {
        if stmts.is_empty() {
            return Vec::new();
        }
        self.core.metrics.record_batch(stmts.len() as u64);
        let mut out = Vec::with_capacity(stmts.len());
        let mut i = 0;
        while i < stmts.len() {
            if is_write_statement(&stmts[i]) {
                let db = self.core.snapshot();
                let outcome = self.core.serve_one(&db, &stmts[i]);
                let mut tally = Tally::default();
                tally.absorb(&outcome);
                self.core.fold(tally);
                if let Some(p) = pin.as_deref_mut() {
                    // Read-your-writes: the session's pin advances to the
                    // snapshot its own commit just published.
                    *p = self.core.snapshot();
                }
                out.push(outcome);
                i += 1;
            } else {
                let end = stmts[i..]
                    .iter()
                    .position(|s| is_write_statement(s))
                    .map(|p| i + p)
                    .unwrap_or(stmts.len());
                let db = match pin.as_deref() {
                    Some(p) => Arc::clone(p),
                    None => self.core.snapshot(),
                };
                out.extend(self.run_read_segment(db, &stmts[i..end]));
                i = end;
            }
        }
        out
    }

    /// Serves one all-read run with the worker pool against one pinned
    /// snapshot. With more than one worker the run is published to the
    /// persistent pool and the calling thread joins in; all workers pull
    /// statements off a shared work-stealing cursor, so skewed runs stay
    /// balanced and the output order never depends on scheduling.
    fn run_read_segment(
        &self,
        db: Arc<Database>,
        stmts: &[String],
    ) -> Vec<SqlResult<StatementOutcome>> {
        if stmts.is_empty() {
            return Vec::new();
        }
        // Clamp at admission too: a `ServeConfig { workers: 0, .. }` built
        // via struct literal (bypassing `with_workers`) serves serially.
        let workers = self.core.config.effective_workers().min(stmts.len());
        // How many workers this batch actually makes runnable. Waking a
        // parked worker the CPU cannot run costs a futex round-trip plus
        // two context switches and can only slow the batch down, so the
        // fan-out is bounded by the hardware unless oversubscription is
        // explicitly requested. A fan-out of one is the serial path — the
        // caller alone, no job-board traffic at all.
        let fanout =
            if self.core.config.oversubscribe { workers } else { workers.min(self.hardware) };
        if fanout <= 1 || self.workers.is_empty() {
            let mut tally = Tally::default();
            self.core.metrics.worker_started();
            let outcomes: Vec<SqlResult<StatementOutcome>> = stmts
                .iter()
                .map(|sql| {
                    let outcome = self.core.serve_one(&db, sql);
                    tally.absorb(&outcome);
                    outcome
                })
                .collect();
            self.core.metrics.worker_finished();
            self.core.fold(tally);
            return outcomes;
        }
        let _gate = self.batch_gate.lock();
        let batch = Arc::new(BatchState::new(db, stmts.to_vec()));
        {
            let mut job = self.pool.job.lock();
            job.generation += 1;
            job.batch = Some(Arc::clone(&batch));
        }
        // Wake exactly the helpers this batch can use; the rest of the
        // pool stays parked (each consecutive `notify_one` releases one
        // more parked worker).
        for _ in 0..(fanout - 1).min(self.workers.len()) {
            self.pool.available.notify_one();
        }
        // The calling thread is the final worker.
        run_batch_tasks(&self.core, &batch);
        {
            let mut finished = batch.finished.lock();
            while !*finished {
                finished = batch.finished_cv.wait(finished);
            }
        }
        // Retire the batch so parked workers cannot hold it alive.
        self.pool.job.lock().batch = None;
        batch
            .slots
            .iter()
            .map(|slot| slot.lock().take().expect("every batch slot is filled"))
            .collect()
    }

    /// Aggregate serving counters.
    pub fn snapshot_stats(&self) -> ServerStats {
        ServerStats {
            statements: self.core.statements.load(Ordering::Relaxed),
            result_cache_hits: self.core.result_hits.load(Ordering::Relaxed),
            prepared_statements: self.core.plans.len(),
            totals: *self.core.totals.lock(),
            slow_queries: self.core.slow_log.recorded(),
        }
    }

    /// A consistent point-in-time view of the serve metrics registry:
    /// throughput, cache hit/miss counters and ratios, dedup waits, queue
    /// depth, worker utilization, and per-class latency histograms
    /// (p50/p95/p99 via [`HistogramSnapshot::quantile`]).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    /// [`Server::metrics_snapshot`] rendered as Prometheus-style text.
    pub fn render_metrics(&self) -> String {
        self.core.metrics.snapshot().render_prometheus()
    }

    /// The worst canonical executions recorded so far, slowest first —
    /// at most [`ServeConfig::slow_query_log_cap`] entries, each with the
    /// statement's SQL, rendered plan, and per-operator profile.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.core.slow_log.snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.pool.job.lock().shutdown = true;
        self.pool.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A per-client handle over a [`Server`]: shares the server's caches,
/// accumulates its own totals, and **pins one snapshot** for its lifetime.
/// Reads see the pinned version no matter what concurrent sessions commit;
/// the session's own writes re-pin it to the snapshot they published, so a
/// session always reads its own writes.
pub struct Session<'s> {
    server: &'s Server,
    /// The snapshot this session serves reads from. Advanced only by the
    /// session's own commits.
    db: Arc<Database>,
    stats: ExecStats,
    executed: u64,
}

impl Session<'_> {
    /// Serves one statement — reads against the pinned snapshot, writes
    /// through the commit path (re-pinning on success) — folding its stats
    /// into the session totals.
    pub fn execute(&mut self, sql: &str) -> SqlResult<StatementOutcome> {
        self.server.core.metrics.record_enqueue(1);
        let write = is_write_statement(sql);
        let outcome = self.server.core.serve_one(&self.db, sql);
        if write && outcome.is_ok() {
            self.db = self.server.core.snapshot();
        }
        let mut tally = Tally::default();
        tally.absorb(&outcome);
        self.server.core.fold(tally);
        self.executed += 1;
        if let Ok(o) = &outcome {
            self.stats.merge(&o.stats);
        }
        outcome
    }

    /// Serves a batch with the server's worker pool — read runs against
    /// the session's pinned snapshot, writes committed serially in
    /// submission order with the pin advancing past each — folding every
    /// successful statement's stats into the session totals.
    pub fn execute_batch(&mut self, stmts: &[String]) -> Vec<SqlResult<StatementOutcome>> {
        let outcomes = self.server.batch_segmented(Some(&mut self.db), stmts);
        self.executed += outcomes.len() as u64;
        for o in outcomes.iter().flatten() {
            self.stats.merge(&o.stats);
        }
        outcomes
    }

    /// The snapshot this session is pinned to.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The version of the session's pinned snapshot.
    pub fn snapshot_version(&self) -> u64 {
        self.db.version()
    }

    /// Statements this session has submitted.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The session's accumulated statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{execute_statement, execute_with_stats, execute_with_stats_mode, Value};

    fn snapshot() -> Arc<Database> {
        let mut db = Database::new("serve_test");
        execute_statement(
            &mut db,
            "CREATE TABLE account (account_id INTEGER PRIMARY KEY, district_id INTEGER)",
        )
        .unwrap();
        execute_statement(
            &mut db,
            "CREATE TABLE loan (loan_id INTEGER PRIMARY KEY, account_id INTEGER, amount REAL)",
        )
        .unwrap();
        for i in 0..30i64 {
            execute_statement(&mut db, &format!("INSERT INTO account VALUES ({i}, {})", i % 5))
                .unwrap();
            execute_statement(
                &mut db,
                &format!("INSERT INTO loan VALUES ({i}, {}, {}.0)", i % 30, (i * 37) % 1000),
            )
            .unwrap();
        }
        Arc::new(db)
    }

    fn workload() -> Vec<String> {
        let stmts = [
            "SELECT COUNT(*) FROM loan",
            "SELECT account.district_id, SUM(loan.amount) FROM account \
             INNER JOIN loan ON account.account_id = loan.account_id \
             GROUP BY account.district_id ORDER BY account.district_id",
            "SELECT loan_id FROM loan WHERE amount > (SELECT AVG(amount) FROM loan) \
             ORDER BY loan_id",
            "SELECT DISTINCT district_id FROM account ORDER BY district_id",
        ];
        // Repeat the statements the way an eval run repeats gold queries.
        (0..3).flat_map(|_| stmts.iter().map(|s| s.to_string())).collect()
    }

    /// `count` distinct valid statements that all hash to the same result
    /// stripe of `server`.
    fn same_stripe_statements(server: &Server, count: usize) -> Vec<String> {
        let stripe = server.result_cache_shard_of("SELECT COUNT(*) FROM loan WHERE amount > 0");
        let mut out = Vec::new();
        let mut k = 0i64;
        while out.len() < count {
            let sql = format!("SELECT COUNT(*) FROM loan WHERE amount > {k}");
            if server.result_cache_shard_of(&sql) == stripe {
                out.push(sql);
            }
            k += 1;
        }
        out
    }

    #[test]
    fn batch_results_match_direct_execution_in_submission_order() {
        let db = snapshot();
        let stmts = workload();
        for workers in [1, 2, 8] {
            let server = Server::new(
                Arc::clone(&db),
                ServeConfig::default().with_workers(workers).oversubscribed(),
            );
            let outcomes = server.execute_batch(&stmts);
            assert_eq!(outcomes.len(), stmts.len());
            for (sql, outcome) in stmts.iter().zip(&outcomes) {
                let o = outcome.as_ref().unwrap();
                // Rows match direct execution in *any* mode (row-identity is
                // mode-independent); costs are compared in the server's own
                // serving mode, since counters are per-mode deterministic.
                let (direct, _) = execute_with_stats(&db, sql).unwrap();
                let (_, serving_stats) =
                    execute_with_stats_mode(&db, sql, PlanMode::serving()).unwrap();
                assert_eq!(o.result.rows, direct.rows, "workers={workers} sql={sql}");
                assert_eq!(o.result.columns, direct.columns);
                assert_eq!(o.stats.cost(), serving_stats.cost(), "workers={workers} sql={sql}");
            }
        }
    }

    #[test]
    fn repeated_statements_hit_the_result_cache() {
        let server = Server::new(snapshot(), ServeConfig::serial());
        let stmts = workload();
        server.execute_batch(&stmts);
        let stats = server.snapshot_stats();
        assert_eq!(stats.statements, stmts.len() as u64);
        assert_eq!(stats.prepared_statements, 4, "four distinct statements plan once each");
        assert_eq!(
            stats.result_cache_hits,
            stmts.len() as u64 - 4,
            "every repeat is a result-cache hit"
        );
    }

    #[test]
    fn result_cache_hits_are_exact_at_every_worker_count() {
        // In-flight dedup makes the hit counter scheduling-independent:
        // exactly one canonical execution per distinct statement, every
        // other submission a hit — no matter how the workers interleave.
        let db = snapshot();
        let stmts = workload();
        let distinct = 4u64;
        for workers in [1usize, 2, 4, 8] {
            for round in 0..3 {
                let server = Server::new(
                    Arc::clone(&db),
                    ServeConfig::default().with_workers(workers).oversubscribed(),
                );
                server.execute_batch(&stmts);
                let stats = server.snapshot_stats();
                assert_eq!(
                    stats.result_cache_hits,
                    stmts.len() as u64 - distinct,
                    "workers={workers} round={round}: hits must be exact, not approximate"
                );
            }
        }
    }

    #[test]
    fn concurrent_duplicates_share_one_canonical_execution() {
        let db = snapshot();
        let sql = "SELECT account.district_id, SUM(loan.amount) FROM account \
                   INNER JOIN loan ON account.account_id = loan.account_id \
                   GROUP BY account.district_id ORDER BY account.district_id";
        let batch: Vec<String> = (0..64).map(|_| sql.to_string()).collect();
        let server = Server::new(db, ServeConfig::default().with_workers(8).oversubscribed());
        let outcomes = server.execute_batch(&batch);
        let fresh = outcomes.iter().filter(|o| !o.as_ref().unwrap().from_result_cache).count();
        assert_eq!(fresh, 1, "exactly one submission executes; 63 are deduped");
        assert_eq!(server.snapshot_stats().result_cache_hits, 63);
        for o in &outcomes {
            let o = o.as_ref().unwrap();
            assert_eq!(o.result.rows, outcomes[0].as_ref().unwrap().result.rows);
            assert_eq!(o.stats, outcomes[0].as_ref().unwrap().stats);
        }
    }

    #[test]
    fn zero_workers_in_a_struct_literal_serves_serially() {
        // Regression: only `with_workers` used to clamp, so a zero passed
        // directly through the struct literal could reach the pool.
        let config = ServeConfig { workers: 0, ..ServeConfig::default() };
        let server = Server::new(snapshot(), config);
        let stmts = workload();
        let outcomes = server.execute_batch(&stmts);
        assert_eq!(outcomes.len(), stmts.len());
        for outcome in &outcomes {
            assert!(outcome.is_ok());
        }
        assert_eq!(server.snapshot_stats().statements, stmts.len() as u64);
        assert_eq!(
            server.execute("SELECT COUNT(*) FROM loan").unwrap().result.rows[0][0],
            Value::Integer(30)
        );
    }

    #[test]
    fn result_cache_can_be_disabled() {
        let config = ServeConfig { cache_results: false, ..ServeConfig::serial() };
        let server = Server::new(snapshot(), config);
        let stmts = workload();
        let outcomes = server.execute_batch(&stmts);
        assert!(outcomes.iter().all(|o| !o.as_ref().unwrap().from_result_cache));
        assert_eq!(server.snapshot_stats().result_cache_hits, 0);
        // Plans are still shared even when results are not.
        assert_eq!(server.snapshot_stats().prepared_statements, 4);
    }

    #[test]
    fn each_stripe_evicts_its_least_recently_served_entry() {
        // Stripe cap 2 (cap = 2 × stripes), three statements pinned to the
        // *same* stripe so the LRU order is exercised deterministically.
        let db = snapshot();
        let probe = Server::new(Arc::clone(&db), ServeConfig::serial());
        let shards = probe.result_cache_shards();
        let config = ServeConfig { result_cache_cap: 2 * shards, ..ServeConfig::serial() };
        let server = Server::new(db, config);
        assert_eq!(server.result_cache_stripe_cap(), 2);
        let stmts = same_stripe_statements(&server, 3);
        let (a, b, c) = (&stmts[0], &stmts[1], &stmts[2]);
        let stripe = server.result_cache_shard_of(a);
        server.execute(a).unwrap();
        server.execute(b).unwrap();
        assert_eq!(server.result_cache_shard_lens()[stripe], 2);
        assert_eq!(server.result_cache_evictions(), 0);
        // Touch `a` so `b` becomes the least-recently-served entry, then
        // admit `c`: the stripe stays at its cap and `b` is the eviction.
        assert!(server.execute(a).unwrap().from_result_cache);
        server.execute(c).unwrap();
        assert_eq!(server.result_cache_shard_lens()[stripe], 2, "stripe cap is never exceeded");
        assert_eq!(server.result_cache_evictions(), 1);
        assert!(server.execute(a).unwrap().from_result_cache, "recently served entry survives");
        assert!(server.execute(c).unwrap().from_result_cache, "newcomer was admitted");
        assert!(
            !server.execute(b).unwrap().from_result_cache,
            "evicted statement re-executes (and re-enters the stripe, evicting again)"
        );
        assert_eq!(server.result_cache_evictions(), 2);
        // Correctness is cache-independent: the re-executed statement
        // returns the same rows it did before eviction.
        let before = execute_with_stats(&server.database(), b).unwrap().0;
        assert_eq!(server.execute(b).unwrap().result.rows, before.rows);
    }

    #[test]
    fn zero_result_cache_cap_disables_caching() {
        let config = ServeConfig { result_cache_cap: 0, ..ServeConfig::serial() };
        let server = Server::new(snapshot(), config);
        let sql = "SELECT COUNT(*) FROM loan";
        server.execute(sql).unwrap();
        assert!(!server.execute(sql).unwrap().from_result_cache);
        assert_eq!(server.result_cache_len(), 0);
        assert_eq!(server.result_cache_stripe_cap(), 0);
        assert_eq!(server.snapshot_stats().result_cache_hits, 0);
    }

    #[test]
    fn errors_keep_their_submission_slots() {
        let server =
            Server::new(snapshot(), ServeConfig::default().with_workers(2).oversubscribed());
        let stmts = vec![
            "SELECT COUNT(*) FROM loan".to_string(),
            "SELECT nope FROM nowhere".to_string(),
            "SELECT COUNT(*) FROM account".to_string(),
        ];
        let outcomes = server.execute_batch(&stmts);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_err());
        let ok = outcomes[2].as_ref().unwrap();
        assert_eq!(ok.result.rows[0][0], Value::Integer(30));
    }

    #[test]
    fn erroring_statements_are_shared_in_flight_but_never_cached() {
        let server =
            Server::new(snapshot(), ServeConfig::default().with_workers(8).oversubscribed());
        let bad = "SELECT nope FROM nowhere".to_string();
        let batch: Vec<String> = (0..16).map(|_| bad.clone()).collect();
        let outcomes = server.execute_batch(&batch);
        let expected = server.execute(&bad).unwrap_err();
        for outcome in &outcomes {
            assert_eq!(outcome.as_ref().unwrap_err(), &expected, "waiters share the same error");
        }
        assert_eq!(server.result_cache_len(), 0, "errors never become ready entries");
        assert_eq!(server.snapshot_stats().result_cache_hits, 0);
    }

    #[test]
    fn metrics_registry_tracks_hits_latency_and_queue() {
        let server = Server::new(snapshot(), ServeConfig::serial());
        let stmts = workload();
        server.execute_batch(&stmts);
        let m = server.metrics_snapshot();
        assert_eq!(m.statements, stmts.len() as u64);
        assert_eq!(m.result_cache_hits, stmts.len() as u64 - 4);
        assert_eq!(m.result_cache_misses, 4);
        let expected_ratio = (stmts.len() as f64 - 4.0) / stmts.len() as f64;
        assert!((m.result_cache_hit_ratio() - expected_ratio).abs() < 1e-9);
        assert_eq!(m.queue_depth, 0, "every admitted statement was served");
        assert_eq!(m.workers_busy, 0, "no batch is draining");
        assert_eq!(m.batches, 1);
        assert_eq!(m.overall_latency().total(), stmts.len() as u64);
        // The workload holds COUNT(*), a SUM/GROUP BY join (aggregate wins
        // classification precedence), one subquery, and one plain DISTINCT
        // scan — each repeated three times.
        assert_eq!(m.class_latency(StatementClass::Aggregate).total(), 6);
        assert_eq!(m.class_latency(StatementClass::Subquery).total(), 3);
        assert_eq!(m.class_latency(StatementClass::Simple).total(), 3);
        assert_eq!(m.class_latency(StatementClass::Join).total(), 0);
        assert!(m.overall_latency().p99() >= m.overall_latency().p50());
        // Canonical executions billed the engine caches; the subquery
        // statement's uncorrelated (SELECT AVG...) runs through the
        // engine's subquery result cache.
        assert!(m.plan_cache_hits + m.plan_cache_misses > 0);
        assert!(m.worker_utilization() > 0.0);
        let text = server.render_metrics();
        assert!(text.contains(&format!("serve_statements_total {}", stmts.len())));
        assert!(text.contains("serve_statement_latency_nanoseconds_count{class=\"aggregate\"} 6"));
    }

    #[test]
    fn slow_query_log_keeps_the_worst_canonical_executions() {
        // Threshold 0 records every canonical execution; cap 2 retains the
        // two slowest. Cache hits never record.
        let config = ServeConfig::serial().with_slow_query_log(0, 2);
        let server = Server::new(snapshot(), config);
        let stmts = workload();
        server.execute_batch(&stmts);
        assert_eq!(
            server.snapshot_stats().slow_queries,
            4,
            "one recording per canonical execution, none per cache hit"
        );
        let slow = server.slow_queries();
        assert_eq!(slow.len(), 2, "log retains only the cap");
        assert!(slow[0].nanos >= slow[1].nanos, "slowest first");
        for q in &slow {
            assert!(q.plan.starts_with("Plan mode:"), "plan render present: {}", q.plan);
            assert!(q.profile.starts_with("total time:"), "profile present: {}", q.profile);
            assert!(q.profile.contains("rows="), "per-operator lines present");
            assert!(q.cost > 0.0);
        }
        server.execute(&stmts[0]).unwrap();
        assert_eq!(server.snapshot_stats().slow_queries, 4, "hit did not record");
    }

    #[test]
    fn slow_query_log_is_quiet_by_default_and_disableable() {
        // The default 50ms threshold is far above these statements.
        let server = Server::new(snapshot(), ServeConfig::serial());
        server.execute_batch(&workload());
        assert_eq!(server.snapshot_stats().slow_queries, 0);
        assert!(server.slow_queries().is_empty());
        // Cap 0 disables recording even at threshold 0.
        let off = Server::new(snapshot(), ServeConfig::serial().with_slow_query_log(0, 0));
        off.execute_batch(&workload());
        assert_eq!(off.snapshot_stats().slow_queries, 0);
    }

    #[test]
    fn sessions_accumulate_their_own_stats() {
        let db = snapshot();
        let server = Server::new(db, ServeConfig::serial());
        let mut a = server.session();
        let mut b = server.session();
        a.execute("SELECT COUNT(*) FROM loan").unwrap();
        a.execute("SELECT COUNT(*) FROM loan").unwrap();
        b.execute("SELECT COUNT(*) FROM account").unwrap();
        assert_eq!(a.executed(), 2);
        assert_eq!(b.executed(), 1);
        assert!(a.stats().rows_scanned > 0);
        // The repeat was a cache hit but still bills the canonical stats.
        assert_eq!(a.stats().rows_scanned % 2, 0);
        assert_eq!(server.snapshot_stats().statements, 3);
    }
}
