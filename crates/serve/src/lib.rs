//! # seed-serve
//!
//! A concurrent query-serving runtime for the SEED reproduction's SQL
//! engine: submit a batch of SQL statements (or a whole eval workload) and
//! get per-statement results back **in submission order**, executed by a
//! fixed-size worker pool against an `Arc`-shared, read-only
//! [`Database`] snapshot.
//!
//! ## Snapshot / borrow model
//!
//! The engine executes reads through `&Database` — no executor mutates
//! storage — so any number of worker threads may run queries against one
//! snapshot simultaneously. A [`Server`] takes `Arc<Database>` at
//! construction: holding the snapshot behind `Arc` means *nobody* can
//! obtain `&mut Database` while the server lives, which is exactly the
//! freeze that makes the shared caches sound. Writes (DDL/DML) stay on the
//! engine's exclusive `&mut Database` path ([`seed_sqlengine::execute_statement`])
//! and happen before a snapshot is served, never through a server.
//!
//! ## Shared caches
//!
//! * **Plans** — one process-wide [`SharedPlanCache`] per server: a repeated
//!   statement parses and plans once, then every execution (any worker, any
//!   session) replays the pinned plan. Reuse is visible as
//!   `plan_cache_hits` in each statement's [`ExecStats`].
//! * **Results** — because the snapshot is immutable, a statement's result
//!   is a pure function of its text. With [`ServeConfig::cache_results`]
//!   on (the default), each distinct statement *executes* at most once per
//!   racing window and repeats are served from the result cache, carrying
//!   the canonical execution's stats so costs stay deterministic. The cache
//!   is bounded: at most [`ServeConfig::result_cache_cap`] entries live at
//!   once, with least-recently-served eviction, so a long-lived server's
//!   memory does not grow with the lifetime query set.
//!
//! ## Determinism contract
//!
//! For a given snapshot and statement list, the returned rows, columns,
//! errors, and every cost-bearing work counter (`rows_scanned`,
//! `evaluations`, hash/index units — hence [`ExecStats::cost`]) are
//! byte-identical regardless of worker count, submission order of *other*
//! statements, or scheduling. The plan/result cache observability counters
//! are excluded from that contract: which concrete execution warmed a cache
//! is scheduling-dependent (and already excluded from `cost()`). The
//! workspace determinism suite (`tests/serve_determinism.rs`) pins this
//! contract against both gold corpora at 1, 2, and 8 workers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use seed_sqlengine::{Database, ExecStats, PlanMode, ResultSet, SharedPlanCache, SqlResult};

/// Configuration for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads used by [`Server::execute_batch`]. `1` serves
    /// strictly serially (no threads are spawned). Values are clamped to
    /// the batch size at execution time.
    pub workers: usize,
    /// Plan mode every statement executes under.
    pub mode: PlanMode,
    /// Serve repeated statements from the shared result cache. Sound
    /// because the snapshot is frozen for the server's lifetime; disable
    /// only to measure raw execution throughput.
    pub cache_results: bool,
    /// Maximum number of distinct statements the result cache holds. When a
    /// fresh statement would exceed the cap, the least-recently-served entry
    /// is evicted — a long-lived server's result memory is bounded by the
    /// cap times the largest cached result, not by the lifetime query set.
    /// `0` disables result caching entirely.
    pub result_cache_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            mode: PlanMode::default(),
            cache_results: true,
            result_cache_cap: 1024,
        }
    }
}

impl ServeConfig {
    /// A serial configuration (one worker), otherwise default.
    pub fn serial() -> Self {
        ServeConfig { workers: 1, ..Default::default() }
    }

    /// Same configuration with a different worker count.
    pub fn with_workers(self, workers: usize) -> Self {
        ServeConfig { workers: workers.max(1), ..self }
    }
}

/// The outcome of one served statement.
#[derive(Debug, Clone)]
pub struct StatementOutcome {
    /// The rows, exactly as a direct `execute_with_stats` would produce.
    pub result: ResultSet,
    /// Execution statistics. For a result-cache hit these are the cached
    /// execution's stats (the work the statement costs), keeping VES-style
    /// cost accounting independent of cache luck.
    pub stats: ExecStats,
    /// Whether the result came from the shared result cache. Observability
    /// only — scheduling-dependent under concurrency.
    pub from_result_cache: bool,
}

/// Aggregate serving counters, reported by [`Server::snapshot_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Statements served (cache hits included), across all sessions.
    pub statements: u64,
    /// Statements answered from the shared result cache.
    pub result_cache_hits: u64,
    /// Distinct statements pinned in the shared plan cache.
    pub prepared_statements: usize,
    /// Sum of every served statement's [`ExecStats`], merged without double
    /// counting via [`ExecStats::merge`].
    pub totals: ExecStats,
}

/// One cached statement result plus its recency stamp. The stamp is atomic
/// so cache *hits* (the hot path) bump recency under the map's read lock;
/// only insertions and evictions take the write lock.
struct CachedResult {
    result: ResultSet,
    stats: ExecStats,
    last_used: AtomicU64,
}

/// A query server over one frozen database snapshot.
pub struct Server {
    db: Arc<Database>,
    config: ServeConfig,
    plans: SharedPlanCache,
    results: RwLock<HashMap<String, Arc<CachedResult>>>,
    /// Monotonic recency clock for the result LRU.
    result_tick: AtomicU64,
    statements: AtomicU64,
    result_hits: AtomicU64,
    result_evictions: AtomicU64,
    totals: Mutex<ExecStats>,
}

impl Server {
    /// Creates a server over a snapshot. The `Arc` is the freeze: as long
    /// as the server (or any clone of the `Arc`) is alive, no `&mut
    /// Database` can exist, so every cache entry stays valid.
    pub fn new(db: Arc<Database>, config: ServeConfig) -> Self {
        Server {
            db,
            config,
            plans: SharedPlanCache::new(),
            results: RwLock::new(HashMap::new()),
            result_tick: AtomicU64::new(0),
            statements: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            result_evictions: AtomicU64::new(0),
            totals: Mutex::new(ExecStats::default()),
        }
    }

    /// Distinct statements currently held by the result cache (≤ the
    /// configured [`ServeConfig::result_cache_cap`]).
    pub fn result_cache_len(&self) -> usize {
        self.results.read().len()
    }

    /// Result-cache entries evicted under the LRU cap so far.
    pub fn result_cache_evictions(&self) -> u64 {
        self.result_evictions.load(Ordering::Relaxed)
    }

    /// The served snapshot.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The server configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Opens a session: a lightweight per-client handle that accumulates
    /// its own statistics on top of the shared server state.
    pub fn session(&self) -> Session<'_> {
        Session { server: self, stats: ExecStats::default(), executed: 0 }
    }

    /// Serves one statement through the shared caches.
    pub fn execute(&self, sql: &str) -> SqlResult<StatementOutcome> {
        let outcome = self.execute_uncounted(sql);
        self.count(&outcome);
        outcome
    }

    /// Executes a batch, returning one outcome per statement **in
    /// submission order**. With `workers > 1` the batch is spread over a
    /// scoped thread pool pulling statements off a shared cursor; results
    /// land in their submission slots, so the output order never depends on
    /// scheduling.
    pub fn execute_batch(&self, stmts: &[String]) -> Vec<SqlResult<StatementOutcome>> {
        let workers = self.config.workers.clamp(1, stmts.len().max(1));
        let outcomes: Vec<SqlResult<StatementOutcome>> = if workers <= 1 {
            stmts.iter().map(|sql| self.execute_uncounted(sql)).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<SqlResult<StatementOutcome>>>> =
                stmts.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= stmts.len() {
                            break;
                        }
                        *slots[i].lock() = Some(self.execute_uncounted(&stmts[i]));
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every batch slot is filled"))
                .collect()
        };
        for outcome in &outcomes {
            self.count(outcome);
        }
        outcomes
    }

    /// Aggregate serving counters.
    pub fn snapshot_stats(&self) -> ServerStats {
        ServerStats {
            statements: self.statements.load(Ordering::Relaxed),
            result_cache_hits: self.result_hits.load(Ordering::Relaxed),
            prepared_statements: self.plans.len(),
            totals: *self.totals.lock(),
        }
    }

    fn execute_uncounted(&self, sql: &str) -> SqlResult<StatementOutcome> {
        let caching = self.config.cache_results && self.config.result_cache_cap > 0;
        if caching {
            if let Some(hit) = self.results.read().get(sql) {
                let tick = self.result_tick.fetch_add(1, Ordering::Relaxed) + 1;
                hit.last_used.store(tick, Ordering::Relaxed);
                self.result_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(StatementOutcome {
                    result: hit.result.clone(),
                    stats: hit.stats,
                    from_result_cache: true,
                });
            }
        }
        let (rs, stats) = self.plans.execute(&self.db, sql, self.config.mode)?;
        if caching {
            // Two workers racing on a fresh statement both execute it
            // (deterministically identically); the first insert wins.
            let tick = self.result_tick.fetch_add(1, Ordering::Relaxed) + 1;
            let mut results = self.results.write();
            if !results.contains_key(sql) {
                // Evict least-recently-served entries until the newcomer
                // fits. An O(len) argmin scan per eviction is fine at the
                // cap sizes a statement cache runs at; the hot path (hits)
                // never reaches here.
                while results.len() >= self.config.result_cache_cap {
                    let coldest = results
                        .iter()
                        .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                        .map(|(k, _)| k.clone())
                        .expect("cap > 0, so a full map has a coldest entry");
                    results.remove(&coldest);
                    self.result_evictions.fetch_add(1, Ordering::Relaxed);
                }
                results.insert(
                    sql.to_string(),
                    Arc::new(CachedResult {
                        result: rs.clone(),
                        stats,
                        last_used: AtomicU64::new(tick),
                    }),
                );
            }
        }
        Ok(StatementOutcome { result: rs, stats, from_result_cache: false })
    }

    fn count(&self, outcome: &SqlResult<StatementOutcome>) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        if let Ok(o) = outcome {
            self.totals.lock().merge(&o.stats);
        }
    }
}

/// A per-client handle over a [`Server`]: shares the server's snapshot and
/// caches, accumulates its own totals.
pub struct Session<'s> {
    server: &'s Server,
    stats: ExecStats,
    executed: u64,
}

impl Session<'_> {
    /// Serves one statement, folding its stats into the session totals.
    pub fn execute(&mut self, sql: &str) -> SqlResult<StatementOutcome> {
        let outcome = self.server.execute(sql);
        self.executed += 1;
        if let Ok(o) = &outcome {
            self.stats.merge(&o.stats);
        }
        outcome
    }

    /// Serves a batch with the server's worker pool, folding every
    /// successful statement's stats into the session totals.
    pub fn execute_batch(&mut self, stmts: &[String]) -> Vec<SqlResult<StatementOutcome>> {
        let outcomes = self.server.execute_batch(stmts);
        self.executed += outcomes.len() as u64;
        for o in outcomes.iter().flatten() {
            self.stats.merge(&o.stats);
        }
        outcomes
    }

    /// Statements this session has submitted.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The session's accumulated statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{execute_statement, execute_with_stats, Value};

    fn snapshot() -> Arc<Database> {
        let mut db = Database::new("serve_test");
        execute_statement(
            &mut db,
            "CREATE TABLE account (account_id INTEGER PRIMARY KEY, district_id INTEGER)",
        )
        .unwrap();
        execute_statement(
            &mut db,
            "CREATE TABLE loan (loan_id INTEGER PRIMARY KEY, account_id INTEGER, amount REAL)",
        )
        .unwrap();
        for i in 0..30i64 {
            execute_statement(&mut db, &format!("INSERT INTO account VALUES ({i}, {})", i % 5))
                .unwrap();
            execute_statement(
                &mut db,
                &format!("INSERT INTO loan VALUES ({i}, {}, {}.0)", i % 30, (i * 37) % 1000),
            )
            .unwrap();
        }
        Arc::new(db)
    }

    fn workload() -> Vec<String> {
        let stmts = [
            "SELECT COUNT(*) FROM loan",
            "SELECT account.district_id, SUM(loan.amount) FROM account \
             INNER JOIN loan ON account.account_id = loan.account_id \
             GROUP BY account.district_id ORDER BY account.district_id",
            "SELECT loan_id FROM loan WHERE amount > (SELECT AVG(amount) FROM loan) \
             ORDER BY loan_id",
            "SELECT DISTINCT district_id FROM account ORDER BY district_id",
        ];
        // Repeat the statements the way an eval run repeats gold queries.
        (0..3).flat_map(|_| stmts.iter().map(|s| s.to_string())).collect()
    }

    #[test]
    fn batch_results_match_direct_execution_in_submission_order() {
        let db = snapshot();
        let stmts = workload();
        for workers in [1, 2, 8] {
            let server = Server::new(Arc::clone(&db), ServeConfig::default().with_workers(workers));
            let outcomes = server.execute_batch(&stmts);
            assert_eq!(outcomes.len(), stmts.len());
            for (sql, outcome) in stmts.iter().zip(&outcomes) {
                let o = outcome.as_ref().unwrap();
                let (direct, direct_stats) = execute_with_stats(&db, sql).unwrap();
                assert_eq!(o.result.rows, direct.rows, "workers={workers} sql={sql}");
                assert_eq!(o.result.columns, direct.columns);
                assert_eq!(o.stats.cost(), direct_stats.cost(), "workers={workers} sql={sql}");
            }
        }
    }

    #[test]
    fn repeated_statements_hit_the_result_cache() {
        let server = Server::new(snapshot(), ServeConfig::serial());
        let stmts = workload();
        server.execute_batch(&stmts);
        let stats = server.snapshot_stats();
        assert_eq!(stats.statements, stmts.len() as u64);
        assert_eq!(stats.prepared_statements, 4, "four distinct statements plan once each");
        assert_eq!(
            stats.result_cache_hits,
            stmts.len() as u64 - 4,
            "every repeat is a result-cache hit"
        );
    }

    #[test]
    fn result_cache_can_be_disabled() {
        let config = ServeConfig { cache_results: false, ..ServeConfig::serial() };
        let server = Server::new(snapshot(), config);
        let stmts = workload();
        let outcomes = server.execute_batch(&stmts);
        assert!(outcomes.iter().all(|o| !o.as_ref().unwrap().from_result_cache));
        assert_eq!(server.snapshot_stats().result_cache_hits, 0);
        // Plans are still shared even when results are not.
        assert_eq!(server.snapshot_stats().prepared_statements, 4);
    }

    #[test]
    fn result_cache_evicts_least_recently_served_under_the_cap() {
        let config = ServeConfig { result_cache_cap: 2, ..ServeConfig::serial() };
        let server = Server::new(snapshot(), config);
        let a = "SELECT COUNT(*) FROM loan";
        let b = "SELECT COUNT(*) FROM account";
        let c = "SELECT COUNT(*) FROM loan WHERE amount > 100";
        server.execute(a).unwrap();
        server.execute(b).unwrap();
        assert_eq!(server.result_cache_len(), 2);
        assert_eq!(server.result_cache_evictions(), 0);
        // Touch `a` so `b` becomes the least-recently-served entry, then
        // admit `c`: the cache stays at the cap and `b` is the eviction.
        assert!(server.execute(a).unwrap().from_result_cache);
        server.execute(c).unwrap();
        assert_eq!(server.result_cache_len(), 2, "cap is never exceeded");
        assert_eq!(server.result_cache_evictions(), 1);
        assert!(server.execute(a).unwrap().from_result_cache, "recently served entry survives");
        assert!(server.execute(c).unwrap().from_result_cache, "newcomer was admitted");
        assert!(
            !server.execute(b).unwrap().from_result_cache,
            "evicted statement re-executes (and re-enters the cache, evicting again)"
        );
        assert_eq!(server.result_cache_evictions(), 2);
        // Correctness is cache-independent: the re-executed statement
        // returns the same rows it did before eviction.
        assert_eq!(server.execute(b).unwrap().result.rows[0][0], Value::Integer(30));
    }

    #[test]
    fn zero_result_cache_cap_disables_caching() {
        let config = ServeConfig { result_cache_cap: 0, ..ServeConfig::serial() };
        let server = Server::new(snapshot(), config);
        let sql = "SELECT COUNT(*) FROM loan";
        server.execute(sql).unwrap();
        assert!(!server.execute(sql).unwrap().from_result_cache);
        assert_eq!(server.result_cache_len(), 0);
        assert_eq!(server.snapshot_stats().result_cache_hits, 0);
    }

    #[test]
    fn errors_keep_their_submission_slots() {
        let server = Server::new(snapshot(), ServeConfig::default().with_workers(2));
        let stmts = vec![
            "SELECT COUNT(*) FROM loan".to_string(),
            "SELECT nope FROM nowhere".to_string(),
            "SELECT COUNT(*) FROM account".to_string(),
        ];
        let outcomes = server.execute_batch(&stmts);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_err());
        let ok = outcomes[2].as_ref().unwrap();
        assert_eq!(ok.result.rows[0][0], Value::Integer(30));
    }

    #[test]
    fn sessions_accumulate_their_own_stats() {
        let db = snapshot();
        let server = Server::new(db, ServeConfig::serial());
        let mut a = server.session();
        let mut b = server.session();
        a.execute("SELECT COUNT(*) FROM loan").unwrap();
        a.execute("SELECT COUNT(*) FROM loan").unwrap();
        b.execute("SELECT COUNT(*) FROM account").unwrap();
        assert_eq!(a.executed(), 2);
        assert_eq!(b.executed(), 1);
        assert!(a.stats().rows_scanned > 0);
        // The repeat was a cache hit but still bills the canonical stats.
        assert_eq!(a.stats().rows_scanned % 2, 0);
        assert_eq!(server.snapshot_stats().statements, 3);
    }
}
