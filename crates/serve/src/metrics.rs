//! Serve-side metrics: atomic counters, gauges, and log-bucketed latency
//! histograms, with a consistent point-in-time snapshot and a
//! Prometheus-style text exposition.
//!
//! This module is deliberately independent of `seed_sqlengine`: it knows
//! nothing about statements beyond their text (for classification) and
//! plain numbers the serving layer feeds it. Everything is lock-free
//! (`AtomicU64` with relaxed ordering) so recording on the statement hot
//! path costs a handful of uncontended atomic adds — cheap enough to stay
//! always-on.
//!
//! ## Histogram layout
//!
//! Latencies land in power-of-two buckets: bucket `i` covers
//! `[2^i, 2^(i+1))` nanoseconds (bucket 0 additionally absorbs 0), with
//! [`HISTOGRAM_BUCKETS`] buckets total — the last is a catch-all up to
//! `u64::MAX`. Quantiles are read back as the upper bound of the bucket
//! containing the requested rank, so a reported p99 is within one
//! power-of-two bucket of the true sample p99 (pinned by the proptest
//! oracle in `tests/metrics_props.rs`). Buckets, not reservoirs: merging
//! two histograms is element-wise addition, which is associative and
//! loss-free — the property that lets per-worker or per-window histograms
//! fold into totals safely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two latency buckets: `2^40` ns ≈ 18 minutes, far
/// beyond any statement this engine serves; slower outliers clamp into the
/// final catch-all bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// The bucket a nanosecond measurement lands in: `floor(log2(max(n, 1)))`,
/// clamped to the catch-all.
pub fn bucket_index(nanos: u64) -> usize {
    let n = nanos.max(1);
    ((63 - n.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Smallest value that lands in bucket `i` (0 for the first bucket, which
/// absorbs zero measurements).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Largest value that lands in bucket `i` (inclusive); the catch-all's is
/// `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A lock-free log-bucketed latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Records one measurement.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (individual bucket reads are
    /// atomic; the histogram only ever grows).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// An immutable histogram snapshot: bucket counts plus quantile readback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// One count per bucket, [`HISTOGRAM_BUCKETS`] long.
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { counts: vec![0; HISTOGRAM_BUCKETS] }
    }

    /// Total number of recorded measurements.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise accumulation. Addition is associative and commutative,
    /// so folding any partition of per-worker/per-window histograms yields
    /// the same totals in any order (pinned by proptest).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// The value at quantile `q` (0.0..=1.0): the upper bound of the bucket
    /// holding the sample of rank `ceil(q × total)` (clamped to a valid
    /// rank), or 0 for an empty histogram. Within one bucket of the true
    /// sorted-sample quantile by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Coarse statement classes latency histograms are keyed by, derived from
/// statement text alone (this module never parses SQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementClass {
    /// A mutation: INSERT, UPDATE, DELETE, or CREATE. Served through the
    /// commit path, never through the result cache.
    Write,
    /// Contains a parenthesized subquery.
    Subquery,
    /// Grouped or aggregated (GROUP BY or an aggregate function).
    Aggregate,
    /// Joins at least two relations.
    Join,
    /// Everything else: single-table scans and point lookups.
    Simple,
}

impl StatementClass {
    /// Every class, in rendering order.
    pub const ALL: [StatementClass; 5] = [
        StatementClass::Write,
        StatementClass::Subquery,
        StatementClass::Aggregate,
        StatementClass::Join,
        StatementClass::Simple,
    ];

    /// Classifies a statement by text, first match wins: write, then
    /// subquery, then aggregate, then join. Deliberately syntactic — the
    /// same statement always lands in the same class, which is all a
    /// latency key needs.
    pub fn of(sql: &str) -> StatementClass {
        let first = sql.split_whitespace().next().unwrap_or("");
        if ["INSERT", "UPDATE", "DELETE", "CREATE"].iter().any(|k| first.eq_ignore_ascii_case(k)) {
            return StatementClass::Write;
        }
        let upper = sql.to_ascii_uppercase();
        if upper.contains("(SELECT") || upper.contains("( SELECT") {
            StatementClass::Subquery
        } else if upper.contains("GROUP BY")
            || ["COUNT(", "SUM(", "AVG(", "MIN(", "MAX("].iter().any(|f| upper.contains(f))
        {
            StatementClass::Aggregate
        } else if upper.contains(" JOIN ") {
            StatementClass::Join
        } else {
            StatementClass::Simple
        }
    }

    /// Stable lowercase label (Prometheus `class` tag value).
    pub fn name(self) -> &'static str {
        match self {
            StatementClass::Write => "write",
            StatementClass::Subquery => "subquery",
            StatementClass::Aggregate => "aggregate",
            StatementClass::Join => "join",
            StatementClass::Simple => "simple",
        }
    }

    /// Position in [`StatementClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            StatementClass::Write => 0,
            StatementClass::Subquery => 1,
            StatementClass::Aggregate => 2,
            StatementClass::Join => 3,
            StatementClass::Simple => 4,
        }
    }
}

/// The serving layer's always-on metrics: statement throughput and latency
/// by class, cache hit/miss counters, in-flight dedup waits, queue depth,
/// and worker utilization. All recording is relaxed-atomic; read back a
/// consistent view with [`MetricsRegistry::snapshot`].
#[derive(Debug)]
pub struct MetricsRegistry {
    started: Instant,
    statements: AtomicU64,
    result_cache_hits: AtomicU64,
    result_cache_misses: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    subquery_cache_hits: AtomicU64,
    subquery_cache_misses: AtomicU64,
    dedup_waits: AtomicU64,
    dedup_wait: LatencyHistogram,
    batches: AtomicU64,
    queue_enqueued: AtomicU64,
    queue_served: AtomicU64,
    workers_busy: AtomicU64,
    worker_busy_nanos: AtomicU64,
    commits: AtomicU64,
    rows_inserted: AtomicU64,
    rows_updated: AtomicU64,
    rows_deleted: AtomicU64,
    snapshot_version: AtomicU64,
    latency: [LatencyHistogram; StatementClass::ALL.len()],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            started: Instant::now(),
            statements: AtomicU64::new(0),
            result_cache_hits: AtomicU64::new(0),
            result_cache_misses: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            subquery_cache_hits: AtomicU64::new(0),
            subquery_cache_misses: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            dedup_wait: LatencyHistogram::default(),
            batches: AtomicU64::new(0),
            queue_enqueued: AtomicU64::new(0),
            queue_served: AtomicU64::new(0),
            workers_busy: AtomicU64::new(0),
            worker_busy_nanos: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            rows_inserted: AtomicU64::new(0),
            rows_updated: AtomicU64::new(0),
            rows_deleted: AtomicU64::new(0),
            snapshot_version: AtomicU64::new(0),
            latency: std::array::from_fn(|_| LatencyHistogram::default()),
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry; uptime starts now.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records one served statement: its class-keyed latency, whether it
    /// was answered by the result cache, and the worker time it occupied.
    pub fn record_statement(&self, class: StatementClass, nanos: u64, cache_hit: bool) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.result_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.result_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.latency[class.index()].record(nanos);
        self.worker_busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.queue_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates engine-side cache counters for a canonical (non-cached)
    /// execution. Plain numbers, so this module stays engine-independent.
    pub fn record_engine_caches(
        &self,
        plan_hits: u64,
        plan_misses: u64,
        subquery_hits: u64,
        subquery_misses: u64,
    ) {
        self.plan_cache_hits.fetch_add(plan_hits, Ordering::Relaxed);
        self.plan_cache_misses.fetch_add(plan_misses, Ordering::Relaxed);
        self.subquery_cache_hits.fetch_add(subquery_hits, Ordering::Relaxed);
        self.subquery_cache_misses.fetch_add(subquery_misses, Ordering::Relaxed);
    }

    /// Records one in-flight dedup wait (a duplicate submission blocking on
    /// the canonical execution) and how long it blocked.
    pub fn record_dedup_wait(&self, nanos: u64) {
        self.dedup_waits.fetch_add(1, Ordering::Relaxed);
        self.dedup_wait.record(nanos);
    }

    /// Records a batch admission of `n` statements.
    pub fn record_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queue_enqueued.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a single-statement admission (non-batch entry point).
    pub fn record_enqueue(&self, n: u64) {
        self.queue_enqueued.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one committed mutation — its per-kind row counts and the
    /// snapshot version the commit published. Plain numbers, so this module
    /// stays engine-independent.
    pub fn record_commit(&self, inserted: u64, updated: u64, deleted: u64, version: u64) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.rows_inserted.fetch_add(inserted, Ordering::Relaxed);
        self.rows_updated.fetch_add(updated, Ordering::Relaxed);
        self.rows_deleted.fetch_add(deleted, Ordering::Relaxed);
        self.snapshot_version.store(version, Ordering::Relaxed);
    }

    /// Sets the snapshot-version gauge without recording a commit (server
    /// construction publishes the initial snapshot's version this way).
    pub fn set_snapshot_version(&self, version: u64) {
        self.snapshot_version.store(version, Ordering::Relaxed);
    }

    /// A worker began draining work (busy-gauge increment).
    pub fn worker_started(&self) {
        self.workers_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker finished draining (busy-gauge decrement).
    pub fn worker_finished(&self) {
        self.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter, gauge, and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_nanos: self.started.elapsed().as_nanos() as u64,
            statements: self.statements.load(Ordering::Relaxed),
            result_cache_hits: self.result_cache_hits.load(Ordering::Relaxed),
            result_cache_misses: self.result_cache_misses.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            subquery_cache_hits: self.subquery_cache_hits.load(Ordering::Relaxed),
            subquery_cache_misses: self.subquery_cache_misses.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            dedup_wait: self.dedup_wait.snapshot(),
            batches: self.batches.load(Ordering::Relaxed),
            queue_depth: self
                .queue_enqueued
                .load(Ordering::Relaxed)
                .saturating_sub(self.queue_served.load(Ordering::Relaxed)),
            workers_busy: self.workers_busy.load(Ordering::Relaxed),
            worker_busy_nanos: self.worker_busy_nanos.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            rows_inserted: self.rows_inserted.load(Ordering::Relaxed),
            rows_updated: self.rows_updated.load(Ordering::Relaxed),
            rows_deleted: self.rows_deleted.load(Ordering::Relaxed),
            snapshot_version: self.snapshot_version.load(Ordering::Relaxed),
            classes: StatementClass::ALL
                .iter()
                .map(|&class| ClassLatency {
                    class,
                    latency: self.latency[class.index()].snapshot(),
                })
                .collect(),
        }
    }
}

/// Latency distribution of one statement class.
#[derive(Debug, Clone)]
pub struct ClassLatency {
    pub class: StatementClass,
    pub latency: HistogramSnapshot,
}

/// A consistent point-in-time view of the registry: counters, gauges, and
/// per-class latency histograms, plus derived ratios.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the registry (the server) was created.
    pub uptime_nanos: u64,
    /// Statements served, cache hits included.
    pub statements: u64,
    /// Statements answered by the result cache / dedup table.
    pub result_cache_hits: u64,
    /// Statements that ran a canonical execution.
    pub result_cache_misses: u64,
    /// Engine plan-cache hits across canonical executions.
    pub plan_cache_hits: u64,
    /// Engine plan-cache misses (actual planning passes).
    pub plan_cache_misses: u64,
    /// Engine uncorrelated-subquery result-cache hits.
    pub subquery_cache_hits: u64,
    /// Engine uncorrelated-subquery result-cache misses.
    pub subquery_cache_misses: u64,
    /// Duplicate submissions that blocked on an in-flight canonical
    /// execution.
    pub dedup_waits: u64,
    /// How long those duplicates blocked.
    pub dedup_wait: HistogramSnapshot,
    /// Batches admitted.
    pub batches: u64,
    /// Statements admitted but not yet served (gauge).
    pub queue_depth: u64,
    /// Workers currently draining a batch (gauge).
    pub workers_busy: u64,
    /// Total worker time spent serving statements.
    pub worker_busy_nanos: u64,
    /// Mutations committed (each publishing a new snapshot).
    pub commits: u64,
    /// Rows inserted across all commits.
    pub rows_inserted: u64,
    /// Rows updated across all commits.
    pub rows_updated: u64,
    /// Rows deleted across all commits.
    pub rows_deleted: u64,
    /// Version of the currently published snapshot (gauge).
    pub snapshot_version: u64,
    /// Per-class latency histograms, in [`StatementClass::ALL`] order.
    pub classes: Vec<ClassLatency>,
}

fn ratio(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl MetricsSnapshot {
    /// Fraction of statements answered without a canonical execution.
    pub fn result_cache_hit_ratio(&self) -> f64 {
        ratio(self.result_cache_hits, self.result_cache_misses)
    }

    /// Fraction of engine plan lookups served from the plan cache.
    pub fn plan_cache_hit_ratio(&self) -> f64 {
        ratio(self.plan_cache_hits, self.plan_cache_misses)
    }

    /// Fraction of uncorrelated-subquery evaluations served from the
    /// engine's result cache.
    pub fn subquery_cache_hit_ratio(&self) -> f64 {
        ratio(self.subquery_cache_hits, self.subquery_cache_misses)
    }

    /// Average number of busy workers over the server's lifetime
    /// (serving-time ÷ uptime). >1.0 means sustained parallelism.
    pub fn worker_utilization(&self) -> f64 {
        if self.uptime_nanos == 0 {
            0.0
        } else {
            self.worker_busy_nanos as f64 / self.uptime_nanos as f64
        }
    }

    /// The latency histogram of one class (always present; all-zero when
    /// the class has served nothing).
    pub fn class_latency(&self, class: StatementClass) -> &HistogramSnapshot {
        &self.classes[class.index()].latency
    }

    /// Latency of every statement regardless of class (merged histograms).
    pub fn overall_latency(&self) -> HistogramSnapshot {
        let mut all = HistogramSnapshot::empty();
        for c in &self.classes {
            all.merge(&c.latency);
        }
        all
    }

    /// Prometheus-style text exposition: `# TYPE` headers, counters,
    /// gauges, and per-class cumulative `_bucket{le=...}` histogram lines.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        };
        counter("serve_statements_total", "Statements served", self.statements);
        counter(
            "serve_result_cache_hits_total",
            "Statements answered by the result cache",
            self.result_cache_hits,
        );
        counter(
            "serve_result_cache_misses_total",
            "Statements that ran a canonical execution",
            self.result_cache_misses,
        );
        counter("serve_plan_cache_hits_total", "Engine plan-cache hits", self.plan_cache_hits);
        counter(
            "serve_plan_cache_misses_total",
            "Engine plan-cache misses",
            self.plan_cache_misses,
        );
        counter(
            "serve_subquery_cache_hits_total",
            "Engine subquery result-cache hits",
            self.subquery_cache_hits,
        );
        counter(
            "serve_subquery_cache_misses_total",
            "Engine subquery result-cache misses",
            self.subquery_cache_misses,
        );
        counter(
            "serve_dedup_waits_total",
            "Duplicate submissions that blocked on an in-flight execution",
            self.dedup_waits,
        );
        counter("serve_batches_total", "Batches admitted", self.batches);
        counter(
            "serve_worker_busy_nanoseconds_total",
            "Worker time spent serving statements",
            self.worker_busy_nanos,
        );
        counter("serve_commits_total", "Mutations committed", self.commits);
        counter("serve_rows_inserted_total", "Rows inserted by commits", self.rows_inserted);
        counter("serve_rows_updated_total", "Rows updated by commits", self.rows_updated);
        counter("serve_rows_deleted_total", "Rows deleted by commits", self.rows_deleted);
        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"));
        };
        gauge("serve_queue_depth", "Statements admitted but not yet served", self.queue_depth);
        gauge("serve_workers_busy", "Workers currently draining a batch", self.workers_busy);
        gauge(
            "serve_snapshot_version",
            "Version of the currently published snapshot",
            self.snapshot_version,
        );
        out.push_str("# HELP serve_statement_latency_nanoseconds Statement latency by class\n");
        out.push_str("# TYPE serve_statement_latency_nanoseconds histogram\n");
        for c in &self.classes {
            let name = c.class.name();
            let mut cumulative = 0u64;
            for (i, &count) in c.latency.counts.iter().enumerate() {
                cumulative += count;
                // Skip interior empty prefixes? No — Prometheus convention
                // keeps every bucket, but 40 buckets x 4 classes is noisy;
                // emit only buckets at or below the last non-empty one.
                if cumulative == 0 && count == 0 {
                    continue;
                }
                let le = if i == HISTOGRAM_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    bucket_upper_bound(i).to_string()
                };
                out.push_str(&format!(
                    "serve_statement_latency_nanoseconds_bucket{{class=\"{name}\",le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "serve_statement_latency_nanoseconds_count{{class=\"{name}\"}} {}\n",
                c.latency.total()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i).max(1)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i).min(1u64 << 62)), i.min(39));
        }
    }

    #[test]
    fn quantiles_of_known_samples() {
        let h = LatencyHistogram::default();
        for nanos in [100u64, 200, 300, 400, 1_000_000] {
            h.record(nanos);
        }
        let snap = h.snapshot();
        assert_eq!(snap.total(), 5);
        // Rank ceil(0.5*5)=3 → the 300ns sample's bucket [256, 512).
        assert_eq!(snap.p50(), 511);
        // Rank ceil(0.99*5)=5 → the 1ms outlier's bucket.
        assert_eq!(snap.p99(), bucket_upper_bound(bucket_index(1_000_000)));
        assert_eq!(HistogramSnapshot::empty().p95(), 0);
    }

    #[test]
    fn statement_classes_are_syntactic_and_stable() {
        assert_eq!(StatementClass::of("SELECT id FROM t"), StatementClass::Simple);
        assert_eq!(
            StatementClass::of("select a from t inner join u on t.id = u.id"),
            StatementClass::Join
        );
        assert_eq!(StatementClass::of("SELECT COUNT(*) FROM t"), StatementClass::Aggregate);
        assert_eq!(
            StatementClass::of("SELECT g, SUM(v) FROM t GROUP BY g"),
            StatementClass::Aggregate
        );
        assert_eq!(
            StatementClass::of("SELECT id FROM t WHERE v > (SELECT AVG(v) FROM t)"),
            StatementClass::Subquery
        );
        assert_eq!(StatementClass::of("INSERT INTO t VALUES (1)"), StatementClass::Write);
        assert_eq!(StatementClass::of("  update t set a = 1 where id = 2"), StatementClass::Write);
        assert_eq!(StatementClass::of("DELETE FROM t"), StatementClass::Write);
        assert_eq!(StatementClass::of("create table x (a INTEGER)"), StatementClass::Write);
        for class in StatementClass::ALL {
            assert_eq!(StatementClass::ALL[class.index()], class);
        }
    }

    #[test]
    fn registry_snapshot_and_ratios() {
        let m = MetricsRegistry::new();
        m.record_batch(3);
        m.record_statement(StatementClass::Join, 10_000, false);
        m.record_statement(StatementClass::Join, 12_000, true);
        m.record_statement(StatementClass::Simple, 500, true);
        m.record_engine_caches(3, 1, 0, 2);
        m.record_dedup_wait(2_000);
        let snap = m.snapshot();
        assert_eq!(snap.statements, 3);
        assert_eq!(snap.result_cache_hits, 2);
        assert_eq!(snap.result_cache_misses, 1);
        assert!((snap.result_cache_hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert!((snap.plan_cache_hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(snap.subquery_cache_hit_ratio(), 0.0);
        assert_eq!(snap.queue_depth, 0, "all admitted statements were served");
        assert_eq!(snap.dedup_waits, 1);
        assert_eq!(snap.class_latency(StatementClass::Join).total(), 2);
        assert_eq!(snap.overall_latency().total(), 3);
        assert!(snap.worker_busy_nanos >= 22_500);
        let text = snap.render_prometheus();
        assert!(text.contains("serve_statements_total 3"));
        assert!(text.contains("serve_result_cache_hits_total 2"));
        assert!(text.contains("# TYPE serve_statement_latency_nanoseconds histogram"));
        assert!(text.contains("class=\"join\""));
        assert!(text.contains("le=\"+Inf\""));
    }
}
