//! Write-contention suite: raw OS threads holding pinned sessions hammer
//! reads while a writer publishes commits through the snapshot store. The
//! contract is the one `crates/serve/src/lib.rs` documents under
//! "Snapshot / write model":
//!
//! * a pinned session's reads are **byte-identical for its whole lifetime**,
//!   no matter how many commits publish concurrently — readers never block
//!   on the commit gate and never observe a half-applied write;
//! * the version-keyed result cache invalidates exactly by dependency:
//!   entries for untouched tables keep hitting across snapshots, entries
//!   for the touched table miss and re-execute;
//! * prepared statements cached in the shared plan cache survive commits by
//!   re-snapshotting — fresh chunks, fresh rows, no stale-generation panic;
//! * write metrics (commits, per-kind row counters, the snapshot-version
//!   gauge) account every commit exactly once under contention.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use seed_serve::{ServeConfig, Server};
use seed_sqlengine::{execute_statement, Database, Value};

fn snapshot() -> Arc<Database> {
    let mut db = Database::new("write_contention");
    for t in ["hot", "cold"] {
        execute_statement(
            &mut db,
            &format!("CREATE TABLE {t} (id INTEGER PRIMARY KEY, grp INTEGER, v TEXT)"),
        )
        .unwrap();
        for i in 0..60i64 {
            execute_statement(
                &mut db,
                &format!("INSERT INTO {t} VALUES ({i}, {}, 'word {}')", i % 7, i % 5),
            )
            .unwrap();
        }
    }
    Arc::new(db)
}

fn rendered(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter().map(|r| r.iter().map(Value::render).collect()).collect()
}

const PINNED_READS: &[&str] = &[
    "SELECT id, grp, v FROM hot",
    "SELECT grp, COUNT(*) FROM hot GROUP BY grp ORDER BY 1",
    "SELECT a.id FROM hot AS a INNER JOIN cold AS b ON a.grp = b.grp WHERE a.id = b.id",
];

/// Eight pinned sessions read in a loop while the main thread commits 200
/// writes against `hot`. Every session must see its pinned rows, unchanged,
/// on every iteration; the writer's commits must all land.
#[test]
fn pinned_sessions_read_stable_rows_through_two_hundred_commits() {
    let server = Server::new(snapshot(), ServeConfig::default().with_workers(8).oversubscribed());
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..8usize {
            let server = &server;
            let done = &done;
            scope.spawn(move || {
                let mut session = server.session();
                let pinned_version = session.snapshot_version();
                let want: Vec<_> = PINNED_READS
                    .iter()
                    .map(|sql| rendered(&session.execute(sql).unwrap().result.rows))
                    .collect();
                while !done.load(Ordering::Acquire) {
                    for (sql, want) in PINNED_READS.iter().zip(&want) {
                        let got = session.execute(sql).unwrap();
                        assert_eq!(&rendered(&got.result.rows), want, "pinned read moved: {sql}");
                    }
                    assert_eq!(session.snapshot_version(), pinned_version);
                }
            });
        }
        let base_version = server.snapshot_version();
        for i in 0..200i64 {
            let sql = match i % 4 {
                0 => format!("INSERT INTO hot VALUES ({}, {}, 'minted')", 1000 + i, i % 7),
                1 => format!("UPDATE hot SET v = 'touched {i}' WHERE grp = {}", i % 7),
                2 => format!("DELETE FROM hot WHERE id = {}", 1000 + i - 2),
                _ => format!("INSERT INTO cold VALUES ({}, {}, 'cold minted')", 1000 + i, i % 7),
            };
            server.execute(&sql).unwrap();
        }
        assert_eq!(server.snapshot_version(), base_version + 200);
        done.store(true, Ordering::Release);
    });
    let m = server.metrics_snapshot();
    assert_eq!(m.commits, 200, "every commit accounted exactly once");
    assert_eq!(m.snapshot_version, server.snapshot_version());
    assert!(m.rows_inserted >= 100, "insert opcodes landed");
    assert!(m.rows_updated > 0 && m.rows_deleted > 0);
    // A session opened *now* sees the final state, not any pin.
    let mut fresh = server.session();
    let n = fresh.execute("SELECT COUNT(*) FROM hot").unwrap();
    let direct = server.database().table("hot").unwrap().len() as i64;
    assert_eq!(n.result.rows[0][0], Value::Integer(direct));
}

/// The cache-invalidation matrix, observed through hit counters: a read on
/// an untouched table keeps hitting across commits to *other* tables; a
/// read on the touched table misses exactly once per touching commit.
#[test]
fn result_cache_invalidates_by_dependency_not_by_snapshot() {
    let server = Server::new(snapshot(), ServeConfig::serial());
    let hot_read = "SELECT grp, COUNT(*) FROM hot GROUP BY grp ORDER BY 1";
    let cold_read = "SELECT grp, COUNT(*) FROM cold GROUP BY grp ORDER BY 1";

    // Prime both entries (two canonical executions, zero hits).
    server.execute(hot_read).unwrap();
    server.execute(cold_read).unwrap();
    assert_eq!(server.snapshot_stats().result_cache_hits, 0);

    // Repeats hit.
    server.execute(hot_read).unwrap();
    server.execute(cold_read).unwrap();
    assert_eq!(server.snapshot_stats().result_cache_hits, 2);

    // Commit against `hot`: the cold entry survives the snapshot change,
    // the hot entry misses and re-executes.
    server.execute("INSERT INTO hot VALUES (500, 1, 'new')").unwrap();
    server.execute(cold_read).unwrap();
    assert_eq!(server.snapshot_stats().result_cache_hits, 3, "untouched-table entry still hits");
    let hot_after = server.execute(hot_read).unwrap();
    assert_eq!(server.snapshot_stats().result_cache_hits, 3, "touched-table entry must miss");
    assert!(!hot_after.from_result_cache);
    // The re-executed result reflects the commit.
    assert!(hot_after
        .result
        .rows
        .iter()
        .any(|r| r == &vec![Value::Integer(1), Value::Integer(10)]));

    // And the freshly admitted post-commit entry hits again.
    server.execute(hot_read).unwrap();
    assert_eq!(server.snapshot_stats().result_cache_hits, 4);
}

/// Staleness regression at the serve layer: the shared plan cache keeps one
/// prepared statement across a commit. Re-execution must serve the
/// post-commit rows from fresh chunks (never a stale-generation panic,
/// never the old table), while a session pinned pre-commit still gets the
/// original rows through the same shared plans.
#[test]
fn prepared_statements_cached_across_commits_re_snapshot() {
    let server = Server::new(snapshot(), ServeConfig::serial());
    let sql = "SELECT id, v FROM hot WHERE grp = 2";
    let mut pinned = server.session();
    let before = rendered(&pinned.execute(sql).unwrap().result.rows);

    for i in 0..5i64 {
        server.execute(&format!("INSERT INTO hot VALUES ({}, 2, 'post {i}')", 700 + i)).unwrap();
    }
    server.execute("UPDATE hot SET v = 'rewritten' WHERE id = 700").unwrap();

    // Same SQL through the server (same shared plan cache entry): fresh rows.
    let after = rendered(&server.execute(sql).unwrap().result.rows);
    assert_eq!(after.len(), before.len() + 5, "post-commit execution sees the inserts");
    assert!(after.iter().any(|r| r[1] == "rewritten"));
    // The pinned session replays its snapshot, byte-identical.
    assert_eq!(rendered(&pinned.execute(sql).unwrap().result.rows), before);
}
