//! Contention suite for the sharded result cache: 8 OS threads hammer one
//! server at `result_cache_cap` boundaries and the per-stripe live-entry
//! bound must hold throughout — including cap 0 (caching off) and caps
//! smaller than the stripe count (every stripe degenerates to a one-entry
//! LRU).
//!
//! These tests drive `Server::execute` from raw threads (not the server's
//! own pool) so the cache sees genuinely unsynchronized admission traffic
//! on top of the pool-driven batches the determinism suite covers.

use std::sync::Arc;

use seed_serve::{ServeConfig, Server};
use seed_sqlengine::{execute_statement, execute_with_stats, Database};

fn snapshot() -> Arc<Database> {
    let mut db = Database::new("contention_test");
    execute_statement(&mut db, "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, v REAL)")
        .unwrap();
    for i in 0..50i64 {
        execute_statement(&mut db, &format!("INSERT INTO t VALUES ({i}, {}, {}.0)", i % 7, i * 3))
            .unwrap();
    }
    Arc::new(db)
}

/// A pool of distinct valid statements, all with distinct results.
fn distinct_statements(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("SELECT COUNT(*) FROM t WHERE v > {k}")).collect()
}

/// Hammers `server.execute` with `stmts` from 8 threads, each thread
/// walking the statement list at a different stride so admissions,
/// hits, and evictions interleave, asserting per-stripe bounds and row
/// correctness after every call.
fn hammer(server: &Server, stmts: &[String], rounds: usize) {
    let stripe_cap = server.result_cache_stripe_cap();
    std::thread::scope(|scope| {
        for t in 0..8usize {
            scope.spawn(move || {
                for r in 0..rounds {
                    for i in 0..stmts.len() {
                        // Different threads visit in different orders.
                        let sql = &stmts[(i * (t + 1) + r) % stmts.len()];
                        let outcome = server.execute(sql).unwrap();
                        let (direct, _) = execute_with_stats(&server.database(), sql).unwrap();
                        assert_eq!(outcome.result.rows, direct.rows, "{sql}");
                        for (stripe, len) in server.result_cache_shard_lens().iter().enumerate() {
                            assert!(
                                *len <= stripe_cap,
                                "stripe {stripe} holds {len} ready entries, cap {stripe_cap}"
                            );
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn per_stripe_bound_holds_under_eight_thread_hammering_at_the_cap() {
    let server = Server::new(
        snapshot(),
        ServeConfig { result_cache_cap: 16, ..ServeConfig::default().with_workers(8) },
    );
    let shards = server.result_cache_shards();
    let stripe_cap = server.result_cache_stripe_cap();
    assert_eq!(stripe_cap, 16usize.div_ceil(shards).max(1));
    // More distinct statements than the cache can hold: every thread keeps
    // forcing admissions and evictions.
    hammer(&server, &distinct_statements(64), 6);
    assert!(server.result_cache_evictions() > 0, "the workload must exercise eviction");
    let total: usize = server.result_cache_shard_lens().iter().sum();
    assert!(total <= shards * stripe_cap, "global bound: {total} > {shards} * {stripe_cap}");
}

#[test]
fn cap_smaller_than_the_stripe_count_degenerates_to_one_entry_stripes() {
    let server = Server::new(
        snapshot(),
        ServeConfig { result_cache_cap: 3, ..ServeConfig::default().with_workers(8) },
    );
    assert!(server.result_cache_shards() > 3, "cap under test must be below the stripe count");
    assert_eq!(server.result_cache_stripe_cap(), 1, "cap < stripes floors at one entry per stripe");
    hammer(&server, &distinct_statements(32), 6);
    for (stripe, len) in server.result_cache_shard_lens().iter().enumerate() {
        assert!(*len <= 1, "stripe {stripe} exceeded its one-entry cap: {len}");
    }
}

#[test]
fn cap_zero_caches_nothing_under_concurrency() {
    let server = Server::new(
        snapshot(),
        ServeConfig { result_cache_cap: 0, ..ServeConfig::default().with_workers(8) },
    );
    assert_eq!(server.result_cache_stripe_cap(), 0);
    hammer(&server, &distinct_statements(16), 4);
    assert_eq!(server.result_cache_len(), 0, "cap 0 must never admit an entry");
    assert_eq!(server.result_cache_evictions(), 0);
    assert_eq!(server.snapshot_stats().result_cache_hits, 0);
}

#[test]
fn repeated_hammering_with_a_roomy_cap_stays_at_the_distinct_set() {
    // Cap well above the distinct set: after the dust settles every
    // distinct statement is cached exactly once and nothing was evicted.
    let server = Server::new(snapshot(), ServeConfig::default().with_workers(8));
    let stmts = distinct_statements(24);
    hammer(&server, &stmts, 4);
    assert_eq!(server.result_cache_len(), stmts.len());
    assert_eq!(server.result_cache_evictions(), 0);
    let stats = server.snapshot_stats();
    // 8 threads x 4 rounds x 24 statements, 24 canonical executions; with
    // in-flight dedup every other submission is a hit.
    assert_eq!(stats.statements, 8 * 4 * 24);
    assert_eq!(stats.result_cache_hits, 8 * 4 * 24 - 24, "hits are exact under dedup");
}
