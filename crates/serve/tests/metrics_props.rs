//! Property tests for the serve metrics histograms
//! (`seed_serve::metrics`): bucket boundaries partition the u64 range,
//! merging is associative/commutative/loss-free, and every quantile read
//! back from the log-bucketed histogram is within one bucket of the exact
//! sorted-sample quantile.
//!
//! The vendored proptest stub generates strings, so numeric samples are
//! decoded from hex strings: consecutive hex-digit pairs `(m, e)` become
//! the sample `m << (e * 4)` — mantissa-times-power-of-16, which sweeps
//! values across many histogram buckets instead of clustering in the low
//! ones.

use proptest::prelude::*;
use seed_serve::metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSnapshot, LatencyHistogram,
    HISTOGRAM_BUCKETS,
};

/// Decodes hex-digit pairs into spread-out u64 samples (see module docs).
fn decode_samples(s: &str) -> Vec<u64> {
    let digits: Vec<u64> = s.chars().filter_map(|c| c.to_digit(16).map(u64::from)).collect();
    digits.chunks_exact(2).map(|pair| pair[0] << (pair[1] * 4)).collect()
}

/// Builds a histogram snapshot from raw samples.
fn histogram_of(samples: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::default();
    for &n in samples {
        h.record(n);
    }
    h.snapshot()
}

/// The exact quantile of a sample set: the value of rank `ceil(q × n)`
/// (1-based) in sorted order — the oracle the histogram approximates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn bucket_bounds_partition_the_u64_range() {
    // Exhaustive over buckets: bounds are contiguous, ordered, and every
    // bound maps back into its own bucket.
    assert_eq!(bucket_lower_bound(0), 0);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    for i in 0..HISTOGRAM_BUCKETS {
        let lo = bucket_lower_bound(i);
        let hi = bucket_upper_bound(i);
        assert!(lo <= hi, "bucket {i} bounds ordered");
        assert_eq!(bucket_index(lo.max(1)), i, "lower bound lands in its bucket");
        if i < HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(hi), i, "upper bound lands in its bucket");
            assert_eq!(bucket_lower_bound(i + 1), hi + 1, "buckets are contiguous");
        }
    }
}

proptest! {
    /// Every sample lands in exactly the bucket whose bounds bracket it.
    #[test]
    fn samples_land_between_their_buckets_bounds(s in "[0-9a-f]{0,64}") {
        for n in decode_samples(&s) {
            let i = bucket_index(n);
            prop_assert!(i < HISTOGRAM_BUCKETS);
            prop_assert!(n <= bucket_upper_bound(i), "{n} above bucket {i}");
            prop_assert!(n >= bucket_lower_bound(i), "{n} below bucket {i}");
        }
    }

    /// Merging histograms is associative and commutative, and a merge of
    /// any split loses no samples: (A ∪ B) ∪ C = A ∪ (B ∪ C) = the
    /// histogram of all samples at once.
    #[test]
    fn merge_is_associative_and_loss_free(
        a in "[0-9a-f]{0,40}",
        b in "[0-9a-f]{0,40}",
        c in "[0-9a-f]{0,40}",
    ) {
        let (sa, sb, sc) = (decode_samples(&a), decode_samples(&b), decode_samples(&c));
        let (ha, hb, hc) = (histogram_of(&sa), histogram_of(&sb), histogram_of(&sc));

        // Left-associated: (A ∪ B) ∪ C.
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // Right-associated: A ∪ (B ∪ C).
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "associativity");

        // Commuted: C ∪ B ∪ A.
        let mut swapped = hc.clone();
        swapped.merge(&hb);
        swapped.merge(&ha);
        prop_assert_eq!(&left, &swapped, "commutativity");

        // Loss-free: equal to recording every sample into one histogram.
        let mut all = sa.clone();
        all.extend(&sb);
        all.extend(&sc);
        prop_assert_eq!(&left, &histogram_of(&all), "merge loses or invents samples");
        prop_assert_eq!(left.total(), all.len() as u64);
    }

    /// p50/p95/p99 (and a sweep of other quantiles) read back from the
    /// histogram equal the upper bound of the bucket holding the exact
    /// sorted-sample quantile — i.e. the approximation error is bounded by
    /// one power-of-two bucket, never more.
    #[test]
    fn quantiles_are_within_one_bucket_of_the_sorted_oracle(s in "[0-9a-f]{2,64}") {
        // The `{2,64}` generator guarantees at least one hex-digit pair,
        // so the sample set is never empty.
        let mut samples = decode_samples(&s);
        prop_assert!(!samples.is_empty());
        let snap = histogram_of(&samples);
        samples.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let approx = snap.quantile(q);
            prop_assert_eq!(
                approx,
                bucket_upper_bound(bucket_index(exact)),
                "q={} exact={} approx={}",
                q,
                exact,
                approx
            );
            // The bracket the equality implies, stated directly: the exact
            // quantile is never above the reported one, and the reported
            // one is inside the exact value's own bucket.
            prop_assert!(exact <= approx);
            prop_assert!(approx <= bucket_upper_bound(bucket_index(exact)));
        }
        prop_assert_eq!(snap.p50(), snap.quantile(0.50));
        prop_assert_eq!(snap.p95(), snap.quantile(0.95));
        prop_assert_eq!(snap.p99(), snap.quantile(0.99));
    }
}
