//! The hashed lexical embedder.

use crate::{Embedding, EmbeddingModel};

/// Deterministic hashed bag-of-features sentence embedder.
///
/// Features: word unigrams (weight 1.0), word bigrams (weight 0.7), character
/// trigrams (weight 0.3). Each feature is hashed (FNV-1a) into a fixed-size
/// vector with a sign hash, then the vector is L2-normalized.
#[derive(Debug, Clone)]
pub struct HashedEmbedder {
    dimension: usize,
}

impl Default for HashedEmbedder {
    fn default() -> Self {
        HashedEmbedder { dimension: 384 }
    }
}

impl HashedEmbedder {
    /// Creates an embedder with a custom dimensionality (must be > 0).
    pub fn with_dimension(dimension: usize) -> Self {
        assert!(dimension > 0, "embedding dimension must be positive");
        HashedEmbedder { dimension }
    }

    fn add_feature(&self, vec: &mut [f32], feature: &str, weight: f32) {
        let h = fnv1a(feature.as_bytes());
        let idx = (h % self.dimension as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        vec[idx] += sign * weight;
    }
}

impl EmbeddingModel for HashedEmbedder {
    fn dimension(&self) -> usize {
        self.dimension
    }

    fn embed(&self, text: &str) -> Embedding {
        let mut v = vec![0.0f32; self.dimension];
        let words: Vec<String> = text
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { ' ' })
            .collect::<String>()
            .split_whitespace()
            .map(|s| s.to_string())
            .collect();
        for w in &words {
            self.add_feature(&mut v, &format!("u:{w}"), 1.0);
        }
        for pair in words.windows(2) {
            self.add_feature(&mut v, &format!("b:{} {}", pair[0], pair[1]), 0.7);
        }
        let joined = words.join(" ");
        let chars: Vec<char> = joined.chars().collect();
        if chars.len() >= 3 {
            for i in 0..chars.len() - 2 {
                let tri: String = chars[i..i + 3].iter().collect();
                self.add_feature(&mut v, &format!("c:{tri}"), 0.3);
            }
        }
        // L2 normalize.
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

/// 64-bit FNV-1a hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosine_similarity;
    use proptest::prelude::*;

    #[test]
    fn embeddings_are_deterministic() {
        let m = HashedEmbedder::default();
        assert_eq!(m.embed("hello world"), m.embed("hello world"));
    }

    #[test]
    fn embeddings_are_normalized() {
        let m = HashedEmbedder::default();
        let v = m.embed("List all the elements with double bond in molecule TR024");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let m = HashedEmbedder::default();
        let v = m.embed("");
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn similar_sentences_are_closer_than_unrelated() {
        let m = HashedEmbedder::default();
        let a = m.embed("How many cards whose status is restricted have text boxes?");
        let b = m.embed("How many cards with restricted status are textless?");
        let c = m.embed("What is the average loan amount of weekly issuance accounts?");
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
    }

    #[test]
    fn custom_dimension_respected() {
        let m = HashedEmbedder::with_dimension(64);
        assert_eq!(m.dimension(), 64);
        assert_eq!(m.embed("x").len(), 64);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        HashedEmbedder::with_dimension(0);
    }

    proptest! {
        #[test]
        fn norm_is_zero_or_one(text in "[a-zA-Z0-9 ]{0,60}") {
            let m = HashedEmbedder::default();
            let v = m.embed(&text);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm < 1e-4 || (norm - 1.0).abs() < 1e-3);
        }

        #[test]
        fn self_similarity_is_max(text in "[a-z ]{1,40}") {
            let m = HashedEmbedder::default();
            let v = m.embed(&text);
            if v.iter().any(|x| *x != 0.0) {
                prop_assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-4);
            }
        }
    }
}
