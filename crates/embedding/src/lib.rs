//! # seed-embedding
//!
//! A deterministic sentence-embedding substitute for `all-mpnet-base-v2`,
//! which the SEED paper uses to pick few-shot examples by cosine similarity.
//!
//! The embedding is a hashed bag of word unigrams, word bigrams, and character
//! trigrams, L2-normalized. It is *not* a neural sentence encoder; what the
//! pipeline needs from it is a similarity ranking in which questions that
//! share schema terms, phrasing, and values land close together, and that is
//! exactly what lexical hashing provides — deterministically and offline.
//!
//! ```
//! use seed_embedding::EmbeddingModel;
//! let model = seed_embedding::HashedEmbedder::default();
//! let a = model.embed("How many clients opened accounts in the Jesenik branch?");
//! let b = model.embed("How many clients opened their accounts in Pisek?");
//! let c = model.embed("List the atoms of molecule TR024 with double bonds");
//! assert!(seed_embedding::cosine_similarity(&a, &b) > seed_embedding::cosine_similarity(&a, &c));
//! ```

mod hashed;

pub use hashed::HashedEmbedder;

/// A dense embedding vector.
pub type Embedding = Vec<f32>;

/// Anything that can embed a sentence into a fixed-size vector.
pub trait EmbeddingModel {
    /// Dimensionality of produced embeddings.
    fn dimension(&self) -> usize;

    /// Embeds a sentence. The result must be L2-normalized (or zero).
    fn embed(&self, text: &str) -> Embedding;

    /// Embeds a batch of sentences (default: map over [`EmbeddingModel::embed`]).
    fn embed_batch(&self, texts: &[&str]) -> Vec<Embedding> {
        texts.iter().map(|t| self.embed(t)).collect()
    }
}

/// Cosine similarity between two embeddings (0 for mismatched/zero vectors).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Ranks `candidates` by cosine similarity to `query`, most similar first.
/// Returns `(index, similarity)` pairs.
pub fn rank_by_similarity<M: EmbeddingModel>(
    model: &M,
    query: &str,
    candidates: &[&str],
) -> Vec<(usize, f32)> {
    let q = model.embed(query);
    let mut scored: Vec<(usize, f32)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (i, cosine_similarity(&q, &model.embed(c))))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = vec![0.5f32, 0.5, 0.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_handles_mismatched_and_zero() {
        assert_eq!(cosine_similarity(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn rank_by_similarity_puts_paraphrase_first() {
        let model = HashedEmbedder::default();
        let query = "How many accounts have a loan under 200000?";
        let candidates = [
            "Among the weekly issuance accounts, how many have a loan of under 200000?",
            "List the superheroes with blue eyes",
            "What is the highest eligible free rate for K-12 students?",
        ];
        let ranked = rank_by_similarity(&model, query, &candidates);
        assert_eq!(ranked[0].0, 0);
        assert!(ranked[0].1 > ranked[1].1);
    }
}
