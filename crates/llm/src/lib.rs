//! # seed-llm
//!
//! The simulated language-model substrate of the SEED reproduction.
//!
//! The original SEED system and its baselines call hosted LLMs (GPT-4o,
//! GPT-4o-mini, GPT-4, ChatGPT, DeepSeek-R1, DeepSeek-V3) over HTTP. This
//! crate replaces those calls with a deterministic simulator that keeps the
//! mechanisms the paper's claims rest on:
//!
//! * **Prompt assembly and token budgets** ([`prompt`], [`token`]) — prompts
//!   are really built and counted, so DeepSeek-R1's 8,192-token limit forces
//!   schema summarization exactly as in the paper.
//! * **Capability profiles** ([`profile`]) — each named model has a context
//!   window, skill, schema-linking strength, and value-grounding strength.
//! * **Knowledge atoms and evidence clauses** ([`knowledge`]) — the units of
//!   domain knowledge that evidence pins down, with a parser for the evidence
//!   formats used by BIRD and SEED.
//! * **Mechanistic task execution** ([`sim`]) — SQL generation, evidence
//!   generation, schema summarization, and keyword extraction whose quality
//!   depends on what information is actually present in the prompt.

pub mod knowledge;
pub mod profile;
pub mod prompt;
pub mod sim;
pub mod tasks;
pub mod token;

pub use knowledge::{
    parse_evidence_clauses, render_literal, EvidenceClause, KnowledgeAtom, KnowledgeKind,
    SqlCondition,
};
pub use profile::ModelProfile;
pub use prompt::{FewShotExample, GroundedColumn, PromptBuilder};
pub use sim::{LanguageModel, SimLlm, UsageStats};
pub use tasks::{
    EvidenceGenOutput, EvidenceGenTask, ExtractedKeyword, KeywordExtractionTask,
    SchemaSummaryOutput, SchemaSummaryTask, SqlGenOutput, SqlGenTask,
};
pub use token::{count_tokens, truncate_to_tokens};
