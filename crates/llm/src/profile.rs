//! Capability profiles for the simulated language models.
//!
//! The SEED paper runs its pipelines on GPT-4o, GPT-4o-mini, GPT-4, ChatGPT,
//! DeepSeek-R1, and DeepSeek-V3, and its baselines on those plus the fine-tuned
//! CodeS family. The reproduction replaces the HTTP APIs with a deterministic
//! simulator whose behaviour is parameterized by these profiles: context
//! window (drives the SEED_gpt vs SEED_deepseek architecture split), overall
//! skill (structural SQL correctness), schema-linking strength, and
//! value-grounding strength (how well the model exploits grounded values,
//! descriptions, and evidence in the prompt).

/// Capability profile of a (simulated) language model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Human-readable model name, e.g. `"gpt-4o"`.
    pub name: String,
    /// Maximum prompt tokens the model accepts.
    pub context_window: usize,
    /// Overall reasoning/SQL-writing skill in `[0, 1]`; higher means fewer
    /// structural errors.
    pub skill: f64,
    /// How reliably the model picks the right tables/columns.
    pub schema_linking: f64,
    /// How reliably the model exploits evidence, descriptions, and sample
    /// values present in the prompt.
    pub value_grounding: f64,
    /// Base RNG seed so every profile has an independent but reproducible
    /// error pattern.
    pub seed: u64,
}

impl ModelProfile {
    fn new(
        name: &str,
        context_window: usize,
        skill: f64,
        schema_linking: f64,
        value_grounding: f64,
        seed: u64,
    ) -> Self {
        ModelProfile {
            name: name.to_string(),
            context_window,
            skill,
            schema_linking,
            value_grounding,
            seed,
        }
    }

    /// GPT-4o: large context, strongest all-round profile.
    pub fn gpt_4o() -> Self {
        Self::new("gpt-4o", 128_000, 0.90, 0.92, 0.94, 0x6f40)
    }

    /// GPT-4o-mini: large context, noticeably weaker reasoning.
    pub fn gpt_4o_mini() -> Self {
        Self::new("gpt-4o-mini", 128_000, 0.80, 0.84, 0.88, 0x6f41)
    }

    /// GPT-4 (the DAIL-SQL base model in the paper).
    pub fn gpt_4() -> Self {
        Self::new("gpt-4", 32_000, 0.86, 0.88, 0.90, 0x0400)
    }

    /// ChatGPT (gpt-3.5-turbo), the C3 base model.
    pub fn chatgpt() -> Self {
        Self::new("chatgpt", 16_000, 0.74, 0.78, 0.80, 0x0350)
    }

    /// DeepSeek-R1: strong reasoning but an 8,192-token API limit, which is
    /// what forces SEED_deepseek to summarize schemas (paper §III).
    pub fn deepseek_r1() -> Self {
        Self::new("deepseek-r1", 8_192, 0.87, 0.88, 0.90, 0xd512)
    }

    /// DeepSeek-V3: used by the paper to revise evidence and to write Spider
    /// description files.
    pub fn deepseek_v3() -> Self {
        Self::new("deepseek-v3", 64_000, 0.84, 0.86, 0.88, 0xd503)
    }

    /// SFT CodeS models: fine-tuned StarCoder variants. Smaller context, skill
    /// scales with parameter count; fine-tuning makes them *very* good at
    /// exploiting evidence concatenated into their prompt.
    pub fn codes(billions: u32) -> Self {
        let (skill, linking, seed) = match billions {
            15 => (0.78, 0.84, 0xc015),
            7 => (0.74, 0.80, 0xc007),
            3 => (0.68, 0.74, 0xc003),
            _ => (0.62, 0.68, 0xc001),
        };
        Self::new(&format!("sft-codes-{billions}b"), 8_192, skill, linking, 0.93, seed)
    }

    /// Looks a profile up by name (used by experiment configuration files).
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        match name.to_ascii_lowercase().as_str() {
            "gpt-4o" => Some(Self::gpt_4o()),
            "gpt-4o-mini" => Some(Self::gpt_4o_mini()),
            "gpt-4" => Some(Self::gpt_4()),
            "chatgpt" | "gpt-3.5-turbo" => Some(Self::chatgpt()),
            "deepseek-r1" => Some(Self::deepseek_r1()),
            "deepseek-v3" => Some(Self::deepseek_v3()),
            "sft-codes-15b" => Some(Self::codes(15)),
            "sft-codes-7b" => Some(Self::codes(7)),
            "sft-codes-3b" => Some(Self::codes(3)),
            "sft-codes-1b" => Some(Self::codes(1)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepseek_r1_has_small_context() {
        assert_eq!(ModelProfile::deepseek_r1().context_window, 8_192);
        assert!(ModelProfile::gpt_4o().context_window > 100_000);
    }

    #[test]
    fn codes_skill_scales_with_size() {
        assert!(ModelProfile::codes(15).skill > ModelProfile::codes(7).skill);
        assert!(ModelProfile::codes(7).skill > ModelProfile::codes(3).skill);
        assert!(ModelProfile::codes(3).skill > ModelProfile::codes(1).skill);
    }

    #[test]
    fn by_name_round_trips() {
        for name in [
            "gpt-4o",
            "gpt-4o-mini",
            "gpt-4",
            "chatgpt",
            "deepseek-r1",
            "deepseek-v3",
            "sft-codes-15b",
            "sft-codes-1b",
        ] {
            let p = ModelProfile::by_name(name).unwrap();
            assert_eq!(p.name, name.replace("gpt-3.5-turbo", "chatgpt"));
        }
        assert!(ModelProfile::by_name("claude").is_none());
    }

    #[test]
    fn all_probabilities_in_unit_interval() {
        for p in [
            ModelProfile::gpt_4o(),
            ModelProfile::gpt_4o_mini(),
            ModelProfile::gpt_4(),
            ModelProfile::chatgpt(),
            ModelProfile::deepseek_r1(),
            ModelProfile::deepseek_v3(),
            ModelProfile::codes(15),
            ModelProfile::codes(1),
        ] {
            assert!((0.0..=1.0).contains(&p.skill));
            assert!((0.0..=1.0).contains(&p.schema_linking));
            assert!((0.0..=1.0).contains(&p.value_grounding));
        }
    }
}
