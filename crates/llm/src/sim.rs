//! The deterministic simulated language model.
//!
//! Every call assembles a real prompt (for token accounting), then decides —
//! with a per-question deterministic RNG stream — how well the model performs
//! the task. Quality is *mechanistic*: a knowledge atom is resolved correctly
//! only when the needed information is textually present in the prompt
//! (evidence clause, grounded value, description line) or when the unaided
//! guess succeeds; structural SQL errors scale with question difficulty,
//! model skill, context overflow, and pruning mistakes. This is the
//! substitution that replaces GPT-4o/DeepSeek-R1 HTTP calls (DESIGN.md §2).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seed_retrieval::{content_words, split_identifier};
use seed_sqlengine::Value;

use crate::knowledge::{parse_evidence_clauses, KnowledgeAtom, KnowledgeKind, SqlCondition};
use crate::profile::ModelProfile;
use crate::prompt::{GroundedColumn, PromptBuilder};
use crate::tasks::*;

/// Usage counters, mirroring what an API client would meter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageStats {
    pub calls: u64,
    pub prompt_tokens: u64,
}

/// The behavioural interface every simulated model exposes.
pub trait LanguageModel {
    /// The capability profile driving this model's behaviour.
    fn profile(&self) -> &ModelProfile;

    /// Translates a question into SQL.
    fn generate_sql(&self, task: &SqlGenTask<'_>) -> SqlGenOutput;

    /// Generates evidence for a question (SEED's final stage).
    fn generate_evidence(&self, task: &EvidenceGenTask<'_>) -> EvidenceGenOutput;

    /// Prunes a schema down to question-relevant tables.
    fn summarize_schema(&self, task: &SchemaSummaryTask<'_>) -> SchemaSummaryOutput;

    /// Extracts column/value keywords from a question.
    fn extract_keywords(&self, task: &KeywordExtractionTask<'_>) -> Vec<ExtractedKeyword>;

    /// Cumulative usage counters.
    fn usage(&self) -> UsageStats;
}

/// Deterministic simulated LLM.
#[derive(Debug)]
pub struct SimLlm {
    profile: ModelProfile,
    usage: Mutex<UsageStats>,
}

impl SimLlm {
    /// Creates a simulator with the given capability profile.
    pub fn new(profile: ModelProfile) -> Self {
        SimLlm { profile, usage: Mutex::new(UsageStats::default()) }
    }

    fn record(&self, prompt_tokens: usize) {
        let mut u = self.usage.lock();
        u.calls += 1;
        u.prompt_tokens += prompt_tokens as u64;
    }

    /// Derives a deterministic RNG for (question, task-kind, sample).
    fn rng(&self, question_id: &str, task_tag: u64, sample: u32) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325 ^ self.profile.seed.wrapping_mul(0x9e3779b97f4a7c15);
        for b in question_id.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= task_tag.wrapping_mul(0x2545F4914F6CDD1D);
        h ^= (sample as u64).wrapping_mul(0x9E3779B97F4A7C15);
        StdRng::seed_from_u64(h)
    }

    /// Does any grounded column contain the atom's correct value (exact,
    /// case-sensitive — exact casing is the whole point of grounding)?
    fn grounded_contains(grounded: &[GroundedColumn], cond: &SqlCondition) -> bool {
        let needle = match &cond.value {
            Value::Text(s) => s.clone(),
            other => other.render(),
        };
        grounded.iter().any(|g| {
            (cond.table.is_empty() || g.table.eq_ignore_ascii_case(&cond.table))
                && (cond.column.is_empty() || g.column.eq_ignore_ascii_case(&cond.column))
                && g.values.iter().any(|v| v == &needle)
        })
    }

    /// Is the knowledge present in the schema's description metadata?
    fn description_contains(
        task_schema: &seed_sqlengine::DatabaseSchema,
        atom: &KnowledgeAtom,
    ) -> bool {
        let needle = match &atom.correct.value {
            Value::Text(s) => s.clone(),
            other => other.render(),
        };
        task_schema
            .table(&atom.correct.table)
            .and_then(|t| t.column(&atom.correct.column))
            .map(|c| {
                let haystack = format!("{} {}", c.description, c.value_description);
                haystack.contains(&needle)
                    || haystack.to_lowercase().contains(&atom.phrase.to_lowercase())
            })
            .unwrap_or(false)
    }

    /// Is the atom's table visible given an optional pruned table subset?
    fn table_visible(subset: Option<&[String]>, table: &str) -> bool {
        match subset {
            None => true,
            Some(keep) => keep.iter().any(|t| t.eq_ignore_ascii_case(table)),
        }
    }

    /// Decides which condition the model uses for one atom during SQL
    /// generation. Returns `(condition, resolved_correctly)`.
    #[allow(clippy::too_many_arguments)]
    fn decide_atom(
        &self,
        rng: &mut StdRng,
        atom: &KnowledgeAtom,
        evidence_clauses: &[crate::knowledge::EvidenceClause],
        grounded: &[GroundedColumn],
        descriptions_in_prompt: bool,
        schema: &seed_sqlengine::DatabaseSchema,
        schema_subset: Option<&[String]>,
        effective_grounding: f64,
    ) -> (SqlCondition, bool) {
        // 1. Evidence: follow whatever the evidence asserts for this phrase or column.
        let phrase_lower = atom.phrase.to_lowercase();
        let clause = evidence_clauses.iter().find(|c| {
            let cp = c.phrase.to_lowercase();
            cp.contains(&phrase_lower)
                || phrase_lower.contains(&cp)
                || (!c.condition.column.is_empty()
                    && c.condition.column.eq_ignore_ascii_case(&atom.correct.column))
        });
        if let Some(clause) = clause {
            let follow = rng.gen_bool((0.85 + 0.15 * effective_grounding).min(1.0));
            if follow {
                // Fill in table/column gaps from the atom (evidence often omits the table).
                let mut cond = clause.condition.clone();
                if cond.table.is_empty() {
                    cond.table = atom.correct.table.clone();
                }
                if cond.column.is_empty() {
                    cond.column = atom.correct.column.clone();
                }
                // Text comparison here is exact (case-sensitive), so evidence
                // asserting 'restricted' instead of 'Restricted' counts as wrong.
                let text_exact = match (&cond.value, &atom.correct.value) {
                    (Value::Text(a), Value::Text(b)) => a == b,
                    _ => cond.value == atom.correct.value,
                };
                let correct = cond.op == atom.correct.op
                    && cond.column.eq_ignore_ascii_case(&atom.correct.column)
                    && cond.table.eq_ignore_ascii_case(&atom.correct.table)
                    && text_exact;
                return (cond, correct);
            }
        }

        // If the atom's table was pruned away, the model cannot ground it.
        let visible = Self::table_visible(schema_subset, &atom.correct.table);

        // 2. Grounded sample values.
        if visible
            && Self::grounded_contains(grounded, &atom.correct)
            && rng.gen_bool(effective_grounding)
        {
            return (atom.correct.clone(), true);
        }

        // 3. Description files in the prompt.
        if visible
            && descriptions_in_prompt
            && Self::description_contains(schema, atom)
            && rng.gen_bool((effective_grounding * 0.85).min(1.0))
        {
            return (atom.correct.clone(), true);
        }

        // 4. Unaided guess.
        let p = atom.kind.unaided_guess_rate() * (0.45 + 0.55 * self.profile.skill);
        if rng.gen_bool(p.min(1.0)) {
            (atom.correct.clone(), true)
        } else {
            (atom.naive.clone(), false)
        }
    }
}

impl LanguageModel for SimLlm {
    fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn generate_sql(&self, task: &SqlGenTask<'_>) -> SqlGenOutput {
        let prompt = PromptBuilder::new()
            .section(
                "Instruction",
                "You are a text-to-SQL assistant. Write a single SQLite query answering the question.",
            )
            .schema(task.schema, task.schema_subset, task.descriptions_in_prompt)
            .examples(task.few_shot)
            .grounded_values(task.grounded_values)
            .evidence(task.evidence)
            .question(task.question);
        let prompt_tokens = prompt.token_count();
        self.record(prompt_tokens);
        let context_overflow = prompt_tokens > self.profile.context_window;

        let mut rng = self.rng(task.question_id, 0x5191, task.sample_index);

        let effective_grounding = if context_overflow {
            self.profile.value_grounding * 0.35
        } else {
            self.profile.value_grounding
        };

        let evidence_clauses = task.evidence.map(parse_evidence_clauses).unwrap_or_default();

        // Resolve each knowledge atom and rewrite the reference SQL accordingly.
        let mut sql = task.gold_sql.to_string();
        let mut resolved = 0usize;
        for atom in task.atoms {
            let (cond, correct) = self.decide_atom(
                &mut rng,
                atom,
                &evidence_clauses,
                task.grounded_values,
                task.descriptions_in_prompt && !context_overflow,
                task.schema,
                task.schema_subset,
                effective_grounding,
            );
            if correct {
                resolved += 1;
            } else {
                let target = atom.correct.to_sql();
                let replacement = cond.to_sql();
                if sql.contains(&target) {
                    sql = sql.replace(&target, &replacement);
                } else {
                    // Reference SQL without the canonical rendering: fall back to
                    // appending an impossible filter so the query is wrong rather
                    // than silently right.
                    sql = format!("SELECT * FROM ( {sql} ) AS _m WHERE 1 = 0");
                }
            }
        }

        // Pruning that dropped a table the gold SQL needs breaks the query.
        let missing_table = task.schema_subset.is_some_and(|keep| {
            task.atoms.iter().any(|a| {
                !a.correct.table.is_empty()
                    && !keep.iter().any(|t| t.eq_ignore_ascii_case(&a.correct.table))
            })
        });

        // Structural error model.
        let mut p_struct = task.difficulty * (1.0 - self.profile.skill);
        if task.few_shot.len() >= 3 {
            p_struct *= 0.75;
        }
        if task.calibration_hints {
            p_struct *= 0.85;
        }
        if context_overflow {
            p_struct = (p_struct + 0.35).min(0.95);
        }
        if missing_table {
            p_struct = (p_struct + 0.5).min(0.97);
        }
        let structural_error = rng.gen_bool(p_struct.clamp(0.0, 1.0));
        if structural_error {
            sql = match rng.gen_range(0..3u8) {
                0 => format!("SELECT * FROM ( {sql} ) AS _e WHERE 1 = 0"),
                1 => {
                    if sql.contains("COUNT(") {
                        sql.replacen("COUNT(", "SUM(", 1)
                    } else {
                        format!("SELECT * FROM ( {sql} ) AS _e WHERE 1 = 0")
                    }
                }
                _ => format!("{sql} ORDER BY column_that_does_not_exist_xyz"),
            };
        } else {
            // Efficiency variation: a fluent model often omits a gold ORDER BY
            // that does not affect the answer set, producing a cheaper query.
            if !sql.to_uppercase().contains(" LIMIT ") {
                if let Some(pos) = sql.to_uppercase().find(" ORDER BY ") {
                    if rng.gen_bool(0.4 + 0.4 * self.profile.skill) {
                        sql.truncate(pos);
                    }
                }
            }
        }

        SqlGenOutput {
            sql,
            prompt_tokens,
            context_overflow,
            resolved_atoms: resolved,
            structural_error,
        }
    }

    fn generate_evidence(&self, task: &EvidenceGenTask<'_>) -> EvidenceGenOutput {
        let prompt = PromptBuilder::new()
            .section(
                "Instruction",
                "Analyze the database schema, descriptions and sample values, and write evidence \
                 sentences that map question phrases to schema elements and values.",
            )
            .schema(task.schema, task.schema_subset, task.descriptions_available)
            .examples(task.few_shot)
            .grounded_values(task.grounded_values)
            .question(task.question);
        let prompt_tokens = prompt.token_count();
        self.record(prompt_tokens);
        let context_overflow = prompt_tokens > self.profile.context_window;

        let mut rng = self.rng(task.question_id, 0xe71d, 0);
        let mut sentences: Vec<String> = Vec::new();
        let mut resolved = 0usize;
        let mut incorrect = 0usize;

        for atom in task.atoms {
            let visible = Self::table_visible(task.schema_subset, &atom.correct.table);
            let info_available = visible
                && (Self::grounded_contains(task.grounded_values, &atom.correct)
                    || (task.descriptions_available
                        && Self::description_contains(task.schema, atom))
                    || matches!(
                        atom.kind,
                        KnowledgeKind::SchemaChoice | KnowledgeKind::NumericFormula
                    ));
            let mut p = if info_available {
                0.72 + 0.23 * self.profile.value_grounding
            } else {
                atom.kind.unaided_guess_rate() * self.profile.skill * 0.5
            };
            if context_overflow {
                p *= 0.45;
            }
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                resolved += 1;
                let sentence = if task.qualified_style {
                    atom.qualified_evidence_sentence()
                } else {
                    atom.evidence_sentence()
                };
                sentences.push(sentence);
            } else if rng.gen_bool(0.3) {
                // The model hallucinates a plausible but wrong grounding.
                incorrect += 1;
                let wrong = KnowledgeAtom::new(
                    &atom.phrase,
                    atom.kind,
                    atom.naive.clone(),
                    atom.naive.clone(),
                );
                let sentence = if task.qualified_style {
                    wrong.qualified_evidence_sentence()
                } else {
                    wrong.evidence_sentence()
                };
                sentences.push(sentence);
            }
            // otherwise: omit, like missing BIRD evidence
        }

        if !task.join_hints.is_empty() && !sentences.is_empty() {
            for hint in task.join_hints {
                sentences.push(hint.clone());
            }
        }

        EvidenceGenOutput {
            evidence: sentences.join(";\n"),
            prompt_tokens,
            context_overflow,
            resolved_atoms: resolved,
            incorrect_atoms: incorrect,
        }
    }

    fn summarize_schema(&self, task: &SchemaSummaryTask<'_>) -> SchemaSummaryOutput {
        let prompt = PromptBuilder::new()
            .section("Instruction", "Select the tables relevant to the question.")
            .schema(task.schema, None, false)
            .question(task.question);
        let prompt_tokens = prompt.token_count();
        self.record(prompt_tokens);

        // Lexical relevance score: question content words vs table name, column
        // names, and description text.
        let q_words = content_words(task.question);
        let mut scored: Vec<(String, f64)> = Vec::new();
        for table in &task.schema.tables {
            let mut hay: Vec<String> = split_identifier(&table.name);
            for c in &table.columns {
                hay.extend(split_identifier(&c.name));
                hay.extend(content_words(&c.description));
                hay.extend(content_words(&c.value_description));
            }
            let mut score = 0.0;
            for w in &q_words {
                if hay.iter().any(|h| h == w) {
                    score += 1.0;
                } else if hay.iter().any(|h| h.starts_with(w.as_str()) || w.starts_with(h.as_str()))
                {
                    score += 0.4;
                }
            }
            scored.push((table.name.clone(), score));
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let keep: Vec<String> = scored
            .iter()
            .enumerate()
            .filter(|(i, (_, s))| *i < task.max_tables.max(1) && (*s > 0.0 || *i == 0))
            .map(|(_, (n, _))| n.clone())
            .collect();
        SchemaSummaryOutput { tables: keep, prompt_tokens }
    }

    fn extract_keywords(&self, task: &KeywordExtractionTask<'_>) -> Vec<ExtractedKeyword> {
        let prompt = PromptBuilder::new()
            .section("Instruction", "Extract keywords that denote columns or values.")
            .schema(task.schema, None, false)
            .question(task.question);
        self.record(prompt.token_count());

        let mut keywords: Vec<String> = Vec::new();
        // Quoted phrases and Capitalized tokens are value candidates.
        for word in task.question.split_whitespace() {
            let clean = word.trim_matches(|c: char| !c.is_alphanumeric());
            if clean.len() > 1
                && clean.chars().next().is_some_and(|c| c.is_uppercase())
                && !keywords.iter().any(|k| k.eq_ignore_ascii_case(clean))
            {
                keywords.push(clean.to_string());
            }
        }
        for w in content_words(task.question) {
            if !keywords.iter().any(|k| k.eq_ignore_ascii_case(&w)) {
                keywords.push(w);
            }
        }

        keywords
            .into_iter()
            .map(|kw| {
                let kw_lower = kw.to_lowercase();
                let mut candidates: Vec<(String, String, f64)> = Vec::new();
                for table in &task.schema.tables {
                    for col in &table.columns {
                        let pieces = split_identifier(&col.name);
                        let desc =
                            format!("{} {}", col.description, col.value_description).to_lowercase();
                        let mut score = 0.0;
                        if pieces.iter().any(|p| p == &kw_lower) {
                            score += 2.0;
                        }
                        if desc.contains(&kw_lower) {
                            score += 1.0;
                        }
                        if seed_retrieval::normalized_similarity(&col.name, &kw) > 0.7 {
                            score += 1.0;
                        }
                        if score > 0.0 {
                            candidates.push((table.name.clone(), col.name.clone(), score));
                        }
                    }
                }
                candidates
                    .sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
                ExtractedKeyword {
                    keyword: kw,
                    candidate_columns: candidates
                        .into_iter()
                        .take(3)
                        .map(|(t, c, _)| (t, c))
                        .collect(),
                }
            })
            .collect()
    }

    fn usage(&self) -> UsageStats {
        *self.usage.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{ColumnDef, DataType, DatabaseSchema, TableSchema};

    fn schema() -> DatabaseSchema {
        let mut s = DatabaseSchema::new("financial");
        s.add_table(TableSchema::new(
            "account",
            vec![
                ColumnDef::new("account_id", DataType::Integer).primary_key(),
                ColumnDef::new("frequency", DataType::Text)
                    .described("frequency of statement issuance")
                    .with_values("\"POPLATEK TYDNE\" stands for weekly issuance, \"POPLATEK MESICNE\" stands for monthly issuance"),
            ],
        ))
        .unwrap();
        s.add_table(TableSchema::new(
            "loan",
            vec![
                ColumnDef::new("loan_id", DataType::Integer).primary_key(),
                ColumnDef::new("account_id", DataType::Integer),
                ColumnDef::new("amount", DataType::Real).described("loan amount in CZK"),
            ],
        ))
        .unwrap();
        s.add_table(TableSchema::new(
            "district",
            vec![ColumnDef::new("district_id", DataType::Integer).primary_key()],
        ))
        .unwrap();
        s
    }

    fn weekly_atom() -> KnowledgeAtom {
        KnowledgeAtom::new(
            "weekly issuance",
            KnowledgeKind::ValueIllustration,
            SqlCondition::new("account", "frequency", "=", "POPLATEK TYDNE"),
            SqlCondition::new("account", "frequency", "=", "weekly"),
        )
    }

    fn gold_sql() -> String {
        format!("SELECT COUNT(*) FROM account WHERE {}", weekly_atom().correct.to_sql())
    }

    fn base_task<'a>(
        schema: &'a DatabaseSchema,
        gold: &'a str,
        atoms: &'a [KnowledgeAtom],
        evidence: Option<&'a str>,
    ) -> SqlGenTask<'a> {
        SqlGenTask {
            question_id: "q-1",
            question: "Among the weekly issuance accounts, how many are there?",
            schema,
            schema_subset: None,
            evidence,
            descriptions_in_prompt: false,
            grounded_values: &[],
            few_shot: &[],
            atoms,
            gold_sql: gold,
            difficulty: 0.2,
            calibration_hints: false,
            sample_index: 0,
        }
    }

    #[test]
    fn correct_evidence_yields_gold_sql() {
        let schema = schema();
        let gold = gold_sql();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(ModelProfile::gpt_4o());
        let ev = "weekly issuance refers to frequency = 'POPLATEK TYDNE'".to_string();
        let task = base_task(&schema, &gold, &atoms, Some(&ev));
        let out = model.generate_sql(&task);
        assert_eq!(out.resolved_atoms, 1);
        assert!(out.sql.contains("POPLATEK TYDNE"));
    }

    #[test]
    fn wrong_evidence_is_followed() {
        let schema = schema();
        let gold = gold_sql();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(ModelProfile::gpt_4o());
        // Defective evidence asserting the wrong value: the model trusts it.
        let ev = "weekly issuance refers to frequency = 'POPLATEK MESICNE'".to_string();
        let task = base_task(&schema, &gold, &atoms, Some(&ev));
        let out = model.generate_sql(&task);
        assert_eq!(out.resolved_atoms, 0);
        assert!(out.sql.contains("POPLATEK MESICNE"));
    }

    #[test]
    fn grounded_values_substitute_for_evidence() {
        let schema = schema();
        let gold = gold_sql();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(ModelProfile::gpt_4o());
        let grounded = vec![GroundedColumn::new(
            "account",
            "frequency",
            vec!["POPLATEK MESICNE".into(), "POPLATEK TYDNE".into()],
        )];
        let mut task = base_task(&schema, &gold, &atoms, None);
        task.grounded_values = &grounded;
        let out = model.generate_sql(&task);
        assert_eq!(out.resolved_atoms, 1, "grounded value should resolve the code");
    }

    #[test]
    fn no_information_usually_fails_on_value_codes() {
        let schema = schema();
        let gold = gold_sql();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(ModelProfile::gpt_4o_mini());
        let mut failures = 0;
        for i in 0..40 {
            let gold = gold.clone();
            let id = format!("q-{i}");
            let task = SqlGenTask { question_id: &id, ..base_task(&schema, &gold, &atoms, None) };
            let out = model.generate_sql(&task);
            if out.resolved_atoms == 0 {
                failures += 1;
            }
        }
        assert!(failures > 25, "value codes should rarely be guessed, failed {failures}/40");
    }

    #[test]
    fn outputs_are_deterministic() {
        let schema = schema();
        let gold = gold_sql();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(ModelProfile::deepseek_r1());
        let task = base_task(&schema, &gold, &atoms, None);
        let a = model.generate_sql(&task);
        let b = model.generate_sql(&task);
        assert_eq!(a, b);
    }

    #[test]
    fn different_samples_differ_sometimes() {
        let schema = schema();
        let gold = gold_sql();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(ModelProfile::chatgpt());
        let mut saw_difference = false;
        for i in 0..20 {
            let id = format!("s-{i}");
            let t0 = SqlGenTask {
                question_id: &id,
                sample_index: 0,
                ..base_task(&schema, &gold, &atoms, None)
            };
            let t1 = SqlGenTask {
                question_id: &id,
                sample_index: 1,
                ..base_task(&schema, &gold, &atoms, None)
            };
            if model.generate_sql(&t0).sql != model.generate_sql(&t1).sql {
                saw_difference = true;
                break;
            }
        }
        assert!(saw_difference, "self-consistency sampling needs output variance");
    }

    #[test]
    fn evidence_generation_uses_descriptions() {
        let schema = schema();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(ModelProfile::gpt_4o());
        let task = EvidenceGenTask {
            question_id: "q-1",
            question: "Among the weekly issuance accounts, how many have a loan under 200000?",
            schema: &schema,
            schema_subset: None,
            grounded_values: &[],
            few_shot: &[],
            atoms: &atoms,
            descriptions_available: true,
            qualified_style: true,
            join_hints: &[],
        };
        let out = model.generate_evidence(&task);
        assert!(out.resolved_atoms >= 1);
        assert!(out.evidence.contains("POPLATEK TYDNE"));
        assert!(out.evidence.contains("`account`.`frequency`"));
    }

    #[test]
    fn join_hints_appended_when_requested() {
        let schema = schema();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(ModelProfile::deepseek_r1());
        let hints = vec!["join on `loan`.`account_id` = `account`.`account_id`".to_string()];
        let task = EvidenceGenTask {
            question_id: "q-2",
            question: "Among the weekly issuance accounts, how many have a loan under 200000?",
            schema: &schema,
            schema_subset: None,
            grounded_values: &[],
            few_shot: &[],
            atoms: &atoms,
            descriptions_available: true,
            qualified_style: true,
            join_hints: &hints,
        };
        let out = model.generate_evidence(&task);
        if !out.evidence.is_empty() {
            assert!(out.evidence.contains("join on"));
        }
    }

    #[test]
    fn schema_summary_keeps_relevant_tables() {
        let schema = schema();
        let model = SimLlm::new(ModelProfile::deepseek_r1());
        let out = model.summarize_schema(&SchemaSummaryTask {
            question: "What is the total loan amount of weekly issuance accounts?",
            schema: &schema,
            max_tables: 2,
        });
        assert!(out.tables.len() <= 2);
        assert!(out.tables.iter().any(|t| t == "loan"));
    }

    #[test]
    fn keyword_extraction_links_to_columns() {
        let schema = schema();
        let model = SimLlm::new(ModelProfile::gpt_4o_mini());
        let keywords = model.extract_keywords(&KeywordExtractionTask {
            question: "What is the average loan amount of accounts with weekly frequency?",
            schema: &schema,
        });
        let amount_kw = keywords.iter().find(|k| k.keyword.to_lowercase() == "amount");
        assert!(amount_kw.is_some());
        assert!(amount_kw
            .unwrap()
            .candidate_columns
            .iter()
            .any(|(t, c)| t == "loan" && c == "amount"));
    }

    #[test]
    fn usage_counters_accumulate() {
        let schema = schema();
        let model = SimLlm::new(ModelProfile::gpt_4o());
        assert_eq!(model.usage().calls, 0);
        model.extract_keywords(&KeywordExtractionTask { question: "loans?", schema: &schema });
        model.summarize_schema(&SchemaSummaryTask {
            question: "loans?",
            schema: &schema,
            max_tables: 1,
        });
        let u = model.usage();
        assert_eq!(u.calls, 2);
        assert!(u.prompt_tokens > 0);
    }

    #[test]
    fn context_overflow_detected_for_small_windows() {
        let mut profile = ModelProfile::deepseek_r1();
        profile.context_window = 30; // absurdly small to force overflow
        let schema = schema();
        let gold = gold_sql();
        let atoms = vec![weekly_atom()];
        let model = SimLlm::new(profile);
        let task = base_task(&schema, &gold, &atoms, None);
        let out = model.generate_sql(&task);
        assert!(out.context_overflow);
    }
}
