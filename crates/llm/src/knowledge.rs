//! Knowledge atoms and evidence clauses.
//!
//! A *knowledge atom* is the unit of domain knowledge a question needs to be
//! translated correctly: a mapping from a surface phrase ("weekly issuance",
//! "female", "exceeded the normal range") to a concrete SQL condition
//! (`frequency = 'POPLATEK TYDNE'`, `gender = 'F'`, `HCT >= 52`). The BIRD
//! benchmark ships these mappings as human-written *evidence*; SEED generates
//! them automatically; and a model that lacks them falls back to a naive guess
//! that executes against the wrong rows.
//!
//! Evidence strings — whether human-written, defective, or SEED-generated —
//! are rendered from and parsed back into [`EvidenceClause`]s so the simulated
//! models follow whatever the evidence *says*, right or wrong.

use seed_sqlengine::Value;

/// A single SQL comparison that evidence can pin down.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlCondition {
    /// Table owning the column.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Comparison operator (`=`, `!=`, `>`, `>=`, `<`, `<=`, `LIKE`).
    pub op: String,
    /// Right-hand-side literal.
    pub value: Value,
}

impl SqlCondition {
    pub fn new(table: &str, column: &str, op: &str, value: impl Into<Value>) -> Self {
        SqlCondition {
            table: table.to_string(),
            column: column.to_string(),
            op: op.to_string(),
            value: value.into(),
        }
    }

    /// Renders the condition as it appears inside gold SQL, qualified with the
    /// table name: `` `account`.`frequency` = 'POPLATEK TYDNE' ``.
    pub fn to_sql(&self) -> String {
        format!("`{}`.`{}` {} {}", self.table, self.column, self.op, render_literal(&self.value))
    }

    /// Renders the condition without table qualification, the way most BIRD
    /// evidence writes it: `frequency = 'POPLATEK TYDNE'`.
    pub fn to_short_sql(&self) -> String {
        format!("{} {} {}", self.column, self.op, render_literal(&self.value))
    }
}

/// Renders a literal the way it appears in SQL text.
pub fn render_literal(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.render(),
    }
}

/// The BIRD taxonomy of external knowledge (paper §II-A), plus the defect
/// categories the audit in §I surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnowledgeKind {
    /// "female refers to gender = 'F'" — synonym knowledge.
    Synonym,
    /// "'POPLATEK TYDNE' stands for weekly issuance" — value illustration.
    ValueIllustration,
    /// "HCT >= 52 exceeds the normal range" — domain knowledge thresholds.
    DomainThreshold,
    /// Arithmetic recipes ("eligible free rate = Free Meal Count / Enrollment").
    NumericFormula,
    /// Choosing the right column among lookalikes (full_name vs superhero_name).
    SchemaChoice,
    /// Exact value casing ('Restricted' vs 'restricted').
    CaseSensitivity,
}

impl KnowledgeKind {
    /// All kinds, in a stable order (used by reports and defect injection).
    pub fn all() -> [KnowledgeKind; 6] {
        [
            KnowledgeKind::Synonym,
            KnowledgeKind::ValueIllustration,
            KnowledgeKind::DomainThreshold,
            KnowledgeKind::NumericFormula,
            KnowledgeKind::SchemaChoice,
            KnowledgeKind::CaseSensitivity,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            KnowledgeKind::Synonym => "synonym knowledge",
            KnowledgeKind::ValueIllustration => "value illustration",
            KnowledgeKind::DomainThreshold => "domain knowledge",
            KnowledgeKind::NumericFormula => "numeric reasoning",
            KnowledgeKind::SchemaChoice => "schema selection",
            KnowledgeKind::CaseSensitivity => "value casing",
        }
    }

    /// Probability that a competent model guesses the mapping correctly with
    /// *no* supporting information in the prompt. Synonyms like F/female are
    /// often guessable; database-specific codes essentially never are.
    pub fn unaided_guess_rate(&self) -> f64 {
        match self {
            KnowledgeKind::Synonym => 0.55,
            KnowledgeKind::ValueIllustration => 0.05,
            KnowledgeKind::DomainThreshold => 0.10,
            KnowledgeKind::NumericFormula => 0.35,
            KnowledgeKind::SchemaChoice => 0.45,
            KnowledgeKind::CaseSensitivity => 0.40,
        }
    }
}

/// One unit of knowledge a question requires.
#[derive(Debug, Clone, PartialEq)]
pub struct KnowledgeAtom {
    /// The surface phrase in the question ("weekly issuance accounts").
    pub phrase: String,
    /// Knowledge category.
    pub kind: KnowledgeKind,
    /// The correct grounding.
    pub correct: SqlCondition,
    /// What a model produces when it has to guess.
    pub naive: SqlCondition,
}

impl KnowledgeAtom {
    pub fn new(
        phrase: &str,
        kind: KnowledgeKind,
        correct: SqlCondition,
        naive: SqlCondition,
    ) -> Self {
        KnowledgeAtom { phrase: phrase.to_string(), kind, correct, naive }
    }

    /// Canonical BIRD-style evidence sentence for this atom.
    pub fn evidence_sentence(&self) -> String {
        format!("{} refers to {}", self.phrase, self.correct.to_short_sql())
    }

    /// SEED_deepseek-style evidence sentence: fully qualified with backticks.
    pub fn qualified_evidence_sentence(&self) -> String {
        format!("{} refers to {}", self.phrase, self.correct.to_sql())
    }
}

/// A parsed evidence clause: a phrase plus the condition the evidence asserts.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceClause {
    pub phrase: String,
    pub condition: SqlCondition,
}

/// Parses evidence text into clauses.
///
/// Accepted shapes (both BIRD's and SEED's renderings):
/// * `<phrase> refers to <column> <op> <literal>`
/// * `<phrase> refers to <table>.<column> <op> <literal>` (with or without backticks)
/// * `<phrase> means that <column> <op> <literal>`
/// * `<literal> stands for <phrase>` → recorded with an empty column (pure value illustration)
///
/// Clauses are separated by `;` or newlines. Anything unparseable is skipped,
/// which mirrors how a model simply ignores evidence it cannot use.
pub fn parse_evidence_clauses(text: &str) -> Vec<EvidenceClause> {
    let mut out = Vec::new();
    for raw in text.split([';', '\n']) {
        let sentence = raw.trim();
        if sentence.is_empty() {
            continue;
        }
        let lowered = sentence.to_lowercase();
        let (phrase, rest) = if let Some(pos) = lowered.find(" refers to ") {
            (&sentence[..pos], &sentence[pos + " refers to ".len()..])
        } else if let Some(pos) = lowered.find(" means that ") {
            (&sentence[..pos], &sentence[pos + " means that ".len()..])
        } else if let Some(pos) = lowered.find(" means ") {
            (&sentence[..pos], &sentence[pos + " means ".len()..])
        } else if let Some(pos) = lowered.find(" stands for ") {
            // "'POPLATEK TYDNE' stands for weekly issuance"
            let value_part = sentence[..pos].trim().trim_matches(|c| c == '"' || c == '\'');
            let phrase_part = sentence[pos + " stands for ".len()..].trim();
            out.push(EvidenceClause {
                phrase: phrase_part.to_string(),
                condition: SqlCondition::new("", "", "=", value_part),
            });
            continue;
        } else {
            continue;
        };
        if let Some(cond) = parse_condition(rest.trim()) {
            out.push(EvidenceClause { phrase: phrase.trim().to_string(), condition: cond });
        }
    }
    out
}

/// Parses a `<ref> <op> <literal>` fragment where `<ref>` may be
/// `` `table`.`column` ``, `table.column`, or `column`.
fn parse_condition(text: &str) -> Option<SqlCondition> {
    // Find the operator (longest first).
    let ops = [">=", "<=", "!=", "<>", "> =", "< =", "=", ">", "<", " LIKE ", " like "];
    let mut found: Option<(usize, &str)> = None;
    for op in ops {
        if let Some(pos) = text.find(op) {
            match found {
                Some((p, _)) if p <= pos => {}
                _ => found = Some((pos, op)),
            }
        }
    }
    let (pos, op_raw) = found?;
    let lhs = text[..pos].trim();
    let rhs = text[pos + op_raw.len()..].trim();
    if lhs.is_empty() || rhs.is_empty() {
        return None;
    }
    let op = match op_raw.trim() {
        "> =" => ">=".to_string(),
        "< =" => "<=".to_string(),
        "<>" => "!=".to_string(),
        other => other.to_ascii_uppercase(),
    };
    // Split table.column if present.
    let cleaned = lhs.replace('`', "");
    let (table, column) = match cleaned.rsplit_once('.') {
        Some((t, c)) => (t.trim().to_string(), c.trim().to_string()),
        None => (String::new(), cleaned.trim().to_string()),
    };
    // Literal: quoted string or number; ignore trailing commentary.
    let value = parse_literal(rhs)?;
    Some(SqlCondition { table, column, op, value })
}

fn parse_literal(text: &str) -> Option<Value> {
    let t = text.trim();
    if let Some(stripped) = t.strip_prefix('\'') {
        let end = stripped.find('\'')?;
        return Some(Value::Text(stripped[..end].to_string()));
    }
    if let Some(stripped) = t.strip_prefix('"') {
        let end = stripped.find('"')?;
        return Some(Value::Text(stripped[..end].to_string()));
    }
    // numeric prefix
    let num: String =
        t.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    if num.is_empty() {
        // bare word literal (e.g. frequency = POPLATEK) — take the first word
        let word = t.split_whitespace().next()?;
        return Some(Value::Text(word.trim_matches(|c| c == ',' || c == '.').to_string()));
    }
    if num.contains('.') {
        num.parse::<f64>().ok().map(Value::Real)
    } else {
        num.parse::<i64>().ok().map(Value::Integer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom() -> KnowledgeAtom {
        KnowledgeAtom::new(
            "weekly issuance",
            KnowledgeKind::ValueIllustration,
            SqlCondition::new("account", "frequency", "=", "POPLATEK TYDNE"),
            SqlCondition::new("account", "frequency", "=", "weekly"),
        )
    }

    #[test]
    fn condition_rendering() {
        let c = SqlCondition::new("satscores", "NumTstTakr", ">", 500);
        assert_eq!(c.to_sql(), "`satscores`.`NumTstTakr` > 500");
        assert_eq!(c.to_short_sql(), "NumTstTakr > 500");
        let c = SqlCondition::new("client", "gender", "=", "F");
        assert_eq!(c.to_short_sql(), "gender = 'F'");
    }

    #[test]
    fn evidence_sentence_round_trips_through_parser() {
        let a = atom();
        let clauses = parse_evidence_clauses(&a.evidence_sentence());
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].phrase, "weekly issuance");
        assert_eq!(clauses[0].condition.column, "frequency");
        assert_eq!(clauses[0].condition.value, Value::text("POPLATEK TYDNE"));

        let clauses = parse_evidence_clauses(&a.qualified_evidence_sentence());
        assert_eq!(clauses[0].condition.table, "account");
    }

    #[test]
    fn parses_multiple_clauses_and_skips_noise() {
        let text = "restricted refers to status = 'Restricted'; have text boxes refers to isTextless = 0; \
                    this sentence has no mapping";
        let clauses = parse_evidence_clauses(text);
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[1].condition.value, Value::Integer(0));
    }

    #[test]
    fn parses_bird_spacing_quirk() {
        // BIRD evidence sometimes writes "> =" with a space (Table I example).
        let clauses = parse_evidence_clauses(
            "hematoclit level exceeded the normal range refers to HCT > = 52",
        );
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].condition.op, ">=");
        assert_eq!(clauses[0].condition.value, Value::Integer(52));
    }

    #[test]
    fn parses_stands_for_form() {
        let clauses = parse_evidence_clauses("\"POPLATEK TYDNE\" stands for weekly issuance");
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].phrase, "weekly issuance");
        assert_eq!(clauses[0].condition.value, Value::text("POPLATEK TYDNE"));
    }

    #[test]
    fn unparseable_text_yields_nothing() {
        assert!(parse_evidence_clauses("completely free-form domain commentary").is_empty());
        assert!(parse_evidence_clauses("").is_empty());
    }

    #[test]
    fn guess_rates_ordered_sensibly() {
        assert!(
            KnowledgeKind::Synonym.unaided_guess_rate()
                > KnowledgeKind::ValueIllustration.unaided_guess_rate()
        );
        for k in KnowledgeKind::all() {
            assert!((0.0..=1.0).contains(&k.unaided_guess_rate()));
            assert!(!k.label().is_empty());
        }
    }
}
