//! Structured task descriptions exchanged with the simulated language model.
//!
//! The original SEED system sends free-form prompts to hosted LLMs. The
//! reproduction keeps every prompt-assembly code path (see [`crate::prompt`])
//! but gives the simulator structured access to the same information so its
//! behaviour can be made deterministic and mechanistic: what the simulated
//! model can resolve is gated on what is *textually present* in the prompt
//! (evidence, grounded values, description lines), and the question's latent
//! [`crate::knowledge::KnowledgeAtom`]s act as the intent oracle it is judged
//! against. See DESIGN.md §2 for the substitution argument.

use seed_sqlengine::DatabaseSchema;

use crate::knowledge::KnowledgeAtom;
use crate::prompt::{FewShotExample, GroundedColumn};

/// A request to translate a question into SQL.
#[derive(Debug, Clone)]
pub struct SqlGenTask<'a> {
    /// Stable question identifier (seeds the per-question RNG stream).
    pub question_id: &'a str,
    /// The natural-language question.
    pub question: &'a str,
    /// Full database schema.
    pub schema: &'a DatabaseSchema,
    /// If schema linking/pruning was applied, the tables kept in the prompt.
    pub schema_subset: Option<&'a [String]>,
    /// Evidence text included in the prompt (BIRD, SEED, or none).
    pub evidence: Option<&'a str>,
    /// Whether BIRD-style column/value description lines are in the prompt.
    pub descriptions_in_prompt: bool,
    /// Values retrieved into the prompt by the calling system.
    pub grounded_values: &'a [GroundedColumn],
    /// Few-shot examples in the prompt.
    pub few_shot: &'a [FewShotExample],
    /// The question's latent knowledge requirements.
    pub atoms: &'a [KnowledgeAtom],
    /// The reference (gold) SQL — the query a fully informed expert writes.
    pub gold_sql: &'a str,
    /// Structural difficulty of the question in `[0, 1]`.
    pub difficulty: f64,
    /// C3-style calibration hints present in the prompt.
    pub calibration_hints: bool,
    /// Which self-consistency sample this is (different samples draw different
    /// noise from the RNG stream).
    pub sample_index: u32,
}

/// The simulated model's answer to a [`SqlGenTask`].
#[derive(Debug, Clone, PartialEq)]
pub struct SqlGenOutput {
    /// The generated SQL text.
    pub sql: String,
    /// Prompt size in tokens.
    pub prompt_tokens: usize,
    /// Whether the prompt exceeded the model's context window.
    pub context_overflow: bool,
    /// Number of knowledge atoms resolved to their correct grounding.
    pub resolved_atoms: usize,
    /// Whether a structural error was injected.
    pub structural_error: bool,
}

/// A request to generate evidence for a question (SEED's final stage).
#[derive(Debug, Clone)]
pub struct EvidenceGenTask<'a> {
    pub question_id: &'a str,
    pub question: &'a str,
    pub schema: &'a DatabaseSchema,
    /// Tables kept after schema summarization (SEED_deepseek) or `None` for
    /// the full schema (SEED_gpt).
    pub schema_subset: Option<&'a [String]>,
    /// Values surfaced by the sample-SQL execution stage.
    pub grounded_values: &'a [GroundedColumn],
    /// Few-shot evidence examples selected from the training set.
    pub few_shot: &'a [FewShotExample],
    /// The question's latent knowledge requirements.
    pub atoms: &'a [KnowledgeAtom],
    /// Whether description files are available for this database (Spider does
    /// not ship them; the paper synthesizes them with DeepSeek-V3).
    pub descriptions_available: bool,
    /// Render clauses fully qualified (`` `table`.`column` ``) as
    /// SEED_deepseek does, or unqualified like BIRD evidence.
    pub qualified_style: bool,
    /// Join hints ("join on `a`.`x` = `b`.`y`") to append, the SEED_deepseek
    /// behaviour that Table VI/VII analyse.
    pub join_hints: &'a [String],
}

/// Evidence produced by the simulated model.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceGenOutput {
    /// The evidence text (possibly empty when nothing could be grounded).
    pub evidence: String,
    /// Prompt size in tokens.
    pub prompt_tokens: usize,
    /// Whether the prompt exceeded the model's context window.
    pub context_overflow: bool,
    /// Atoms grounded correctly.
    pub resolved_atoms: usize,
    /// Atoms emitted with an incorrect grounding.
    pub incorrect_atoms: usize,
}

/// A request to summarize (prune) a schema for a question.
#[derive(Debug, Clone)]
pub struct SchemaSummaryTask<'a> {
    pub question: &'a str,
    pub schema: &'a DatabaseSchema,
    /// Maximum number of tables to keep.
    pub max_tables: usize,
}

/// Result of schema summarization.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaSummaryOutput {
    /// Names of the kept tables.
    pub tables: Vec<String>,
    /// Prompt size in tokens.
    pub prompt_tokens: usize,
}

/// A request to extract column/value keywords from a question (the first step
/// of SEED's sample-SQL stage).
#[derive(Debug, Clone)]
pub struct KeywordExtractionTask<'a> {
    pub question: &'a str,
    pub schema: &'a DatabaseSchema,
}

/// A keyword paired with the columns it plausibly refers to.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedKeyword {
    /// The keyword or phrase from the question.
    pub keyword: String,
    /// Candidate (table, column) pairs it may refer to, best first.
    pub candidate_columns: Vec<(String, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracted_keyword_is_plain_data() {
        let k = ExtractedKeyword {
            keyword: "Fremont".to_string(),
            candidate_columns: vec![("schools".to_string(), "City".to_string())],
        };
        assert_eq!(k.candidate_columns.len(), 1);
        let k2 = k.clone();
        assert_eq!(k, k2);
    }

    #[test]
    fn outputs_compare_by_value() {
        let a = SqlGenOutput {
            sql: "SELECT 1".into(),
            prompt_tokens: 10,
            context_overflow: false,
            resolved_atoms: 0,
            structural_error: false,
        };
        assert_eq!(a, a.clone());
    }
}
