//! Prompt assembly.
//!
//! Every simulated LLM call builds an actual textual prompt (instruction,
//! schema DDL, description lines, few-shot examples, sample-SQL results,
//! evidence, question) so that token budgeting — the mechanism that forces
//! SEED_deepseek to summarize schemas — is exercised for real.

use seed_sqlengine::DatabaseSchema;

use crate::token::count_tokens;

/// One few-shot example embedded in a prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct FewShotExample {
    pub question: String,
    pub evidence: String,
    pub sql: String,
}

/// Values retrieved for a (table, column) pair and embedded in the prompt,
/// either by a baseline's value retriever or by SEED's sample-SQL stage.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundedColumn {
    pub table: String,
    pub column: String,
    pub values: Vec<String>,
}

impl GroundedColumn {
    pub fn new(table: &str, column: &str, values: Vec<String>) -> Self {
        GroundedColumn { table: table.to_string(), column: column.to_string(), values }
    }
}

/// Incrementally builds a prompt and tracks its token count.
#[derive(Debug, Default, Clone)]
pub struct PromptBuilder {
    sections: Vec<(String, String)>,
}

impl PromptBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named section with free-form body text.
    pub fn section(mut self, title: &str, body: impl Into<String>) -> Self {
        self.sections.push((title.to_string(), body.into()));
        self
    }

    /// Adds the schema DDL, optionally restricted to a subset of tables and
    /// optionally including the BIRD-style column/value descriptions.
    pub fn schema(
        mut self,
        schema: &DatabaseSchema,
        keep_tables: Option<&[String]>,
        include_descriptions: bool,
    ) -> Self {
        let mut body = String::new();
        for table in &schema.tables {
            if let Some(keep) = keep_tables {
                if !keep.iter().any(|k| k.eq_ignore_ascii_case(&table.name)) {
                    continue;
                }
            }
            body.push_str(&table.to_create_sql());
            body.push_str(";\n");
            if include_descriptions {
                for col in &table.columns {
                    if !col.description.is_empty() || !col.value_description.is_empty() {
                        body.push_str(&format!(
                            "-- {}.{}: {} {}\n",
                            table.name, col.name, col.description, col.value_description
                        ));
                    }
                }
            }
        }
        for fk in &schema.foreign_keys {
            let keep = keep_tables.is_none_or(|k| {
                k.iter().any(|t| t.eq_ignore_ascii_case(&fk.from_table))
                    && k.iter().any(|t| t.eq_ignore_ascii_case(&fk.to_table))
            });
            if keep {
                body.push_str(&format!(
                    "-- {}.{} references {}.{}\n",
                    fk.from_table, fk.from_column, fk.to_table, fk.to_column
                ));
            }
        }
        self.sections.push(("Database schema".to_string(), body));
        self
    }

    /// Adds few-shot examples.
    pub fn examples(mut self, examples: &[FewShotExample]) -> Self {
        if examples.is_empty() {
            return self;
        }
        let mut body = String::new();
        for ex in examples {
            body.push_str(&format!(
                "Question: {}\nEvidence: {}\nSQL: {}\n\n",
                ex.question, ex.evidence, ex.sql
            ));
        }
        self.sections.push(("Examples".to_string(), body));
        self
    }

    /// Adds sample-SQL execution results / retrieved values.
    pub fn grounded_values(mut self, grounded: &[GroundedColumn]) -> Self {
        if grounded.is_empty() {
            return self;
        }
        let mut body = String::new();
        for g in grounded {
            body.push_str(&format!(
                "SELECT DISTINCT `{}` FROM `{}` -> [{}]\n",
                g.column,
                g.table,
                g.values.join(", ")
            ));
        }
        self.sections.push(("Sample values".to_string(), body));
        self
    }

    /// Adds the evidence section if any evidence is supplied.
    pub fn evidence(mut self, evidence: Option<&str>) -> Self {
        if let Some(e) = evidence {
            if !e.trim().is_empty() {
                self.sections.push(("Evidence".to_string(), e.to_string()));
            }
        }
        self
    }

    /// Adds the user question.
    pub fn question(mut self, question: &str) -> Self {
        self.sections.push(("Question".to_string(), question.to_string()));
        self
    }

    /// Renders the prompt text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, body) in &self.sections {
            out.push_str("### ");
            out.push_str(title);
            out.push('\n');
            out.push_str(body);
            out.push_str("\n\n");
        }
        out
    }

    /// Token count of the rendered prompt.
    pub fn token_count(&self) -> usize {
        count_tokens(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{ColumnDef, DataType, TableSchema};

    fn schema() -> DatabaseSchema {
        let mut s = DatabaseSchema::new("financial");
        s.add_table(TableSchema::new(
            "account",
            vec![
                ColumnDef::new("account_id", DataType::Integer).primary_key(),
                ColumnDef::new("frequency", DataType::Text)
                    .described("frequency of issuance")
                    .with_values("\"POPLATEK TYDNE\" stands for weekly issuance"),
            ],
        ))
        .unwrap();
        s.add_table(TableSchema::new(
            "loan",
            vec![ColumnDef::new("loan_id", DataType::Integer).primary_key()],
        ))
        .unwrap();
        s
    }

    #[test]
    fn renders_all_sections_in_order() {
        let p = PromptBuilder::new()
            .section("Instruction", "Generate evidence.")
            .schema(&schema(), None, true)
            .evidence(Some("weekly refers to frequency = 'POPLATEK TYDNE'"))
            .question("How many weekly issuance accounts are there?");
        let text = p.render();
        let i_pos = text.find("Instruction").unwrap();
        let s_pos = text.find("Database schema").unwrap();
        let e_pos = text.find("Evidence").unwrap();
        let q_pos = text.find("Question").unwrap();
        assert!(i_pos < s_pos && s_pos < e_pos && e_pos < q_pos);
        assert!(text.contains("POPLATEK TYDNE"));
    }

    #[test]
    fn table_filtering_excludes_pruned_tables() {
        let keep = vec!["account".to_string()];
        let p = PromptBuilder::new().schema(&schema(), Some(&keep), false);
        let text = p.render();
        assert!(text.contains("CREATE TABLE `account`"));
        assert!(!text.contains("CREATE TABLE `loan`"));
    }

    #[test]
    fn descriptions_toggle_changes_token_count() {
        let with = PromptBuilder::new().schema(&schema(), None, true).token_count();
        let without = PromptBuilder::new().schema(&schema(), None, false).token_count();
        assert!(with > without);
    }

    #[test]
    fn empty_evidence_and_examples_add_nothing() {
        let base = PromptBuilder::new().question("q").render();
        let same = PromptBuilder::new()
            .evidence(None)
            .examples(&[])
            .grounded_values(&[])
            .question("q")
            .render();
        assert_eq!(base, same);
    }

    #[test]
    fn grounded_values_render_as_probe_results() {
        let p = PromptBuilder::new().grounded_values(&[GroundedColumn::new(
            "account",
            "frequency",
            vec!["POPLATEK MESICNE".into(), "POPLATEK TYDNE".into()],
        )]);
        assert!(p.render().contains("SELECT DISTINCT `frequency` FROM `account`"));
    }
}
