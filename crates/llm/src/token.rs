//! Approximate token counting.
//!
//! The reproduction does not ship a BPE vocabulary; prompts are budgeted with
//! a word/punctuation heuristic (≈1.3 tokens per word) that tracks the order
//! of magnitude of GPT/DeepSeek tokenizers closely enough to reproduce the
//! context-window pressure that motivates SEED's schema-summarization stage.

/// Estimates the number of tokens in a text.
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    let mut in_word = false;
    let mut word_len = 0usize;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            if !in_word {
                in_word = true;
                word_len = 0;
            }
            word_len += 1;
            // long identifiers split into multiple subword tokens
            if word_len == 6 {
                tokens += 1;
                word_len = 0;
            }
        } else {
            if in_word {
                tokens += 1;
                in_word = false;
            }
            if !ch.is_whitespace() {
                tokens += 1; // punctuation is roughly one token each
            }
        }
    }
    if in_word {
        tokens += 1;
    }
    tokens
}

/// Truncates a text to approximately `max_tokens`, cutting at a whitespace
/// boundary. Returns the (possibly shortened) text and whether truncation
/// happened.
pub fn truncate_to_tokens(text: &str, max_tokens: usize) -> (String, bool) {
    if count_tokens(text) <= max_tokens {
        return (text.to_string(), false);
    }
    let mut out = String::new();
    for word in text.split_inclusive(char::is_whitespace) {
        if count_tokens(&out) + count_tokens(word) > max_tokens {
            break;
        }
        out.push_str(word);
    }
    (out, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_has_zero_tokens() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   "), 0);
    }

    #[test]
    fn words_and_punctuation_counted() {
        let n = count_tokens("SELECT COUNT(*) FROM client WHERE gender = 'F'");
        assert!((10..=25).contains(&n), "got {n}");
    }

    #[test]
    fn count_scales_with_length() {
        let short = count_tokens("weekly issuance accounts");
        let long = count_tokens(&"weekly issuance accounts ".repeat(50));
        assert!(long > short * 40);
    }

    #[test]
    fn truncation_respects_budget() {
        let text = "alpha beta gamma delta ".repeat(100);
        let (cut, truncated) = truncate_to_tokens(&text, 50);
        assert!(truncated);
        assert!(count_tokens(&cut) <= 50);
        let (same, t2) = truncate_to_tokens("short text", 50);
        assert!(!t2);
        assert_eq!(same, "short text");
    }
}
