//! # seed-datasets
//!
//! Deterministic synthetic corpora standing in for the BIRD and Spider
//! benchmarks (which ship 33.4 GB of SQLite databases the reproduction cannot
//! redistribute). Each corpus bundles:
//!
//! * populated in-memory databases ([`seed_sqlengine::Database`]) whose values
//!   contain the kinds of coded values, synonyms, thresholds, and casing traps
//!   that make external evidence matter (POPLATEK issuance codes, F/M genders,
//!   `Restricted` legality casing, laboratory normal ranges, ...);
//! * BIRD-style description files attached to the schema (column descriptions
//!   and value descriptions);
//! * questions with gold SQL, latent [`seed_llm::KnowledgeAtom`]s, and — for
//!   BIRD — human evidence into which the defect distribution measured by the
//!   paper (9.65 % missing, 6.84 % erroneous) is injected;
//! * train/dev(/test) splits.

pub mod bird;
pub mod domains;
pub mod evidence;
pub mod spider;
pub mod template;

use seed_llm::KnowledgeAtom;
use seed_sqlengine::Database;

pub use evidence::{EvidenceErrorType, EvidenceRecord, EvidenceStatus};

/// Which split a question belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    Train,
    Dev,
    Test,
}

/// A benchmark question: natural-language text, gold SQL, the latent knowledge
/// it requires, and (for BIRD) the human-provided evidence.
#[derive(Debug, Clone)]
pub struct Question {
    /// Stable identifier, e.g. `"financial-0007"`.
    pub id: String,
    /// Database the question targets.
    pub db_id: String,
    /// The natural-language question.
    pub text: String,
    /// Gold SQL (executes on the corpus database).
    pub gold_sql: String,
    /// Latent knowledge requirements.
    pub atoms: Vec<KnowledgeAtom>,
    /// Structural difficulty in `[0, 1]` (joins, grouping, nesting).
    pub difficulty: f64,
    /// Human evidence as shipped by the benchmark (BIRD only; empty record for Spider).
    pub human_evidence: EvidenceRecord,
    /// Split assignment.
    pub split: Split,
}

impl Question {
    /// The perfect evidence for this question: one canonical sentence per atom.
    pub fn oracle_evidence(&self) -> String {
        self.atoms.iter().map(|a| a.evidence_sentence()).collect::<Vec<_>>().join("; ")
    }
}

/// A full benchmark: databases plus questions plus metadata.
#[derive(Debug)]
pub struct Benchmark {
    /// `"bird"` or `"spider"`.
    pub name: String,
    /// Populated databases.
    pub databases: Vec<Database>,
    /// All questions across splits.
    pub questions: Vec<Question>,
    /// Whether the benchmark ships description files (BIRD does, Spider does not).
    pub has_descriptions: bool,
}

impl Benchmark {
    /// Looks a database up by id.
    pub fn database(&self, db_id: &str) -> Option<&Database> {
        self.databases.iter().find(|d| d.name() == db_id)
    }

    /// Questions belonging to a split.
    pub fn split(&self, split: Split) -> Vec<&Question> {
        self.questions.iter().filter(|q| q.split == split).collect()
    }

    /// Questions of a split restricted to one database.
    pub fn split_for_db(&self, split: Split, db_id: &str) -> Vec<&Question> {
        self.questions.iter().filter(|q| q.split == split && q.db_id == db_id).collect()
    }
}

/// Corpus-size knobs. `scale` multiplies both row counts and the number of
/// question-template instantiations so tests can run on a miniature corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Size multiplier in `(0, 1]`.
    pub scale: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { scale: 1.0, seed: 0x5eed }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        CorpusConfig { scale: 0.25, seed: 0x5eed }
    }

    /// Scales an integer quantity, keeping at least `min`.
    pub fn scaled(&self, n: usize, min: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_config_scaling() {
        let c = CorpusConfig { scale: 0.5, seed: 1 };
        assert_eq!(c.scaled(100, 1), 50);
        assert_eq!(c.scaled(1, 3), 3);
        assert_eq!(CorpusConfig::default().scaled(40, 1), 40);
    }

    #[test]
    fn oracle_evidence_joins_atom_sentences() {
        use seed_llm::{KnowledgeKind, SqlCondition};
        let q = Question {
            id: "x-1".into(),
            db_id: "financial".into(),
            text: "How many female clients are there?".into(),
            gold_sql: "SELECT COUNT(*) FROM client".into(),
            atoms: vec![KnowledgeAtom::new(
                "female",
                KnowledgeKind::Synonym,
                SqlCondition::new("client", "gender", "=", "F"),
                SqlCondition::new("client", "gender", "=", "female"),
            )],
            difficulty: 0.1,
            human_evidence: EvidenceRecord::correct("female refers to gender = 'F'"),
            split: Split::Dev,
        };
        assert_eq!(q.oracle_evidence(), "female refers to gender = 'F'");
    }
}
