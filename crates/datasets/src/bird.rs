//! Assembly of the BIRD-like corpus: six description-rich domains, train/dev
//! splits, and human evidence with the paper's defect distribution injected
//! into the dev split.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::domains::{bird_domains, DomainData};
use crate::evidence::{
    corrupt_evidence, EvidenceErrorType, EvidenceRecord, EvidenceStatus, ERRONEOUS_RATE,
    MISSING_RATE,
};
use crate::{Benchmark, CorpusConfig, Question, Split};

/// Builds the BIRD-like benchmark.
///
/// Question-template instantiations are interleaved into train and dev splits
/// (1 in 3 goes to train) so that every database has train questions available
/// for SEED's few-shot selection, exactly as the real BIRD train set does.
/// Defects are injected into the dev split's human evidence by quota so the
/// corpus-level rates match the paper's audit (9.65 % missing, 6.84 %
/// erroneous) even on a corpus of a few hundred questions.
pub fn build_bird(config: &CorpusConfig) -> Benchmark {
    let mut databases = Vec::new();
    let mut questions = Vec::new();

    for (name, builder) in bird_domains() {
        let DomainData { database, questions: raw } = builder(config);
        databases.push(database);
        for (i, rq) in raw.into_iter().enumerate() {
            let split = if i % 3 == 2 { Split::Train } else { Split::Dev };
            let human_evidence = EvidenceRecord::correct(
                rq.atoms.iter().map(|a| a.evidence_sentence()).collect::<Vec<_>>().join("; "),
            );
            questions.push(Question {
                id: format!("{name}-{i:04}"),
                db_id: name.to_string(),
                text: rq.text,
                gold_sql: rq.gold_sql,
                atoms: rq.atoms,
                difficulty: rq.difficulty,
                human_evidence,
                split,
            });
        }
    }

    inject_dev_defects(&mut questions, config.seed ^ 0xb14d);

    Benchmark { name: "bird".to_string(), databases, questions, has_descriptions: true }
}

/// Marks a quota of dev questions as missing or erroneous, matching the
/// paper's measured rates as closely as integer counts allow.
fn inject_dev_defects(questions: &mut [Question], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dev_with_atoms: Vec<usize> = questions
        .iter()
        .enumerate()
        .filter(|(_, q)| q.split == Split::Dev && !q.atoms.is_empty())
        .map(|(i, _)| i)
        .collect();
    dev_with_atoms.shuffle(&mut rng);
    let n = dev_with_atoms.len();
    let n_missing = (n as f64 * MISSING_RATE).round() as usize;
    let n_erroneous = (n as f64 * ERRONEOUS_RATE).round() as usize;

    for (k, &idx) in dev_with_atoms.iter().enumerate() {
        let q = &mut questions[idx];
        if k < n_missing {
            q.human_evidence.text = String::new();
            q.human_evidence.status = EvidenceStatus::Missing;
        } else if k < n_missing + n_erroneous {
            let error = EvidenceErrorType::all()[rng.gen_range(0..8usize)];
            q.human_evidence.text = corrupt_evidence(&q.atoms, error, &mut rng);
            q.human_evidence.status = EvidenceStatus::Erroneous(error);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStatus;
    use seed_sqlengine::execute;

    #[test]
    fn bird_has_six_databases_and_both_splits() {
        let b = build_bird(&CorpusConfig::tiny());
        assert_eq!(b.databases.len(), 6);
        assert!(b.has_descriptions);
        assert!(!b.split(Split::Train).is_empty());
        assert!(!b.split(Split::Dev).is_empty());
        assert!(b.split(Split::Dev).len() > b.split(Split::Train).len());
    }

    #[test]
    fn every_dev_question_gold_sql_executes() {
        let b = build_bird(&CorpusConfig::tiny());
        for q in b.split(Split::Dev) {
            let db = b.database(&q.db_id).expect("database exists");
            assert!(
                execute(db, &q.gold_sql).is_ok(),
                "gold SQL failed for {}: {}",
                q.id,
                q.gold_sql
            );
        }
    }

    #[test]
    fn dev_split_contains_defective_evidence() {
        let b = build_bird(&CorpusConfig::default());
        let dev = b.split(Split::Dev);
        let missing = dev
            .iter()
            .filter(|q| !q.atoms.is_empty() && q.human_evidence.status == EvidenceStatus::Missing)
            .count();
        let erroneous = dev
            .iter()
            .filter(|q| matches!(q.human_evidence.status, EvidenceStatus::Erroneous(_)))
            .count();
        assert!(missing > 0, "some dev evidence must be missing");
        assert!(erroneous > 0, "some dev evidence must be erroneous");
    }

    #[test]
    fn train_evidence_is_always_correct() {
        let b = build_bird(&CorpusConfig::tiny());
        for q in b.split(Split::Train) {
            assert_eq!(q.human_evidence.status, EvidenceStatus::Correct);
        }
    }

    #[test]
    fn question_ids_are_unique() {
        let b = build_bird(&CorpusConfig::tiny());
        let mut ids: Vec<&str> = b.questions.iter().map(|q| q.id.as_str()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_bird(&CorpusConfig::tiny());
        let b = build_bird(&CorpusConfig::tiny());
        assert_eq!(a.questions.len(), b.questions.len());
        for (x, y) in a.questions.iter().zip(&b.questions) {
            assert_eq!(x.gold_sql, y.gold_sql);
            assert_eq!(x.human_evidence.text, y.human_evidence.text);
        }
    }
}
