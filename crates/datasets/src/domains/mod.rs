//! Synthetic database domains.
//!
//! Each domain module builds one populated database modelled on a BIRD or
//! Spider database family, plus the question templates that target it. The
//! BIRD-style domains attach description-file metadata to the schema; the
//! Spider-style domains (concert_singer, pets) do not, matching the paper's
//! observation that Spider ships no description files.

pub mod card_games;
pub mod concert_singer;
pub mod financial;
pub mod pets;
pub mod schools;
pub mod superhero;
pub mod thrombosis;
pub mod toxicology;

use rand::rngs::StdRng;
use rand::SeedableRng;

use seed_sqlengine::Database;

use crate::template::RawQuestion;
use crate::CorpusConfig;

/// A built domain: its populated database and its raw questions.
#[derive(Debug)]
pub struct DomainData {
    pub database: Database,
    pub questions: Vec<RawQuestion>,
}

/// Signature every domain builder exposes.
pub type DomainBuilder = fn(&CorpusConfig) -> DomainData;

/// The BIRD-style domains, in a stable order.
pub fn bird_domains() -> Vec<(&'static str, DomainBuilder)> {
    vec![
        ("california_schools", schools::build as DomainBuilder),
        ("financial", financial::build),
        ("card_games", card_games::build),
        ("superhero", superhero::build),
        ("toxicology", toxicology::build),
        ("thrombosis_prediction", thrombosis::build),
    ]
}

/// The Spider-style domains, in a stable order.
pub fn spider_domains() -> Vec<(&'static str, DomainBuilder)> {
    vec![("concert_singer", concert_singer::build as DomainBuilder), ("pets_1", pets::build)]
}

/// Deterministic RNG for a domain, derived from the corpus seed and a tag.
pub(crate) fn domain_rng(config: &CorpusConfig, tag: u64) -> StdRng {
    StdRng::seed_from_u64(config.seed ^ tag.wrapping_mul(0x9e3779b97f4a7c15))
}

/// Samples an index according to the given weights.
pub(crate) fn weighted_index(rng: &mut impl rand::Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::execute;

    /// Every domain must produce a non-empty database and questions whose gold
    /// SQL parses, executes, and embeds its atoms' canonical conditions.
    #[test]
    fn all_domains_are_internally_consistent() {
        let config = CorpusConfig::tiny();
        let all: Vec<(&str, DomainBuilder)> =
            bird_domains().into_iter().chain(spider_domains()).collect();
        for (name, build) in all {
            let data = build(&config);
            assert_eq!(data.database.name(), name);
            assert!(data.database.total_rows() > 10, "{name} has too few rows");
            assert!(data.questions.len() >= 8, "{name} has too few questions");
            for q in &data.questions {
                let res = execute(&data.database, &q.gold_sql);
                assert!(res.is_ok(), "{name}: gold SQL failed: {} -> {:?}", q.gold_sql, res.err());
                for atom in &q.atoms {
                    assert!(
                        q.gold_sql.contains(&atom.correct.to_sql()),
                        "{name}: gold SQL missing canonical condition for '{}'",
                        atom.phrase
                    );
                    assert!(
                        q.text.to_lowercase().contains(&atom.phrase.to_lowercase()),
                        "{name}: question text missing atom phrase '{}' ({})",
                        atom.phrase,
                        q.text
                    );
                }
            }
        }
    }

    /// Most questions with knowledge atoms must give a *different* result when
    /// the naive condition replaces the correct one — otherwise evidence could
    /// not matter.
    #[test]
    fn naive_conditions_change_answers_for_most_questions() {
        let config = CorpusConfig::tiny();
        let mut differing = 0usize;
        let mut total = 0usize;
        for (_, build) in bird_domains() {
            let data = build(&config);
            for q in &data.questions {
                if q.atoms.is_empty() {
                    continue;
                }
                total += 1;
                let gold = execute(&data.database, &q.gold_sql).unwrap();
                let mut naive_sql = q.gold_sql.clone();
                for a in &q.atoms {
                    naive_sql = naive_sql.replace(&a.correct.to_sql(), &a.naive.to_sql());
                }
                let naive = execute(&data.database, &naive_sql);
                let same = match naive {
                    Ok(rs) => rs.result_eq(&gold),
                    Err(_) => false,
                };
                if !same {
                    differing += 1;
                }
            }
        }
        assert!(total > 20);
        assert!(
            differing as f64 / total as f64 > 0.7,
            "only {differing}/{total} questions are evidence-sensitive"
        );
    }
}
