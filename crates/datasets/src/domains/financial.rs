//! The `financial` domain: Czech bank accounts, clients, loans (modelled on
//! BIRD's `financial` database, the source of the POPLATEK issuance codes the
//! paper uses as its running example of value-illustration knowledge).

use rand::Rng;

use seed_llm::{KnowledgeAtom, KnowledgeKind, SqlCondition};
use seed_sqlengine::{ColumnDef, DataType, Database, DatabaseSchema, ForeignKey, TableSchema};

use super::{domain_rng, weighted_index, DomainData};
use crate::template::{col, cond, on_eq, QuestionBuilder, RawQuestion};
use crate::CorpusConfig;

const DISTRICTS: &[(&str, &str)] = &[
    ("Jesenik", "north Moravia"),
    ("Pisek", "south Bohemia"),
    ("Prague", "Prague"),
    ("Brno", "south Moravia"),
    ("Olomouc", "north Moravia"),
    ("Liberec", "north Bohemia"),
    ("Plzen", "west Bohemia"),
    ("Ostrava", "north Moravia"),
];

const FREQUENCIES: &[&str] = &["POPLATEK MESICNE", "POPLATEK TYDNE", "POPLATEK PO OBRATU"];
const STATUSES: &[&str] = &["A", "B", "C", "D"];

fn schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("financial");
    s.add_table(TableSchema::new(
        "district",
        vec![
            ColumnDef::new("district_id", DataType::Integer).primary_key(),
            ColumnDef::new("district_name", DataType::Text)
                .described("name of the branch district"),
            ColumnDef::new("region", DataType::Text).described("geographic region"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "account",
        vec![
            ColumnDef::new("account_id", DataType::Integer).primary_key(),
            ColumnDef::new("district_id", DataType::Integer).described("branch location"),
            ColumnDef::new("frequency", DataType::Text)
                .described("frequency of statement issuance")
                .with_values(
                    "\"POPLATEK MESICNE\" stands for monthly issuance, \
                     \"POPLATEK TYDNE\" stands for weekly issuance, \
                     \"POPLATEK PO OBRATU\" stands for issuance after transaction",
                ),
            ColumnDef::new("open_date", DataType::Date).described("account opening date"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "client",
        vec![
            ColumnDef::new("client_id", DataType::Integer).primary_key(),
            ColumnDef::new("gender", DataType::Text)
                .described("client gender")
                .with_values("\"F\" stands for female, \"M\" stands for male"),
            ColumnDef::new("birth_date", DataType::Date).described("client birth date"),
            ColumnDef::new("district_id", DataType::Integer)
                .described("branch where the account was opened"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "loan",
        vec![
            ColumnDef::new("loan_id", DataType::Integer).primary_key(),
            ColumnDef::new("account_id", DataType::Integer),
            ColumnDef::new("amount", DataType::Real).described("approved loan amount in CZK"),
            ColumnDef::new("duration", DataType::Integer).described("loan duration in months"),
            ColumnDef::new("status", DataType::Text)
                .described("repayment status")
                .with_values(
                    "\"A\" stands for contract finished, no problems; \"B\" stands for contract finished, loan not paid; \
                     \"C\" stands for running contract, OK so far; \"D\" stands for running contract, client in debt",
                ),
        ],
    ))
    .unwrap();
    for (from_t, from_c, to_t, to_c) in [
        ("account", "district_id", "district", "district_id"),
        ("client", "district_id", "district", "district_id"),
        ("loan", "account_id", "account", "account_id"),
    ] {
        s.add_foreign_key(ForeignKey {
            from_table: from_t.into(),
            from_column: from_c.into(),
            to_table: to_t.into(),
            to_column: to_c.into(),
        });
    }
    s
}

fn populate(db: &mut Database, config: &CorpusConfig) {
    let mut rng = domain_rng(config, 0xf1a);
    for (i, (name, region)) in DISTRICTS.iter().enumerate() {
        db.insert("district", vec![(i as i64 + 1).into(), (*name).into(), (*region).into()])
            .unwrap();
    }
    let n_accounts = config.scaled(150, 30);
    for i in 0..n_accounts {
        let district = rng.gen_range(1..=DISTRICTS.len() as i64);
        let freq = FREQUENCIES[weighted_index(&mut rng, &[0.55, 0.3, 0.15])];
        let year = 1993 + rng.gen_range(0..6);
        let month = rng.gen_range(1..=12);
        db.insert(
            "account",
            vec![
                (i as i64 + 1).into(),
                district.into(),
                freq.into(),
                format!("{year}-{month:02}-15").into(),
            ],
        )
        .unwrap();
    }
    let n_clients = config.scaled(150, 30);
    for i in 0..n_clients {
        let district = rng.gen_range(1..=DISTRICTS.len() as i64);
        let gender = if rng.gen_bool(0.5) { "F" } else { "M" };
        let year = 1940 + rng.gen_range(0..55);
        db.insert(
            "client",
            vec![
                (i as i64 + 1).into(),
                gender.into(),
                format!("{year}-{:02}-{:02}", rng.gen_range(1..=12), rng.gen_range(1..=28)).into(),
                district.into(),
            ],
        )
        .unwrap();
    }
    let n_loans = config.scaled(120, 25);
    for i in 0..n_loans {
        let account = rng.gen_range(1..=n_accounts as i64);
        let amount = (rng.gen_range(20..500) * 1000) as f64;
        let duration = [12i64, 24, 36, 48, 60][rng.gen_range(0..5usize)];
        let status = STATUSES[weighted_index(&mut rng, &[0.35, 0.1, 0.4, 0.15])];
        db.insert(
            "loan",
            vec![
                (i as i64 + 1).into(),
                account.into(),
                amount.into(),
                duration.into(),
                status.into(),
            ],
        )
        .unwrap();
    }
}

// --- knowledge atoms -------------------------------------------------------

fn weekly() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "weekly issuance",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("account", "frequency", "=", "POPLATEK TYDNE"),
        SqlCondition::new("account", "frequency", "=", "weekly"),
    )
}

fn monthly() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "monthly issuance",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("account", "frequency", "=", "POPLATEK MESICNE"),
        SqlCondition::new("account", "frequency", "=", "monthly"),
    )
}

fn after_transaction() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "issuance after transaction",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("account", "frequency", "=", "POPLATEK PO OBRATU"),
        SqlCondition::new("account", "frequency", "=", "after transaction"),
    )
}

fn female() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "women",
        KnowledgeKind::Synonym,
        SqlCondition::new("client", "gender", "=", "F"),
        SqlCondition::new("client", "gender", "=", "female"),
    )
}

fn male() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "male clients",
        KnowledgeKind::Synonym,
        SqlCondition::new("client", "gender", "=", "M"),
        SqlCondition::new("client", "gender", "=", "male"),
    )
}

fn in_debt() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "client in debt",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("loan", "status", "=", "D"),
        SqlCondition::new("loan", "status", "=", "in debt"),
    )
}

fn finished_ok() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "finished with no problems",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("loan", "status", "=", "A"),
        SqlCondition::new("loan", "status", "=", "finished"),
    )
}

fn running_ok() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "running contract that is OK so far",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("loan", "status", "=", "C"),
        SqlCondition::new("loan", "status", "=", "running"),
    )
}

// --- questions -------------------------------------------------------------

fn questions(config: &CorpusConfig) -> Vec<RawQuestion> {
    let mut out = Vec::new();
    let districts: Vec<&str> =
        DISTRICTS.iter().take(config.scaled(6, 3)).map(|(n, _)| *n).collect();

    for d in &districts {
        out.push(
            QuestionBuilder::new(format!(
                "How many clients who opened their accounts in the {d} branch were women?"
            ))
            .select("COUNT(*)")
            .from("client")
            .join("district", on_eq("client", "district_id", "district", "district_id"))
            .filter(cond("district", "district_name", "=", *d))
            .filter_atom(female())
            .build(),
        );
        out.push(
            QuestionBuilder::new(format!(
                "List the account ids of weekly issuance accounts located in the {d} branch."
            ))
            .select(col("account", "account_id"))
            .from("account")
            .join("district", on_eq("account", "district_id", "district", "district_id"))
            .filter(cond("district", "district_name", "=", *d))
            .filter_atom(weekly())
            .build(),
        );
        out.push(
            QuestionBuilder::new(format!(
                "How many male clients are registered in the {d} branch?"
            ))
            .select("COUNT(*)")
            .from("client")
            .join("district", on_eq("client", "district_id", "district", "district_id"))
            .filter(cond("district", "district_name", "=", *d))
            .filter_atom(male())
            .build(),
        );
    }

    for amount in [200_000i64, 300_000] {
        out.push(
            QuestionBuilder::new(format!(
                "Among the weekly issuance accounts, how many have a loan of under {amount}?"
            ))
            .select("COUNT(*)")
            .from("account")
            .join("loan", on_eq("loan", "account_id", "account", "account_id"))
            .filter_atom(weekly())
            .filter(cond("loan", "amount", "<", amount))
            .build(),
        );
        out.push(
            QuestionBuilder::new(format!(
                "What is the average loan amount of monthly issuance accounts with loans above {amount}?"
            ))
            .select(format!("AVG({})", col("loan", "amount")))
            .from("account")
            .join("loan", on_eq("loan", "account_id", "account", "account_id"))
            .filter_atom(monthly())
            .filter(cond("loan", "amount", ">", amount))
            .build(),
        );
    }

    out.push(
        QuestionBuilder::new(
            "How many accounts receive a statement with issuance after transaction?",
        )
        .select("COUNT(*)")
        .from("account")
        .filter_atom(after_transaction())
        .build(),
    );
    out.push(
        QuestionBuilder::new("What is the largest loan amount among weekly issuance accounts?")
            .select(format!("MAX({})", col("loan", "amount")))
            .from("account")
            .join("loan", on_eq("loan", "account_id", "account", "account_id"))
            .filter_atom(weekly())
            .build(),
    );
    out.push(
        QuestionBuilder::new(
            "How many loans belong to a running contract where the client in debt?",
        )
        .select("COUNT(*)")
        .from("loan")
        .filter_atom(in_debt())
        .build(),
    );
    out.push(
        QuestionBuilder::new(
            "What is the total amount of loans that are finished with no problems?",
        )
        .select(format!("SUM({})", col("loan", "amount")))
        .from("loan")
        .filter_atom(finished_ok())
        .build(),
    );
    out.push(
        QuestionBuilder::new(
            "What is the average duration of loans on a running contract that is OK so far?",
        )
        .select(format!("AVG({})", col("loan", "duration")))
        .from("loan")
        .filter_atom(running_ok())
        .build(),
    );
    for year in [1960i64, 1975] {
        out.push(
            QuestionBuilder::new(format!("How many women clients were born after {year}?"))
                .select("COUNT(*)")
                .from("client")
                .filter_atom(female())
                .filter(cond("client", "birth_date", ">", format!("{year}-12-31")))
                .build(),
        );
    }
    out.push(
        QuestionBuilder::new(
            "For each district name, how many weekly issuance accounts does it host? \
             Report districts with at least 2 such accounts.",
        )
        .select(format!("{}, COUNT(*)", col("district", "district_name")))
        .from("account")
        .join("district", on_eq("account", "district_id", "district", "district_id"))
        .filter_atom(weekly())
        .group_by(col("district", "district_name"))
        .having("COUNT(*) >= 2")
        .build(),
    );
    out.push(
        QuestionBuilder::new("Which district name has the most monthly issuance accounts?")
            .select(col("district", "district_name"))
            .from("account")
            .join("district", on_eq("account", "district_id", "district", "district_id"))
            .filter_atom(monthly())
            .group_by(col("district", "district_name"))
            .order_by("COUNT(*) DESC")
            .limit(1)
            .build(),
    );
    out.push(
        QuestionBuilder::new(
            "List the distinct loan durations of accounts with issuance after transaction.",
        )
        .select(col("loan", "duration"))
        .distinct()
        .from("account")
        .join("loan", on_eq("loan", "account_id", "account", "account_id"))
        .filter_atom(after_transaction())
        .order_by(col("loan", "duration"))
        .build(),
    );
    out
}

/// Builds the financial domain.
pub fn build(config: &CorpusConfig) -> DomainData {
    let mut db = Database::from_schema(schema());
    populate(&mut db, config);
    DomainData { database: db, questions: questions(config) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{execute, Value};

    #[test]
    fn weekly_accounts_exist_and_answer_is_nonzero() {
        let data = build(&CorpusConfig::default());
        let rs = execute(
            &data.database,
            "SELECT COUNT(*) FROM account WHERE `account`.`frequency` = 'POPLATEK TYDNE'",
        )
        .unwrap();
        assert!(matches!(rs.rows[0][0], Value::Integer(n) if n > 5));
    }

    #[test]
    fn naive_weekly_condition_returns_zero_rows() {
        let data = build(&CorpusConfig::default());
        let rs = execute(
            &data.database,
            "SELECT COUNT(*) FROM account WHERE `account`.`frequency` = 'weekly'",
        )
        .unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(0), "the naive guess must be wrong");
    }

    #[test]
    fn question_count_scales_with_config() {
        let full = build(&CorpusConfig::default()).questions.len();
        let tiny = build(&CorpusConfig::tiny()).questions.len();
        assert!(full > tiny);
        assert!(full >= 25);
    }

    #[test]
    fn descriptions_contain_the_issuance_codes() {
        let data = build(&CorpusConfig::tiny());
        let freq = data.database.schema().table("account").unwrap().column("frequency").unwrap();
        assert!(freq.value_description.contains("POPLATEK TYDNE"));
        assert!(freq.value_description.contains("weekly"));
    }
}
