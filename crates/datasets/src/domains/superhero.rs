//! The `superhero` domain — the source of the paper's incorrect-schema-selection
//! example (full_name vs superhero_name, Table I).

use rand::Rng;

use seed_llm::{KnowledgeAtom, KnowledgeKind, SqlCondition};
use seed_sqlengine::{ColumnDef, DataType, Database, DatabaseSchema, ForeignKey, TableSchema};

use super::{domain_rng, DomainData};
use crate::template::{col, cond, on_eq, QuestionBuilder, RawQuestion};
use crate::CorpusConfig;

const COLOURS: &[&str] = &["Blue", "Brown", "Green", "Red", "Black", "Yellow", "White", "Amber"];
const PUBLISHERS: &[&str] = &["Marvel Comics", "DC Comics", "Dark Horse Comics", "Image Comics"];
const FIRST: &[&str] =
    &["Peter", "Diana", "Bruce", "Clark", "Natasha", "Tony", "Steve", "Wanda", "Barry", "Hal"];
const LAST: &[&str] = &[
    "Parker", "Prince", "Wayne", "Kent", "Romanoff", "Stark", "Rogers", "Maximoff", "Allen",
    "Jordan",
];

fn schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("superhero");
    s.add_table(TableSchema::new(
        "colour",
        vec![
            ColumnDef::new("id", DataType::Integer).primary_key(),
            ColumnDef::new("colour", DataType::Text)
                .described("colour name, capitalised (e.g. 'Blue')"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "publisher",
        vec![
            ColumnDef::new("id", DataType::Integer).primary_key(),
            ColumnDef::new("publisher_name", DataType::Text).described("publisher name"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "superhero",
        vec![
            ColumnDef::new("id", DataType::Integer).primary_key(),
            ColumnDef::new("superhero_name", DataType::Text)
                .described("the hero's alias (e.g. 'Spider-Man')"),
            ColumnDef::new("full_name", DataType::Text).described("the hero's civilian full name"),
            ColumnDef::new("eye_colour_id", DataType::Integer).described("foreign key to colour"),
            ColumnDef::new("hair_colour_id", DataType::Integer).described("foreign key to colour"),
            ColumnDef::new("publisher_id", DataType::Integer).described("foreign key to publisher"),
            ColumnDef::new("height_cm", DataType::Integer).described("height in centimetres"),
        ],
    ))
    .unwrap();
    for c in ["eye_colour_id", "hair_colour_id"] {
        s.add_foreign_key(ForeignKey {
            from_table: "superhero".into(),
            from_column: c.into(),
            to_table: "colour".into(),
            to_column: "id".into(),
        });
    }
    s.add_foreign_key(ForeignKey {
        from_table: "superhero".into(),
        from_column: "publisher_id".into(),
        to_table: "publisher".into(),
        to_column: "id".into(),
    });
    s
}

fn populate(db: &mut Database, config: &CorpusConfig) {
    let mut rng = domain_rng(config, 0x5e40);
    for (i, c) in COLOURS.iter().enumerate() {
        db.insert("colour", vec![(i as i64 + 1).into(), (*c).into()]).unwrap();
    }
    for (i, p) in PUBLISHERS.iter().enumerate() {
        db.insert("publisher", vec![(i as i64 + 1).into(), (*p).into()]).unwrap();
    }
    let n = config.scaled(130, 30);
    for i in 0..n {
        let id = i as i64 + 1;
        let first = FIRST[rng.gen_range(0..FIRST.len())];
        let last = LAST[rng.gen_range(0..LAST.len())];
        db.insert(
            "superhero",
            vec![
                id.into(),
                format!("Hero-{id}").into(),
                format!("{first} {last}").into(),
                rng.gen_range(1..=COLOURS.len() as i64).into(),
                rng.gen_range(1..=COLOURS.len() as i64).into(),
                rng.gen_range(1..=PUBLISHERS.len() as i64).into(),
                rng.gen_range(150..210i64).into(),
            ],
        )
        .unwrap();
    }
}

fn blue_eyes() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "blue eyes",
        KnowledgeKind::CaseSensitivity,
        SqlCondition::new("colour", "colour", "=", "Blue"),
        SqlCondition::new("colour", "colour", "=", "blue"),
    )
}

fn eye_colour(name: &str) -> KnowledgeAtom {
    KnowledgeAtom::new(
        &format!("{} eyes", name.to_lowercase()),
        KnowledgeKind::CaseSensitivity,
        SqlCondition::new("colour", "colour", "=", name),
        SqlCondition::new("colour", "colour", "=", name.to_lowercase()),
    )
}

/// "full names of superheroes" — the schema-selection trap: the right column is
/// `full_name`, the tempting one is `superhero_name`.
fn full_name_choice() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "full names",
        KnowledgeKind::SchemaChoice,
        SqlCondition::new("superhero", "full_name", "!=", ""),
        SqlCondition::new("superhero", "superhero_name", "!=", ""),
    )
}

fn questions(config: &CorpusConfig) -> Vec<RawQuestion> {
    let mut out = Vec::new();
    out.push(
        QuestionBuilder::new("List down at least five full names of superheroes with blue eyes.")
            .select(col("superhero", "full_name"))
            .from("superhero")
            .join("colour", on_eq("superhero", "eye_colour_id", "colour", "id"))
            .filter_atom(blue_eyes())
            .filter_atom(full_name_choice())
            .limit(5)
            .build(),
    );
    for c in COLOURS.iter().take(config.scaled(6, 3)) {
        out.push(
            QuestionBuilder::new(format!("How many superheroes have {} eyes?", c.to_lowercase()))
                .select("COUNT(*)")
                .from("superhero")
                .join("colour", on_eq("superhero", "eye_colour_id", "colour", "id"))
                .filter_atom(eye_colour(c))
                .build(),
        );
    }
    for p in PUBLISHERS.iter().take(config.scaled(4, 2)) {
        out.push(
            QuestionBuilder::new(format!("How many superheroes published by {p} have blue eyes?"))
                .select("COUNT(*)")
                .from("superhero")
                .join("colour", on_eq("superhero", "eye_colour_id", "colour", "id"))
                .join("publisher", on_eq("superhero", "publisher_id", "publisher", "id"))
                .filter(cond("publisher", "publisher_name", "=", *p))
                .filter_atom(blue_eyes())
                .build(),
        );
    }
    out.push(
        QuestionBuilder::new("What is the average height of superheroes with green eyes?")
            .select(format!("AVG({})", col("superhero", "height_cm")))
            .from("superhero")
            .join("colour", on_eq("superhero", "eye_colour_id", "colour", "id"))
            .filter_atom(eye_colour("Green"))
            .build(),
    );
    out.push(
        QuestionBuilder::new("Which publisher name has the most superheroes with black eyes?")
            .select(col("publisher", "publisher_name"))
            .from("superhero")
            .join("colour", on_eq("superhero", "eye_colour_id", "colour", "id"))
            .join("publisher", on_eq("superhero", "publisher_id", "publisher", "id"))
            .filter_atom(eye_colour("Black"))
            .group_by(col("publisher", "publisher_name"))
            .order_by("COUNT(*) DESC")
            .limit(1)
            .build(),
    );
    out.push(
        QuestionBuilder::new("How many superheroes taller than 190 cm have red eyes?")
            .select("COUNT(*)")
            .from("superhero")
            .join("colour", on_eq("superhero", "eye_colour_id", "colour", "id"))
            .filter(cond("superhero", "height_cm", ">", 190))
            .filter_atom(eye_colour("Red"))
            .build(),
    );
    out
}

/// Builds the superhero domain.
pub fn build(config: &CorpusConfig) -> DomainData {
    let mut db = Database::from_schema(schema());
    populate(&mut db, config);
    DomainData { database: db, questions: questions(config) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{execute, Value};

    #[test]
    fn colour_casing_is_capitalised() {
        let data = build(&CorpusConfig::tiny());
        let rs =
            execute(&data.database, "SELECT COUNT(*) FROM colour WHERE `colour`.`colour` = 'Blue'")
                .unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(1));
        let rs =
            execute(&data.database, "SELECT COUNT(*) FROM colour WHERE `colour`.`colour` = 'blue'")
                .unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(0));
    }

    #[test]
    fn full_name_differs_from_alias() {
        let data = build(&CorpusConfig::tiny());
        let rs = execute(
            &data.database,
            "SELECT COUNT(*) FROM superhero WHERE `superhero`.`full_name` = `superhero`.`superhero_name`",
        )
        .unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(0));
    }
}
