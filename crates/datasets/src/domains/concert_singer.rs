//! The `concert_singer` domain, modelled on Spider's concert_singer database.
//! Spider-style: no description files; questions are mostly structural, with a
//! minority requiring value knowledge (nationalities, capitalised stadium
//! locations) that SEED's grounding can recover.

use rand::Rng;

use seed_llm::{KnowledgeAtom, KnowledgeKind, SqlCondition};
use seed_sqlengine::{ColumnDef, DataType, Database, DatabaseSchema, ForeignKey, TableSchema};

use super::{domain_rng, DomainData};
use crate::template::{col, cond, on_eq, QuestionBuilder, RawQuestion};
use crate::CorpusConfig;

const COUNTRIES: &[(&str, &str)] = &[
    ("France", "French"),
    ("United States", "American"),
    ("Netherlands", "Dutch"),
    ("Japan", "Japanese"),
    ("Brazil", "Brazilian"),
];
const LOCATIONS: &[&str] = &["Glasgow", "Aberdeen", "Dundee", "Inverness", "Stirling"];

fn schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("concert_singer");
    s.add_table(TableSchema::new(
        "stadium",
        vec![
            ColumnDef::new("stadium_id", DataType::Integer).primary_key(),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("location", DataType::Text),
            ColumnDef::new("capacity", DataType::Integer),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "singer",
        vec![
            ColumnDef::new("singer_id", DataType::Integer).primary_key(),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("country", DataType::Text),
            ColumnDef::new("age", DataType::Integer),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "concert",
        vec![
            ColumnDef::new("concert_id", DataType::Integer).primary_key(),
            ColumnDef::new("concert_name", DataType::Text),
            ColumnDef::new("stadium_id", DataType::Integer),
            ColumnDef::new("year", DataType::Integer),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "singer_in_concert",
        vec![
            ColumnDef::new("concert_id", DataType::Integer),
            ColumnDef::new("singer_id", DataType::Integer),
        ],
    ))
    .unwrap();
    s.add_foreign_key(ForeignKey {
        from_table: "concert".into(),
        from_column: "stadium_id".into(),
        to_table: "stadium".into(),
        to_column: "stadium_id".into(),
    });
    s.add_foreign_key(ForeignKey {
        from_table: "singer_in_concert".into(),
        from_column: "concert_id".into(),
        to_table: "concert".into(),
        to_column: "concert_id".into(),
    });
    s.add_foreign_key(ForeignKey {
        from_table: "singer_in_concert".into(),
        from_column: "singer_id".into(),
        to_table: "singer".into(),
        to_column: "singer_id".into(),
    });
    s
}

fn populate(db: &mut Database, config: &CorpusConfig) {
    let mut rng = domain_rng(config, 0xc095);
    let n_stadium = config.scaled(20, 6);
    for i in 0..n_stadium {
        let id = i as i64 + 1;
        db.insert(
            "stadium",
            vec![
                id.into(),
                format!("Stadium {id}").into(),
                LOCATIONS[rng.gen_range(0..LOCATIONS.len())].into(),
                (rng.gen_range(2..60i64) * 1000).into(),
            ],
        )
        .unwrap();
    }
    let n_singer = config.scaled(60, 15);
    for i in 0..n_singer {
        let id = i as i64 + 1;
        db.insert(
            "singer",
            vec![
                id.into(),
                format!("Singer {id}").into(),
                COUNTRIES[rng.gen_range(0..COUNTRIES.len())].0.into(),
                rng.gen_range(18..70i64).into(),
            ],
        )
        .unwrap();
    }
    let n_concert = config.scaled(50, 12);
    for i in 0..n_concert {
        let id = i as i64 + 1;
        db.insert(
            "concert",
            vec![
                id.into(),
                format!("Concert {id}").into(),
                rng.gen_range(1..=n_stadium as i64).into(),
                rng.gen_range(2010..2023i64).into(),
            ],
        )
        .unwrap();
        for _ in 0..rng.gen_range(1..4) {
            db.insert(
                "singer_in_concert",
                vec![id.into(), rng.gen_range(1..=n_singer as i64).into()],
            )
            .unwrap();
        }
    }
}

fn nationality(country: &str, adjective: &str) -> KnowledgeAtom {
    KnowledgeAtom::new(
        &adjective.to_lowercase(),
        KnowledgeKind::Synonym,
        SqlCondition::new("singer", "country", "=", country),
        SqlCondition::new("singer", "country", "=", adjective),
    )
}

fn location(city: &str) -> KnowledgeAtom {
    KnowledgeAtom::new(
        &city.to_lowercase(),
        KnowledgeKind::CaseSensitivity,
        SqlCondition::new("stadium", "location", "=", city),
        SqlCondition::new("stadium", "location", "=", city.to_lowercase()),
    )
}

fn questions(config: &CorpusConfig) -> Vec<RawQuestion> {
    let mut out = Vec::new();
    // Structural Spider-style questions (no external knowledge needed).
    out.push(
        QuestionBuilder::new("How many singers do we have?")
            .select("COUNT(*)")
            .from("singer")
            .build(),
    );
    out.push(
        QuestionBuilder::new("What is the average capacity of stadiums?")
            .select(format!("AVG({})", col("stadium", "capacity")))
            .from("stadium")
            .build(),
    );
    out.push(
        QuestionBuilder::new("What is the maximum capacity of all stadiums?")
            .select(format!("MAX({})", col("stadium", "capacity")))
            .from("stadium")
            .build(),
    );
    out.push(
        QuestionBuilder::new("How many concerts were held after 2015?")
            .select("COUNT(*)")
            .from("concert")
            .filter(cond("concert", "year", ">", 2015))
            .build(),
    );
    out.push(
        QuestionBuilder::new("How many concerts are there in each stadium name?")
            .select(format!("{}, COUNT(*)", col("stadium", "name")))
            .from("concert")
            .join("stadium", on_eq("concert", "stadium_id", "stadium", "stadium_id"))
            .group_by(col("stadium", "name"))
            .build(),
    );
    out.push(
        QuestionBuilder::new("Which stadium name held the most concerts?")
            .select(col("stadium", "name"))
            .from("concert")
            .join("stadium", on_eq("concert", "stadium_id", "stadium", "stadium_id"))
            .group_by(col("stadium", "name"))
            .order_by("COUNT(*) DESC")
            .limit(1)
            .build(),
    );
    out.push(
        QuestionBuilder::new(
            "What is the average age of singers who performed in a concert after 2018?",
        )
        .select(format!("AVG({})", col("singer", "age")))
        .from("singer")
        .join("singer_in_concert", on_eq("singer_in_concert", "singer_id", "singer", "singer_id"))
        .join("concert", on_eq("singer_in_concert", "concert_id", "concert", "concert_id"))
        .filter(cond("concert", "year", ">", 2018))
        .difficulty(0.45)
        .build(),
    );
    out.push(
        QuestionBuilder::new("How many stadiums have a capacity of more than 30000?")
            .select("COUNT(*)")
            .from("stadium")
            .filter(cond("stadium", "capacity", ">", 30000))
            .build(),
    );
    // Knowledge-flavoured questions (benefit from SEED grounding).
    for (country, adj) in COUNTRIES.iter().take(config.scaled(4, 2)) {
        out.push(
            QuestionBuilder::new(format!("How many {} singers are there?", adj.to_lowercase()))
                .select("COUNT(*)")
                .from("singer")
                .filter_atom(nationality(country, adj))
                .build(),
        );
    }
    for city in LOCATIONS.iter().take(config.scaled(3, 2)) {
        out.push(
            QuestionBuilder::new(format!(
                "How many concerts took place in a stadium located in {}?",
                city.to_lowercase()
            ))
            .select("COUNT(*)")
            .from("concert")
            .join("stadium", on_eq("concert", "stadium_id", "stadium", "stadium_id"))
            .filter_atom(location(city))
            .build(),
        );
    }
    out
}

/// Builds the concert_singer domain.
pub fn build(config: &CorpusConfig) -> DomainData {
    let mut db = Database::from_schema(schema());
    populate(&mut db, config);
    DomainData { database: db, questions: questions(config) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spider_domain_has_no_descriptions() {
        let data = build(&CorpusConfig::tiny());
        for t in &data.database.schema().tables {
            for c in &t.columns {
                assert!(c.value_description.is_empty(), "Spider tables ship no value descriptions");
            }
        }
    }

    #[test]
    fn majority_of_questions_need_no_knowledge() {
        let data = build(&CorpusConfig::default());
        let with_atoms = data.questions.iter().filter(|q| !q.atoms.is_empty()).count();
        assert!(
            with_atoms * 2 < data.questions.len() + with_atoms,
            "most Spider questions are structural"
        );
    }
}
