//! The `card_games` domain (cards, legalities) — the source of the paper's
//! case-sensitivity example ("restricted" vs "Restricted", Table I).

use rand::Rng;

use seed_llm::{KnowledgeAtom, KnowledgeKind, SqlCondition};
use seed_sqlengine::{ColumnDef, DataType, Database, DatabaseSchema, ForeignKey, TableSchema};

use super::{domain_rng, DomainData};
use crate::template::{col, cond, on_eq, QuestionBuilder, RawQuestion};
use crate::CorpusConfig;

const FORMATS: &[&str] = &["commander", "legacy", "modern", "vintage", "pauper"];
const STATUSES: &[&str] = &["Legal", "Banned", "Restricted"];

fn schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("card_games");
    s.add_table(TableSchema::new(
        "cards",
        vec![
            ColumnDef::new("id", DataType::Integer).primary_key(),
            ColumnDef::new("name", DataType::Text).described("card name"),
            ColumnDef::new("isTextless", DataType::Integer)
                .described("whether the card has no text box")
                .with_values("0 means the card has a text box; 1 means the card is textless"),
            ColumnDef::new("manaValue", DataType::Real).described("converted mana cost"),
            ColumnDef::new("rarity", DataType::Text).described("card rarity"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "legalities",
        vec![
            ColumnDef::new("id", DataType::Integer).primary_key(),
            ColumnDef::new("card_id", DataType::Integer),
            ColumnDef::new("format", DataType::Text).described("play format"),
            ColumnDef::new("status", DataType::Text).described("legality status").with_values(
                "values are 'Legal', 'Banned', 'Restricted' (note the capitalisation)",
            ),
        ],
    ))
    .unwrap();
    s.add_foreign_key(ForeignKey {
        from_table: "legalities".into(),
        from_column: "card_id".into(),
        to_table: "cards".into(),
        to_column: "id".into(),
    });
    s
}

fn populate(db: &mut Database, config: &CorpusConfig) {
    let mut rng = domain_rng(config, 0xca4d);
    let n_cards = config.scaled(140, 30);
    let rarities = ["common", "uncommon", "rare", "mythic"];
    for i in 0..n_cards {
        let id = i as i64 + 1;
        db.insert(
            "cards",
            vec![
                id.into(),
                format!("Card {id}").into(),
                i64::from(rng.gen_bool(0.2)).into(),
                (rng.gen_range(0..12) as f64).into(),
                rarities[rng.gen_range(0..4usize)].into(),
            ],
        )
        .unwrap();
    }
    let n_legal = config.scaled(220, 50);
    for i in 0..n_legal {
        let card = rng.gen_range(1..=n_cards as i64);
        let format = FORMATS[rng.gen_range(0..FORMATS.len())];
        let status = STATUSES[super::weighted_index(&mut rng, &[0.7, 0.18, 0.12])];
        db.insert(
            "legalities",
            vec![(i as i64 + 1).into(), card.into(), format.into(), status.into()],
        )
        .unwrap();
    }
}

fn restricted() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "restricted",
        KnowledgeKind::CaseSensitivity,
        SqlCondition::new("legalities", "status", "=", "Restricted"),
        SqlCondition::new("legalities", "status", "=", "restricted"),
    )
}

fn banned() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "banned",
        KnowledgeKind::CaseSensitivity,
        SqlCondition::new("legalities", "status", "=", "Banned"),
        SqlCondition::new("legalities", "status", "=", "banned"),
    )
}

fn has_text_box() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "have text boxes",
        KnowledgeKind::Synonym,
        SqlCondition::new("cards", "isTextless", "=", 0),
        SqlCondition::new("cards", "isTextless", "=", 1),
    )
}

fn questions(config: &CorpusConfig) -> Vec<RawQuestion> {
    let mut out = Vec::new();
    out.push(
        QuestionBuilder::new(
            "How many cards of legalities whose status is restricted have text boxes?",
        )
        .select("COUNT(*)")
        .from("cards")
        .join("legalities", on_eq("legalities", "card_id", "cards", "id"))
        .filter_atom(restricted())
        .filter_atom(has_text_box())
        .build(),
    );
    for format in FORMATS.iter().take(config.scaled(5, 3)) {
        out.push(
            QuestionBuilder::new(format!("How many cards are banned in the {format} format?"))
                .select("COUNT(*)")
                .from("legalities")
                .filter(cond("legalities", "format", "=", *format))
                .filter_atom(banned())
                .build(),
        );
        out.push(
            QuestionBuilder::new(format!("How many cards are restricted in the {format} format?"))
                .select("COUNT(*)")
                .from("legalities")
                .filter(cond("legalities", "format", "=", *format))
                .filter_atom(restricted())
                .build(),
        );
    }
    out.push(
        QuestionBuilder::new("What is the average mana value of cards that are banned somewhere?")
            .select(format!("AVG({})", col("cards", "manaValue")))
            .from("cards")
            .join("legalities", on_eq("legalities", "card_id", "cards", "id"))
            .filter_atom(banned())
            .build(),
    );
    out.push(
        QuestionBuilder::new("List the distinct names of rare cards that are restricted.")
            .select(col("cards", "name"))
            .distinct()
            .from("cards")
            .join("legalities", on_eq("legalities", "card_id", "cards", "id"))
            .filter(cond("cards", "rarity", "=", "rare"))
            .filter_atom(restricted())
            .build(),
    );
    out.push(
        QuestionBuilder::new("Which format has the most banned cards?")
            .select(col("legalities", "format"))
            .from("legalities")
            .filter_atom(banned())
            .group_by(col("legalities", "format"))
            .order_by("COUNT(*) DESC")
            .limit(1)
            .build(),
    );
    out.push(
        QuestionBuilder::new("How many mythic cards have text boxes?")
            .select("COUNT(*)")
            .from("cards")
            .filter(cond("cards", "rarity", "=", "mythic"))
            .filter_atom(has_text_box())
            .build(),
    );
    out
}

/// Builds the card_games domain.
pub fn build(config: &CorpusConfig) -> DomainData {
    let mut db = Database::from_schema(schema());
    populate(&mut db, config);
    DomainData { database: db, questions: questions(config) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{execute, Value};

    #[test]
    fn status_casing_matters() {
        let data = build(&CorpusConfig::tiny());
        let exact = execute(
            &data.database,
            "SELECT COUNT(*) FROM legalities WHERE `legalities`.`status` = 'Restricted'",
        )
        .unwrap();
        let lower = execute(
            &data.database,
            "SELECT COUNT(*) FROM legalities WHERE `legalities`.`status` = 'restricted'",
        )
        .unwrap();
        assert!(matches!(exact.rows[0][0], Value::Integer(n) if n > 0));
        assert_eq!(lower.rows[0][0], Value::Integer(0));
    }
}
