//! The `california_schools` domain (schools, frpm, satscores) — the source of
//! the magnet-school and SAT-test-taker examples in the paper's Table VI.

use rand::Rng;

use seed_llm::{KnowledgeAtom, KnowledgeKind, SqlCondition};
use seed_sqlengine::{ColumnDef, DataType, Database, DatabaseSchema, ForeignKey, TableSchema};

use super::{domain_rng, DomainData};
use crate::template::{col, cond, on_eq, QuestionBuilder, RawQuestion};
use crate::CorpusConfig;

const COUNTIES: &[&str] =
    &["Alameda", "Fresno", "Los Angeles", "San Diego", "Santa Clara", "Sacramento"];
const CITIES: &[&str] = &["Fremont", "Oakland", "Fresno", "San Jose", "Riverside", "Hayward"];

fn schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("california_schools");
    s.add_table(TableSchema::new(
        "schools",
        vec![
            ColumnDef::new("CDSCode", DataType::Integer).primary_key(),
            ColumnDef::new("School", DataType::Text).described("school name"),
            ColumnDef::new("County", DataType::Text).described("county name"),
            ColumnDef::new("City", DataType::Text).described("city name"),
            ColumnDef::new("Magnet", DataType::Integer)
                .described("whether the school is a magnet school or offers a magnet program")
                .with_values("0: N, 1: Y; Magnet = 1 means the school is a magnet school or offers a magnet program"),
            ColumnDef::new("Charter", DataType::Integer)
                .described("whether the school is a charter school")
                .with_values("0: N, 1: Y"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "satscores",
        vec![
            ColumnDef::new("cds", DataType::Integer).primary_key(),
            ColumnDef::new("NumTstTakr", DataType::Integer).described("number of SAT test takers"),
            ColumnDef::new("NumGE1500", DataType::Integer).described(
                "number of test takers whose total SAT score is greater or equal to 1500",
            ),
            ColumnDef::new("AvgScrMath", DataType::Integer).described("average SAT math score"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "frpm",
        vec![
            ColumnDef::new("CDSCode", DataType::Integer).primary_key(),
            ColumnDef::new("FreeMealCount", DataType::Integer).described("free meal count (K-12)"),
            ColumnDef::new("Enrollment", DataType::Integer).described("enrollment (K-12)"),
        ],
    ))
    .unwrap();
    for (ft, fc) in [("satscores", "cds"), ("frpm", "CDSCode")] {
        s.add_foreign_key(ForeignKey {
            from_table: ft.into(),
            from_column: fc.into(),
            to_table: "schools".into(),
            to_column: "CDSCode".into(),
        });
    }
    s
}

fn populate(db: &mut Database, config: &CorpusConfig) {
    let mut rng = domain_rng(config, 0x5c00);
    let n = config.scaled(140, 30);
    for i in 0..n {
        let id = i as i64 + 1;
        let county = COUNTIES[rng.gen_range(0..COUNTIES.len())];
        let city = CITIES[rng.gen_range(0..CITIES.len())];
        let magnet = i64::from(rng.gen_bool(0.3));
        let charter = i64::from(rng.gen_bool(0.25));
        db.insert(
            "schools",
            vec![
                id.into(),
                format!("{city} {} School {id}", if charter == 1 { "Charter" } else { "High" })
                    .into(),
                county.into(),
                city.into(),
                magnet.into(),
                charter.into(),
            ],
        )
        .unwrap();
        let takers = rng.gen_range(40..1200i64);
        let ge1500 = (takers as f64 * rng.gen_range(0.05..0.6)) as i64;
        db.insert(
            "satscores",
            vec![id.into(), takers.into(), ge1500.into(), rng.gen_range(380..720i64).into()],
        )
        .unwrap();
        let enrollment = rng.gen_range(200..3000i64);
        let free = (enrollment as f64 * rng.gen_range(0.1..0.9)) as i64;
        db.insert("frpm", vec![id.into(), free.into(), enrollment.into()]).unwrap();
    }
}

fn magnet() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "magnet schools or offer a magnet program",
        KnowledgeKind::Synonym,
        SqlCondition::new("schools", "Magnet", "=", 1),
        SqlCondition::new("schools", "Magnet", "=", "Yes"),
    )
}

fn charter() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "charter schools",
        KnowledgeKind::Synonym,
        SqlCondition::new("schools", "Charter", "=", 1),
        SqlCondition::new("schools", "Charter", "=", "Y"),
    )
}

fn excellence() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "excellent SAT performance",
        KnowledgeKind::NumericFormula,
        SqlCondition::new("satscores", "NumGE1500", ">=", 200),
        SqlCondition::new("satscores", "AvgScrMath", ">=", 200),
    )
}

fn questions(config: &CorpusConfig) -> Vec<RawQuestion> {
    let mut out = Vec::new();
    let counties: Vec<&str> = COUNTIES.iter().take(config.scaled(5, 3)).copied().collect();
    for county in &counties {
        out.push(
            QuestionBuilder::new(format!(
                "How many schools in {county} county are magnet schools or offer a magnet program?"
            ))
            .select("COUNT(*)")
            .from("schools")
            .filter(cond("schools", "County", "=", *county))
            .filter_atom(magnet())
            .build(),
        );
        out.push(
            QuestionBuilder::new(format!(
                "How many charter schools are located in {county} county?"
            ))
            .select("COUNT(*)")
            .from("schools")
            .filter(cond("schools", "County", "=", *county))
            .filter_atom(charter())
            .build(),
        );
    }
    for takers in [500i64, 800] {
        out.push(
            QuestionBuilder::new(format!(
                "Among schools with SAT test takers of over {takers}, how many are magnet schools or offer a magnet program?"
            ))
            .select("COUNT(*)")
            .from("schools")
            .join("satscores", on_eq("satscores", "cds", "schools", "CDSCode"))
            .filter(cond("satscores", "NumTstTakr", ">", takers))
            .filter_atom(magnet())
            .build(),
        );
    }
    out.push(
        QuestionBuilder::new("What is the highest average SAT math score among charter schools?")
            .select(format!("MAX({})", col("satscores", "AvgScrMath")))
            .from("schools")
            .join("satscores", on_eq("satscores", "cds", "schools", "CDSCode"))
            .filter_atom(charter())
            .build(),
    );
    out.push(
        QuestionBuilder::new(
            "List the names of schools with excellent SAT performance in Fremont.",
        )
        .select(col("schools", "School"))
        .from("schools")
        .join("satscores", on_eq("satscores", "cds", "schools", "CDSCode"))
        .filter(cond("schools", "City", "=", "Fremont"))
        .filter_atom(excellence())
        .build(),
    );
    out.push(
        QuestionBuilder::new("How many magnet schools or offer a magnet program have an enrollment above 1500 students?")
            .select("COUNT(*)")
            .from("schools")
            .join("frpm", on_eq("frpm", "CDSCode", "schools", "CDSCode"))
            .filter_atom(magnet())
            .filter(cond("frpm", "Enrollment", ">", 1500))
            .build(),
    );
    out.push(
        QuestionBuilder::new("For each county, how many charter schools does it have? Only report counties with at least 3.")
            .select(format!("{}, COUNT(*)", col("schools", "County")))
            .from("schools")
            .filter_atom(charter())
            .group_by(col("schools", "County"))
            .having("COUNT(*) >= 3")
            .build(),
    );
    out.push(
        QuestionBuilder::new("Which city hosts the most magnet schools or offer a magnet program?")
            .select(col("schools", "City"))
            .from("schools")
            .filter_atom(magnet())
            .group_by(col("schools", "City"))
            .order_by("COUNT(*) DESC")
            .limit(1)
            .build(),
    );
    out.push(
        QuestionBuilder::new("What is the average free meal count of charter schools?")
            .select(format!("AVG({})", col("frpm", "FreeMealCount")))
            .from("schools")
            .join("frpm", on_eq("frpm", "CDSCode", "schools", "CDSCode"))
            .filter_atom(charter())
            .build(),
    );
    out
}

/// Builds the california_schools domain.
pub fn build(config: &CorpusConfig) -> DomainData {
    let mut db = Database::from_schema(schema());
    populate(&mut db, config);
    DomainData { database: db, questions: questions(config) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{execute, Value};

    #[test]
    fn magnet_flag_is_integer_coded() {
        let data = build(&CorpusConfig::tiny());
        let rs =
            execute(&data.database, "SELECT COUNT(*) FROM schools WHERE `schools`.`Magnet` = 1")
                .unwrap();
        assert!(matches!(rs.rows[0][0], Value::Integer(n) if n > 0));
        let naive = execute(
            &data.database,
            "SELECT COUNT(*) FROM schools WHERE `schools`.`Magnet` = 'Yes'",
        )
        .unwrap();
        assert_eq!(naive.rows[0][0], Value::Integer(0));
    }

    #[test]
    fn all_questions_have_expected_structure() {
        let data = build(&CorpusConfig::default());
        assert!(data.questions.len() >= 15);
        assert!(data.questions.iter().any(|q| q.gold_sql.contains("INNER JOIN")));
        assert!(data.questions.iter().any(|q| q.gold_sql.contains("GROUP BY")));
    }
}
