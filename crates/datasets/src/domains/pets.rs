//! The `pets_1` domain, modelled on Spider's pets_1 database.

use rand::Rng;

use seed_llm::{KnowledgeAtom, KnowledgeKind, SqlCondition};
use seed_sqlengine::{ColumnDef, DataType, Database, DatabaseSchema, ForeignKey, TableSchema};

use super::{domain_rng, DomainData};
use crate::template::{col, cond, on_eq, QuestionBuilder, RawQuestion};
use crate::CorpusConfig;

const MAJORS: &[&str] = &["CS", "Math", "Physics", "History", "Biology"];
const PET_TYPES: &[&str] = &["Dog", "Cat", "Bird", "Hamster"];

fn schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("pets_1");
    s.add_table(TableSchema::new(
        "student",
        vec![
            ColumnDef::new("stuid", DataType::Integer).primary_key(),
            ColumnDef::new("lname", DataType::Text),
            ColumnDef::new("fname", DataType::Text),
            ColumnDef::new("age", DataType::Integer),
            ColumnDef::new("sex", DataType::Text),
            ColumnDef::new("major", DataType::Text),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "pets",
        vec![
            ColumnDef::new("petid", DataType::Integer).primary_key(),
            ColumnDef::new("pettype", DataType::Text),
            ColumnDef::new("pet_age", DataType::Integer),
            ColumnDef::new("weight", DataType::Real),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "has_pet",
        vec![
            ColumnDef::new("stuid", DataType::Integer),
            ColumnDef::new("petid", DataType::Integer),
        ],
    ))
    .unwrap();
    s.add_foreign_key(ForeignKey {
        from_table: "has_pet".into(),
        from_column: "stuid".into(),
        to_table: "student".into(),
        to_column: "stuid".into(),
    });
    s.add_foreign_key(ForeignKey {
        from_table: "has_pet".into(),
        from_column: "petid".into(),
        to_table: "pets".into(),
        to_column: "petid".into(),
    });
    s
}

fn populate(db: &mut Database, config: &CorpusConfig) {
    let mut rng = domain_rng(config, 0x9e75);
    let n_students = config.scaled(80, 20);
    for i in 0..n_students {
        let id = i as i64 + 1;
        db.insert(
            "student",
            vec![
                id.into(),
                format!("Last{id}").into(),
                format!("First{id}").into(),
                rng.gen_range(17..30i64).into(),
                if rng.gen_bool(0.5) { "F" } else { "M" }.into(),
                MAJORS[rng.gen_range(0..MAJORS.len())].into(),
            ],
        )
        .unwrap();
    }
    let n_pets = config.scaled(60, 15);
    for i in 0..n_pets {
        let id = i as i64 + 1;
        db.insert(
            "pets",
            vec![
                id.into(),
                PET_TYPES[rng.gen_range(0..PET_TYPES.len())].into(),
                rng.gen_range(1..15i64).into(),
                rng.gen_range(1.0..40.0f64).into(),
            ],
        )
        .unwrap();
        db.insert("has_pet", vec![rng.gen_range(1..=n_students as i64).into(), id.into()]).unwrap();
    }
}

fn pet_type(kind: &str) -> KnowledgeAtom {
    KnowledgeAtom::new(
        &format!("{} owners", kind.to_lowercase()),
        KnowledgeKind::CaseSensitivity,
        SqlCondition::new("pets", "pettype", "=", kind),
        SqlCondition::new("pets", "pettype", "=", kind.to_lowercase()),
    )
}

fn questions(config: &CorpusConfig) -> Vec<RawQuestion> {
    let mut out = Vec::new();
    out.push(
        QuestionBuilder::new("How many students are there?")
            .select("COUNT(*)")
            .from("student")
            .build(),
    );
    out.push(
        QuestionBuilder::new("What is the average age of all students?")
            .select(format!("AVG({})", col("student", "age")))
            .from("student")
            .build(),
    );
    out.push(
        QuestionBuilder::new("How many pets are older than 5 years?")
            .select("COUNT(*)")
            .from("pets")
            .filter(cond("pets", "pet_age", ">", 5))
            .build(),
    );
    out.push(
        QuestionBuilder::new("What is the maximum weight of any pet?")
            .select(format!("MAX({})", col("pets", "weight")))
            .from("pets")
            .build(),
    );
    out.push(
        QuestionBuilder::new("How many students own at least one pet?")
            .select(format!("COUNT(DISTINCT {})", col("has_pet", "stuid")))
            .from("has_pet")
            .build(),
    );
    for major in MAJORS.iter().take(config.scaled(4, 2)) {
        out.push(
            QuestionBuilder::new(format!("How many students major in {major}?"))
                .select("COUNT(*)")
                .from("student")
                .filter(cond("student", "major", "=", *major))
                .build(),
        );
    }
    out.push(
        QuestionBuilder::new("How many students younger than 22 own a pet?")
            .select(format!("COUNT(DISTINCT {})", col("student", "stuid")))
            .from("student")
            .join("has_pet", on_eq("has_pet", "stuid", "student", "stuid"))
            .filter(cond("student", "age", "<", 22))
            .build(),
    );
    out.push(
        QuestionBuilder::new("For each major, how many students does it have?")
            .select(format!("{}, COUNT(*)", col("student", "major")))
            .from("student")
            .group_by(col("student", "major"))
            .build(),
    );
    for kind in PET_TYPES.iter().take(config.scaled(3, 2)) {
        out.push(
            QuestionBuilder::new(format!("How many students are {} owners?", kind.to_lowercase()))
                .select(format!("COUNT(DISTINCT {})", col("has_pet", "stuid")))
                .from("has_pet")
                .join("pets", on_eq("has_pet", "petid", "pets", "petid"))
                .filter_atom(pet_type(kind))
                .build(),
        );
    }
    out.push(
        QuestionBuilder::new("What is the average weight of pets owned by students older than 24?")
            .select(format!("AVG({})", col("pets", "weight")))
            .from("pets")
            .join("has_pet", on_eq("has_pet", "petid", "pets", "petid"))
            .join("student", on_eq("has_pet", "stuid", "student", "stuid"))
            .filter(cond("student", "age", ">", 24))
            .difficulty(0.4)
            .build(),
    );
    out
}

/// Builds the pets_1 domain.
pub fn build(config: &CorpusConfig) -> DomainData {
    let mut db = Database::from_schema(schema());
    populate(&mut db, config);
    DomainData { database: db, questions: questions(config) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pet_has_an_owner_row() {
        let data = build(&CorpusConfig::tiny());
        let pets = data.database.table("pets").unwrap().len();
        let owners = data.database.table("has_pet").unwrap().len();
        assert_eq!(pets, owners);
    }
}
