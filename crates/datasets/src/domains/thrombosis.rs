//! The `thrombosis_prediction` domain (patient, laboratory) — the source of the
//! paper's domain-knowledge example (hematocrit normal range, Table III).

use rand::Rng;

use seed_llm::{KnowledgeAtom, KnowledgeKind, SqlCondition};
use seed_sqlengine::{ColumnDef, DataType, Database, DatabaseSchema, ForeignKey, TableSchema};

use super::{domain_rng, DomainData};
use crate::template::{col, cond, on_eq, QuestionBuilder, RawQuestion};
use crate::CorpusConfig;

fn schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("thrombosis_prediction");
    s.add_table(TableSchema::new(
        "patient",
        vec![
            ColumnDef::new("ID", DataType::Integer).primary_key(),
            ColumnDef::new("SEX", DataType::Text)
                .described("patient sex")
                .with_values("'F' stands for female, 'M' stands for male"),
            ColumnDef::new("Birthday", DataType::Date).described("patient birth date"),
            ColumnDef::new("Admission", DataType::Text)
                .described("admission status")
                .with_values("'+' means the patient was admitted to the hospital, '-' means followed as an outpatient"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "laboratory",
        vec![
            ColumnDef::new("lab_id", DataType::Integer).primary_key(),
            ColumnDef::new("ID", DataType::Integer).described("patient ID"),
            ColumnDef::new("Date", DataType::Date).described("examination date"),
            ColumnDef::new("HCT", DataType::Real)
                .described("hematocrit level")
                .with_values("Normal range: 29 < N < 52"),
            ColumnDef::new("GLU", DataType::Real)
                .described("blood glucose")
                .with_values("Normal range: N < 180"),
            ColumnDef::new("WBC", DataType::Real)
                .described("white blood cell count")
                .with_values("Normal range: 3.5 < N < 9.0"),
        ],
    ))
    .unwrap();
    s.add_foreign_key(ForeignKey {
        from_table: "laboratory".into(),
        from_column: "ID".into(),
        to_table: "patient".into(),
        to_column: "ID".into(),
    });
    s
}

fn populate(db: &mut Database, config: &CorpusConfig) {
    let mut rng = domain_rng(config, 0x7b05);
    let n_patients = config.scaled(90, 20);
    let mut lab_id = 0i64;
    for i in 0..n_patients {
        let id = i as i64 + 1;
        let sex = if rng.gen_bool(0.55) { "F" } else { "M" };
        let year = 1930 + rng.gen_range(0..60);
        let admission = if rng.gen_bool(0.4) { "+" } else { "-" };
        db.insert(
            "patient",
            vec![
                id.into(),
                sex.into(),
                format!("{year}-{:02}-{:02}", rng.gen_range(1..=12), rng.gen_range(1..=28)).into(),
                admission.into(),
            ],
        )
        .unwrap();
        for _ in 0..rng.gen_range(1..5) {
            lab_id += 1;
            let hct = rng.gen_range(25.0..60.0f64);
            let glu = rng.gen_range(70.0..260.0f64);
            let wbc = rng.gen_range(2.0..14.0f64);
            db.insert(
                "laboratory",
                vec![
                    lab_id.into(),
                    id.into(),
                    format!("199{}-{:02}-10", rng.gen_range(0..10), rng.gen_range(1..=12)).into(),
                    hct.into(),
                    glu.into(),
                    wbc.into(),
                ],
            )
            .unwrap();
        }
    }
}

fn hct_high() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "hematocrit level exceeded the normal range",
        KnowledgeKind::DomainThreshold,
        SqlCondition::new("laboratory", "HCT", ">=", 52),
        SqlCondition::new("laboratory", "HCT", ">", 100),
    )
}

fn glu_high() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "blood glucose above the normal range",
        KnowledgeKind::DomainThreshold,
        SqlCondition::new("laboratory", "GLU", ">=", 180),
        SqlCondition::new("laboratory", "GLU", ">", 500),
    )
}

fn wbc_low() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "white blood cell count below the normal range",
        KnowledgeKind::DomainThreshold,
        SqlCondition::new("laboratory", "WBC", "<", 3.5),
        SqlCondition::new("laboratory", "WBC", "<", 1.0),
    )
}

fn female() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "female patients",
        KnowledgeKind::Synonym,
        SqlCondition::new("patient", "SEX", "=", "F"),
        SqlCondition::new("patient", "SEX", "=", "female"),
    )
}

fn admitted() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "admitted to the hospital",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("patient", "Admission", "=", "+"),
        SqlCondition::new("patient", "Admission", "=", "yes"),
    )
}

fn questions(config: &CorpusConfig) -> Vec<RawQuestion> {
    let mut out = Vec::new();
    out.push(
        QuestionBuilder::new(
            "Name the IDs of patients with two or more laboratory examinations whose hematocrit level exceeded the normal range.",
        )
        .select(col("patient", "ID"))
        .from("patient")
        .join("laboratory", on_eq("laboratory", "ID", "patient", "ID"))
        .filter_atom(hct_high())
        .group_by(col("patient", "ID"))
        .having("COUNT(*) >= 2")
        .build(),
    );
    out.push(
        QuestionBuilder::new(
            "How many laboratory examinations show a hematocrit level exceeded the normal range?",
        )
        .select("COUNT(*)")
        .from("laboratory")
        .filter_atom(hct_high())
        .build(),
    );
    out.push(
        QuestionBuilder::new(
            "How many laboratory examinations report blood glucose above the normal range?",
        )
        .select("COUNT(*)")
        .from("laboratory")
        .filter_atom(glu_high())
        .build(),
    );
    out.push(
        QuestionBuilder::new(
            "How many laboratory tests show a white blood cell count below the normal range?",
        )
        .select("COUNT(*)")
        .from("laboratory")
        .filter_atom(wbc_low())
        .build(),
    );
    out.push(
        QuestionBuilder::new("How many female patients were admitted to the hospital?")
            .select("COUNT(*)")
            .from("patient")
            .filter_atom(female())
            .filter_atom(admitted())
            .build(),
    );
    out.push(
        QuestionBuilder::new(
            "How many distinct female patients have a laboratory test with blood glucose above the normal range?",
        )
        .select(format!("COUNT(DISTINCT {})", col("patient", "ID")))
        .from("patient")
        .join("laboratory", on_eq("laboratory", "ID", "patient", "ID"))
        .filter_atom(female())
        .filter_atom(glu_high())
        .build(),
    );
    for year in [1950i64, 1965] {
        out.push(
            QuestionBuilder::new(format!(
                "How many patients born after {year} were admitted to the hospital?"
            ))
            .select("COUNT(*)")
            .from("patient")
            .filter(cond("patient", "Birthday", ">", format!("{year}-12-31")))
            .filter_atom(admitted())
            .build(),
        );
    }
    out.push(
        QuestionBuilder::new(
            "What is the average blood glucose of patients admitted to the hospital?",
        )
        .select(format!("AVG({})", col("laboratory", "GLU")))
        .from("patient")
        .join("laboratory", on_eq("laboratory", "ID", "patient", "ID"))
        .filter_atom(admitted())
        .build(),
    );
    out.push(
        QuestionBuilder::new(
            "List the IDs of patients whose hematocrit level exceeded the normal range, ordered by ID.",
        )
        .select(col("laboratory", "ID"))
        .distinct()
        .from("laboratory")
        .filter_atom(hct_high())
        .order_by(col("laboratory", "ID"))
        .build(),
    );
    let _ = config;
    out
}

/// Builds the thrombosis_prediction domain.
pub fn build(config: &CorpusConfig) -> DomainData {
    let mut db = Database::from_schema(schema());
    populate(&mut db, config);
    DomainData { database: db, questions: questions(config) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{execute, Value};

    #[test]
    fn normal_range_threshold_separates_results() {
        let data = build(&CorpusConfig::tiny());
        let correct = execute(
            &data.database,
            "SELECT COUNT(*) FROM laboratory WHERE `laboratory`.`HCT` >= 52",
        )
        .unwrap();
        let naive = execute(
            &data.database,
            "SELECT COUNT(*) FROM laboratory WHERE `laboratory`.`HCT` > 100",
        )
        .unwrap();
        let c = correct.rows[0][0].as_i64().unwrap();
        let n = naive.rows[0][0].as_i64().unwrap();
        assert!(c > 0);
        assert_eq!(n, 0);
        let _ = Value::Integer(0);
    }
}
