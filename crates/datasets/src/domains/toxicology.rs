//! The `toxicology` domain (molecule, atom, bond) — the source of the paper's
//! double-bond / element-code examples (Tables I and III).

use rand::Rng;

use seed_llm::{KnowledgeAtom, KnowledgeKind, SqlCondition};
use seed_sqlengine::{ColumnDef, DataType, Database, DatabaseSchema, ForeignKey, TableSchema};

use super::{domain_rng, weighted_index, DomainData};
use crate::template::{col, cond, on_eq, QuestionBuilder, RawQuestion};
use crate::CorpusConfig;

const ELEMENTS: &[(&str, &str)] = &[
    ("c", "Carbon"),
    ("h", "Hydrogen"),
    ("o", "Oxygen"),
    ("n", "Nitrogen"),
    ("cl", "Chlorine"),
    ("s", "Sulfur"),
    ("p", "Phosphorus"),
    ("br", "Bromine"),
];
const BOND_TYPES: &[&str] = &["-", "=", "#"];

fn schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("toxicology");
    s.add_table(TableSchema::new(
        "molecule",
        vec![
            ColumnDef::new("molecule_id", DataType::Text).primary_key(),
            ColumnDef::new("label", DataType::Text)
                .described("whether the molecule is carcinogenic")
                .with_values("'+' means the molecule is carcinogenic, '-' means it is not"),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "atom",
        vec![
            ColumnDef::new("atom_id", DataType::Integer).primary_key(),
            ColumnDef::new("molecule_id", DataType::Text),
            ColumnDef::new("element", DataType::Text)
                .described("chemical element of the atom")
                .with_values(
                    "element = 'cl' means Chlorine; 'c' means Carbon; 'h' means Hydrogen; 'o' means Oxygen; \
                     's' means Sulfur; 'n' means Nitrogen; 'p' means Phosphorus; 'br' means Bromine",
                ),
        ],
    ))
    .unwrap();
    s.add_table(TableSchema::new(
        "bond",
        vec![
            ColumnDef::new("bond_id", DataType::Integer).primary_key(),
            ColumnDef::new("molecule_id", DataType::Text),
            ColumnDef::new("bond_type", DataType::Text)
                .described("type of the chemical bond")
                .with_values("'-' means single bond, '=' means double bond, '#' means triple bond"),
        ],
    ))
    .unwrap();
    for t in ["atom", "bond"] {
        s.add_foreign_key(ForeignKey {
            from_table: t.into(),
            from_column: "molecule_id".into(),
            to_table: "molecule".into(),
            to_column: "molecule_id".into(),
        });
    }
    s
}

fn populate(db: &mut Database, config: &CorpusConfig) {
    let mut rng = domain_rng(config, 0x70c);
    let n_mol = config.scaled(60, 15);
    let mut atom_id = 0i64;
    let mut bond_id = 0i64;
    for i in 0..n_mol {
        let mid = format!("TR{:03}", i + 1);
        let label = if rng.gen_bool(0.45) { "+" } else { "-" };
        db.insert("molecule", vec![mid.clone().into(), label.into()]).unwrap();
        for _ in 0..rng.gen_range(3..8) {
            atom_id += 1;
            let el = ELEMENTS
                [weighted_index(&mut rng, &[0.3, 0.3, 0.12, 0.1, 0.06, 0.05, 0.04, 0.03])]
            .0;
            db.insert("atom", vec![atom_id.into(), mid.clone().into(), el.into()]).unwrap();
        }
        for _ in 0..rng.gen_range(2..7) {
            bond_id += 1;
            let bt = BOND_TYPES[weighted_index(&mut rng, &[0.6, 0.3, 0.1])];
            db.insert("bond", vec![bond_id.into(), mid.clone().into(), bt.into()]).unwrap();
        }
    }
}

fn double_bond() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "double bond",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("bond", "bond_type", "=", "="),
        SqlCondition::new("bond", "bond_type", "=", "double"),
    )
}

fn triple_bond() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "triple bond",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("bond", "bond_type", "=", "#"),
        SqlCondition::new("bond", "bond_type", "=", "triple"),
    )
}

fn carcinogenic() -> KnowledgeAtom {
    KnowledgeAtom::new(
        "carcinogenic",
        KnowledgeKind::ValueIllustration,
        SqlCondition::new("molecule", "label", "=", "+"),
        SqlCondition::new("molecule", "label", "=", "yes"),
    )
}

fn element(code: &str, name: &str) -> KnowledgeAtom {
    KnowledgeAtom::new(
        &name.to_lowercase(),
        KnowledgeKind::Synonym,
        SqlCondition::new("atom", "element", "=", code),
        SqlCondition::new("atom", "element", "=", name.to_lowercase()),
    )
}

fn questions(config: &CorpusConfig) -> Vec<RawQuestion> {
    let mut out = Vec::new();
    for mid in ["TR001", "TR005", "TR010"] {
        out.push(
            QuestionBuilder::new(format!("List all the elements of atoms in molecule {mid} whose molecule has a double bond."))
                .select(col("atom", "element"))
                .distinct()
                .from("atom")
                .join("bond", on_eq("bond", "molecule_id", "atom", "molecule_id"))
                .filter(cond("atom", "molecule_id", "=", mid))
                .filter_atom(double_bond())
                .build(),
        );
    }
    out.push(
        QuestionBuilder::new("How many molecules are carcinogenic?")
            .select("COUNT(*)")
            .from("molecule")
            .filter_atom(carcinogenic())
            .build(),
    );
    out.push(
        QuestionBuilder::new("How many bonds in carcinogenic molecules are a double bond?")
            .select("COUNT(*)")
            .from("bond")
            .join("molecule", on_eq("bond", "molecule_id", "molecule", "molecule_id"))
            .filter_atom(carcinogenic())
            .filter_atom(double_bond())
            .build(),
    );
    out.push(
        QuestionBuilder::new("How many bonds are a triple bond?")
            .select("COUNT(*)")
            .from("bond")
            .filter_atom(triple_bond())
            .build(),
    );
    for (code, name) in ELEMENTS.iter().take(config.scaled(6, 4)) {
        out.push(
            QuestionBuilder::new(format!("How many atoms are {}?", name.to_lowercase()))
                .select("COUNT(*)")
                .from("atom")
                .filter_atom(element(code, name))
                .build(),
        );
    }
    out.push(
        QuestionBuilder::new("How many carcinogenic molecules contain chlorine?")
            .select(format!("COUNT(DISTINCT {})", col("molecule", "molecule_id")))
            .from("molecule")
            .join("atom", on_eq("atom", "molecule_id", "molecule", "molecule_id"))
            .filter_atom(carcinogenic())
            .filter_atom(element("cl", "Chlorine"))
            .build(),
    );
    out.push(
        QuestionBuilder::new("Which molecule id has the most atoms of carbon?")
            .select(col("atom", "molecule_id"))
            .from("atom")
            .filter_atom(element("c", "Carbon"))
            .group_by(col("atom", "molecule_id"))
            .order_by("COUNT(*) DESC")
            .limit(1)
            .build(),
    );
    out
}

/// Builds the toxicology domain.
pub fn build(config: &CorpusConfig) -> DomainData {
    let mut db = Database::from_schema(schema());
    populate(&mut db, config);
    DomainData { database: db, questions: questions(config) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::{execute, Value};

    #[test]
    fn bond_type_codes_are_symbols() {
        let data = build(&CorpusConfig::tiny());
        let eq =
            execute(&data.database, "SELECT COUNT(*) FROM bond WHERE `bond`.`bond_type` = '='")
                .unwrap();
        assert!(matches!(eq.rows[0][0], Value::Integer(n) if n > 0));
        let word = execute(
            &data.database,
            "SELECT COUNT(*) FROM bond WHERE `bond`.`bond_type` = 'double'",
        )
        .unwrap();
        assert_eq!(word.rows[0][0], Value::Integer(0));
    }
}
