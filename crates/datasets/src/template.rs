//! Question-template machinery: a small builder that assembles gold SQL in the
//! canonical form the simulated models rewrite (conditions rendered exactly as
//! [`seed_llm::SqlCondition::to_sql`] renders them).

use seed_llm::{KnowledgeAtom, SqlCondition};
use seed_sqlengine::Value;

/// A question produced by a domain module, before split assignment and
/// evidence-defect injection.
#[derive(Debug, Clone)]
pub struct RawQuestion {
    pub text: String,
    pub gold_sql: String,
    pub atoms: Vec<KnowledgeAtom>,
    pub difficulty: f64,
}

/// Builder for a single question's gold SQL.
#[derive(Debug, Clone)]
pub struct QuestionBuilder {
    text: String,
    select: String,
    distinct: bool,
    from: String,
    joins: Vec<(String, String)>,
    conditions: Vec<String>,
    group_by: Option<String>,
    having: Option<String>,
    order_by: Option<String>,
    limit: Option<u64>,
    atoms: Vec<KnowledgeAtom>,
    difficulty: f64,
}

impl QuestionBuilder {
    /// Starts a question with its natural-language text.
    pub fn new(text: impl Into<String>) -> Self {
        QuestionBuilder {
            text: text.into(),
            select: "*".to_string(),
            distinct: false,
            from: String::new(),
            joins: Vec::new(),
            conditions: Vec::new(),
            group_by: None,
            having: None,
            order_by: None,
            limit: None,
            atoms: Vec::new(),
            difficulty: 0.15,
        }
    }

    /// Sets the projection list.
    pub fn select(mut self, select: impl Into<String>) -> Self {
        self.select = select.into();
        self
    }

    /// Marks the projection as DISTINCT.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Sets the FROM table.
    pub fn from(mut self, table: impl Into<String>) -> Self {
        self.from = table.into();
        self
    }

    /// Adds an inner join (`table`, `on` condition SQL). Raises difficulty.
    pub fn join(mut self, table: impl Into<String>, on: impl Into<String>) -> Self {
        self.joins.push((table.into(), on.into()));
        self.difficulty += 0.12;
        self
    }

    /// Adds a plain WHERE condition (already-rendered SQL).
    pub fn filter(mut self, condition: impl Into<String>) -> Self {
        self.conditions.push(condition.into());
        self
    }

    /// Adds a WHERE condition pinned by a knowledge atom: the atom's *correct*
    /// condition is rendered into the gold SQL verbatim, and the atom is
    /// attached to the question's requirements.
    pub fn filter_atom(mut self, atom: KnowledgeAtom) -> Self {
        self.conditions.push(atom.correct.to_sql());
        self.atoms.push(atom);
        self
    }

    /// Adds GROUP BY. Raises difficulty.
    pub fn group_by(mut self, expr: impl Into<String>) -> Self {
        self.group_by = Some(expr.into());
        self.difficulty += 0.1;
        self
    }

    /// Adds HAVING. Raises difficulty.
    pub fn having(mut self, expr: impl Into<String>) -> Self {
        self.having = Some(expr.into());
        self.difficulty += 0.12;
        self
    }

    /// Adds ORDER BY.
    pub fn order_by(mut self, expr: impl Into<String>) -> Self {
        self.order_by = Some(expr.into());
        self
    }

    /// Adds LIMIT.
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Overrides the computed difficulty.
    pub fn difficulty(mut self, d: f64) -> Self {
        self.difficulty = d;
        self
    }

    /// Renders the gold SQL.
    pub fn gold_sql(&self) -> String {
        let mut sql = String::from("SELECT ");
        if self.distinct {
            sql.push_str("DISTINCT ");
        }
        sql.push_str(&self.select);
        sql.push_str(" FROM ");
        sql.push_str(&self.from);
        for (table, on) in &self.joins {
            sql.push_str(&format!(" INNER JOIN {table} ON {on}"));
        }
        if !self.conditions.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&self.conditions.join(" AND "));
        }
        if let Some(g) = &self.group_by {
            sql.push_str(&format!(" GROUP BY {g}"));
        }
        if let Some(h) = &self.having {
            sql.push_str(&format!(" HAVING {h}"));
        }
        if let Some(o) = &self.order_by {
            sql.push_str(&format!(" ORDER BY {o}"));
        }
        if let Some(l) = self.limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        sql
    }

    /// Finalizes the question.
    pub fn build(self) -> RawQuestion {
        let gold_sql = self.gold_sql();
        RawQuestion {
            text: self.text,
            gold_sql,
            atoms: self.atoms,
            difficulty: self.difficulty.clamp(0.05, 0.9),
        }
    }
}

/// Shorthand for a rendered, qualified condition: `` `table`.`column` op value ``.
pub fn cond(table: &str, column: &str, op: &str, value: impl Into<Value>) -> String {
    SqlCondition::new(table, column, op, value).to_sql()
}

/// Shorthand for a qualified column reference `` `table`.`column` ``.
pub fn col(table: &str, column: &str) -> String {
    format!("`{table}`.`{column}`")
}

/// Shorthand for an equi-join predicate between two qualified columns.
pub fn on_eq(t1: &str, c1: &str, t2: &str, c2: &str) -> String {
    format!("{} = {}", col(t1, c1), col(t2, c2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_llm::KnowledgeKind;

    #[test]
    fn builder_renders_full_query() {
        let atom = KnowledgeAtom::new(
            "weekly issuance",
            KnowledgeKind::ValueIllustration,
            SqlCondition::new("account", "frequency", "=", "POPLATEK TYDNE"),
            SqlCondition::new("account", "frequency", "=", "weekly"),
        );
        let q = QuestionBuilder::new(
            "Among the weekly issuance accounts, how many have a loan under 200000?",
        )
        .select("COUNT(*)")
        .from("account")
        .join("loan", on_eq("loan", "account_id", "account", "account_id"))
        .filter_atom(atom.clone())
        .filter(cond("loan", "amount", "<", 200_000))
        .build();
        assert!(q.gold_sql.contains("INNER JOIN loan"));
        assert!(
            q.gold_sql.contains(&atom.correct.to_sql()),
            "gold SQL embeds the canonical condition"
        );
        assert!(q.gold_sql.contains("`loan`.`amount` < 200000"));
        assert_eq!(q.atoms.len(), 1);
        assert!(q.difficulty > 0.2);
    }

    #[test]
    fn helpers_render_expected_sql() {
        assert_eq!(cond("client", "gender", "=", "F"), "`client`.`gender` = 'F'");
        assert_eq!(col("schools", "Magnet"), "`schools`.`Magnet`");
        assert_eq!(
            on_eq("satscores", "cds", "schools", "CDSCode"),
            "`satscores`.`cds` = `schools`.`CDSCode`"
        );
    }

    #[test]
    fn group_having_order_limit_render() {
        let q = QuestionBuilder::new("q")
            .select("`loan`.`account_id`, COUNT(*)")
            .from("loan")
            .group_by("`loan`.`account_id`")
            .having("COUNT(*) >= 2")
            .order_by("COUNT(*) DESC")
            .limit(3)
            .build();
        assert!(q.gold_sql.ends_with(
            "GROUP BY `loan`.`account_id` HAVING COUNT(*) >= 2 ORDER BY COUNT(*) DESC LIMIT 3"
        ));
    }

    #[test]
    fn difficulty_is_clamped() {
        let q = QuestionBuilder::new("q").from("t").difficulty(5.0).build();
        assert!(q.difficulty <= 0.9);
        let q = QuestionBuilder::new("q").from("t").difficulty(-1.0).build();
        assert!(q.difficulty >= 0.05);
    }
}
