//! Assembly of the Spider-like corpus: schema-only domains (no description
//! files, no human evidence), with dev and test splits.

use crate::domains::{spider_domains, DomainData};
use crate::evidence::EvidenceRecord;
use crate::{Benchmark, CorpusConfig, Question, Split};

/// Builds the Spider-like benchmark.
///
/// Questions alternate between the dev and test splits; a third of each
/// domain's templates also lands in train so few-shot selection has a pool,
/// mirroring how Spider's train set is used by ICL baselines.
pub fn build_spider(config: &CorpusConfig) -> Benchmark {
    let mut databases = Vec::new();
    let mut questions = Vec::new();

    for (name, builder) in spider_domains() {
        let DomainData { database, questions: raw } = builder(config);
        databases.push(database);
        for (i, rq) in raw.into_iter().enumerate() {
            let split = match i % 4 {
                0 => Split::Train,
                1 | 2 => Split::Dev,
                _ => Split::Test,
            };
            questions.push(Question {
                id: format!("{name}-{i:04}"),
                db_id: name.to_string(),
                text: rq.text,
                gold_sql: rq.gold_sql,
                atoms: rq.atoms,
                difficulty: rq.difficulty,
                human_evidence: EvidenceRecord::none(),
                split,
            });
        }
    }

    Benchmark { name: "spider".to_string(), databases, questions, has_descriptions: false }
}

/// Synthesizes description files for the Spider databases, the step the paper
/// performs with DeepSeek-V3 (§IV-E-3). The synthetic generator inspects each
/// column's distinct values and writes a value-description line listing them,
/// which is exactly the information SEED's evidence generation needs.
pub fn synthesize_descriptions(benchmark: &mut Benchmark) {
    for db in &mut benchmark.databases {
        let table_names = db.table_names();
        let mut updates: Vec<(String, String, String)> = Vec::new();
        for tname in &table_names {
            let table = db.table(tname).expect("table exists");
            for col in &table.schema.columns {
                if col.data_type == seed_sqlengine::DataType::Text {
                    if let Ok(values) = table.distinct_values(&col.name, 8) {
                        if !values.is_empty() {
                            let listing = values
                                .iter()
                                .map(|v| format!("'{}'", v.render()))
                                .collect::<Vec<_>>()
                                .join(", ");
                            updates.push((
                                tname.clone(),
                                col.name.clone(),
                                format!("observed values include {listing}"),
                            ));
                        }
                    }
                }
            }
        }
        // Apply updates to the schema metadata.
        let schema = db.schema().clone();
        let mut new_schema = schema.clone();
        for (t, c, desc) in updates {
            if let Some(table) = new_schema.tables.iter_mut().find(|x| x.name == t) {
                if let Some(col) = table.columns.iter_mut().find(|x| x.name == c) {
                    col.value_description = desc;
                }
            }
        }
        // Rebuild the database with the enriched schema but the same rows.
        let mut rebuilt = seed_sqlengine::Database::from_schema(new_schema);
        for tname in &table_names {
            let rows = db.table(tname).unwrap().rows().to_vec();
            rebuilt.insert_many(tname, rows).unwrap();
        }
        *db = rebuilt;
    }
    benchmark.has_descriptions = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::execute;

    #[test]
    fn spider_has_dev_and_test_splits_and_no_evidence() {
        let s = build_spider(&CorpusConfig::tiny());
        assert_eq!(s.databases.len(), 2);
        assert!(!s.has_descriptions);
        assert!(!s.split(Split::Dev).is_empty());
        assert!(!s.split(Split::Test).is_empty());
        for q in &s.questions {
            assert!(!q.human_evidence.is_present());
        }
    }

    #[test]
    fn spider_gold_sql_executes() {
        let s = build_spider(&CorpusConfig::tiny());
        for q in &s.questions {
            let db = s.database(&q.db_id).unwrap();
            assert!(execute(db, &q.gold_sql).is_ok(), "{}: {}", q.id, q.gold_sql);
        }
    }

    #[test]
    fn description_synthesis_adds_value_listings() {
        let mut s = build_spider(&CorpusConfig::tiny());
        synthesize_descriptions(&mut s);
        assert!(s.has_descriptions);
        let db = s.database("concert_singer").unwrap();
        let col = db.schema().table("singer").unwrap().column("country").unwrap();
        assert!(col.value_description.contains("observed values include"));
        // Rows survive the rebuild.
        assert!(!db.table("singer").unwrap().is_empty());
    }
}
