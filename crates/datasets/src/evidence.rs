//! Human-evidence records and the defect injection that reproduces the
//! paper's audit of the BIRD development set (Figure 2, Tables I and II).

use rand::rngs::StdRng;
use rand::Rng;

use seed_llm::{KnowledgeAtom, SqlCondition};
use seed_sqlengine::Value;

/// The defect categories the paper's audit found in BIRD evidence (§I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvidenceErrorType {
    IncorrectCalculation,
    Typo,
    UnnecessaryInformation,
    CaseSensitivity,
    InvalidDateFormat,
    IncorrectSchemaSelection,
    InvalidValueMapping,
    ComparisonOperatorMisuse,
}

impl EvidenceErrorType {
    /// All error types in a stable order.
    pub fn all() -> [EvidenceErrorType; 8] {
        [
            EvidenceErrorType::IncorrectCalculation,
            EvidenceErrorType::Typo,
            EvidenceErrorType::UnnecessaryInformation,
            EvidenceErrorType::CaseSensitivity,
            EvidenceErrorType::InvalidDateFormat,
            EvidenceErrorType::IncorrectSchemaSelection,
            EvidenceErrorType::InvalidValueMapping,
            EvidenceErrorType::ComparisonOperatorMisuse,
        ]
    }

    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            EvidenceErrorType::IncorrectCalculation => "incorrect calculation",
            EvidenceErrorType::Typo => "typo",
            EvidenceErrorType::UnnecessaryInformation => "unnecessary information",
            EvidenceErrorType::CaseSensitivity => "case-sensitivity issue",
            EvidenceErrorType::InvalidDateFormat => "invalid date format",
            EvidenceErrorType::IncorrectSchemaSelection => "incorrect schema selection",
            EvidenceErrorType::InvalidValueMapping => "invalid value mapping",
            EvidenceErrorType::ComparisonOperatorMisuse => "comparison operator misuse",
        }
    }
}

/// Whether an evidence record is sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvidenceStatus {
    /// Correct and complete.
    Correct,
    /// The question shipped with no evidence at all (9.65 % of BIRD dev).
    Missing,
    /// The evidence is present but defective (6.84 % of BIRD dev).
    Erroneous(EvidenceErrorType),
}

/// The evidence attached to a question by the benchmark, plus the corrected
/// version used by the Table II before/after experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceRecord {
    /// Evidence as shipped (possibly empty or defective).
    pub text: String,
    /// Soundness status.
    pub status: EvidenceStatus,
    /// Manually corrected evidence (equals `text` when already correct).
    pub corrected: String,
}

impl EvidenceRecord {
    /// A correct record.
    pub fn correct(text: impl Into<String>) -> Self {
        let text = text.into();
        EvidenceRecord { corrected: text.clone(), text, status: EvidenceStatus::Correct }
    }

    /// The empty record used for Spider questions (no evidence concept at all).
    pub fn none() -> Self {
        EvidenceRecord {
            text: String::new(),
            corrected: String::new(),
            status: EvidenceStatus::Missing,
        }
    }

    /// True if the record ships usable (non-empty) evidence text.
    pub fn is_present(&self) -> bool {
        !self.text.trim().is_empty()
    }
}

/// Paper-measured rates on the BIRD development set.
pub const MISSING_RATE: f64 = 0.0965;
/// Paper-measured rate of erroneous evidence on the BIRD development set.
pub const ERRONEOUS_RATE: f64 = 0.0684;

/// Builds the human evidence for a question given its atoms, injecting the
/// BIRD defect distribution.
///
/// * With probability [`MISSING_RATE`] the record is missing.
/// * With probability [`ERRONEOUS_RATE`] one atom's sentence is corrupted with
///   a randomly chosen [`EvidenceErrorType`].
/// * Otherwise the record is the canonical, correct evidence.
pub fn make_human_evidence(atoms: &[KnowledgeAtom], rng: &mut StdRng) -> EvidenceRecord {
    let correct_text = atoms.iter().map(|a| a.evidence_sentence()).collect::<Vec<_>>().join("; ");
    if atoms.is_empty() {
        return EvidenceRecord::correct(correct_text);
    }
    let roll: f64 = rng.gen();
    if roll < MISSING_RATE {
        return EvidenceRecord {
            text: String::new(),
            status: EvidenceStatus::Missing,
            corrected: correct_text,
        };
    }
    if roll < MISSING_RATE + ERRONEOUS_RATE {
        let error = EvidenceErrorType::all()[rng.gen_range(0..8usize)];
        let corrupted = corrupt_evidence(atoms, error, rng);
        return EvidenceRecord {
            text: corrupted,
            status: EvidenceStatus::Erroneous(error),
            corrected: correct_text,
        };
    }
    EvidenceRecord::correct(correct_text)
}

/// Produces a defective rendering of the evidence for `atoms` with the given
/// error type (used both by the corpus builder and by the Table I generator).
pub fn corrupt_evidence(
    atoms: &[KnowledgeAtom],
    error: EvidenceErrorType,
    rng: &mut StdRng,
) -> String {
    let victim_idx = rng.gen_range(0..atoms.len());
    let mut sentences: Vec<String> = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        if i != victim_idx {
            sentences.push(atom.evidence_sentence());
            continue;
        }
        sentences.push(corrupt_atom_sentence(atom, error, rng));
    }
    if error == EvidenceErrorType::UnnecessaryInformation {
        // The Table I sample: a correct clause drowned in irrelevant mappings.
        for i in 0..10 {
            sentences.push(format!("element = 'x{i}' means Element{i}"));
        }
    }
    sentences.join("; ")
}

fn corrupt_atom_sentence(
    atom: &KnowledgeAtom,
    error: EvidenceErrorType,
    _rng: &mut StdRng,
) -> String {
    let c = &atom.correct;
    let wrong = match error {
        EvidenceErrorType::UnnecessaryInformation => c.clone(),
        EvidenceErrorType::CaseSensitivity => SqlCondition {
            value: match &c.value {
                Value::Text(s) => Value::Text(flip_case(s)),
                other => other.clone(),
            },
            ..c.clone()
        },
        EvidenceErrorType::Typo => SqlCondition {
            value: match &c.value {
                Value::Text(s) => Value::Text(introduce_typo(s)),
                Value::Integer(i) => Value::Integer(i + 1),
                Value::Real(r) => Value::Real(r + 1.0),
                Value::Null => Value::Null,
            },
            ..c.clone()
        },
        EvidenceErrorType::IncorrectCalculation => SqlCondition {
            value: match &c.value {
                Value::Integer(i) => Value::Integer(i * 10),
                Value::Real(r) => Value::Real(r * 10.0),
                other => other.clone(),
            },
            ..c.clone()
        },
        EvidenceErrorType::InvalidDateFormat => SqlCondition {
            value: match &c.value {
                Value::Text(s) if s.contains('-') => Value::Text(s.replace('-', "/")),
                Value::Text(s) => Value::Text(format!("{s}/01/01")),
                other => other.clone(),
            },
            ..c.clone()
        },
        EvidenceErrorType::IncorrectSchemaSelection => atom.naive.clone(),
        EvidenceErrorType::InvalidValueMapping => SqlCondition {
            value: match &c.value {
                Value::Text(s) => Value::Text(format!("{s}_X")),
                Value::Integer(i) => Value::Integer(i.wrapping_neg()),
                Value::Real(r) => Value::Real(-r),
                Value::Null => Value::Null,
            },
            ..c.clone()
        },
        EvidenceErrorType::ComparisonOperatorMisuse => SqlCondition {
            op: match c.op.as_str() {
                ">" => "<".to_string(),
                ">=" => "<=".to_string(),
                "<" => ">".to_string(),
                "<=" => ">=".to_string(),
                "=" => "!=".to_string(),
                other => other.to_string(),
            },
            ..c.clone()
        },
    };
    format!("{} refers to {}", atom.phrase, wrong.to_short_sql())
}

fn flip_case(s: &str) -> String {
    if s.chars().next().is_some_and(|c| c.is_uppercase()) {
        s.to_lowercase()
    } else {
        let mut chars = s.chars();
        match chars.next() {
            Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
            None => String::new(),
        }
    }
}

fn introduce_typo(s: &str) -> String {
    if s.len() < 2 {
        return format!("{s}x");
    }
    // Drop the second character.
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i != 1 {
            out.push(ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seed_llm::KnowledgeKind;

    fn atom() -> KnowledgeAtom {
        KnowledgeAtom::new(
            "restricted",
            KnowledgeKind::CaseSensitivity,
            SqlCondition::new("legalities", "status", "=", "Restricted"),
            SqlCondition::new("legalities", "status", "=", "restricted"),
        )
    }

    #[test]
    fn defect_rates_match_paper_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(7);
        let atoms = vec![atom()];
        let n = 5_000;
        let mut missing = 0;
        let mut erroneous = 0;
        for _ in 0..n {
            match make_human_evidence(&atoms, &mut rng).status {
                EvidenceStatus::Missing => missing += 1,
                EvidenceStatus::Erroneous(_) => erroneous += 1,
                EvidenceStatus::Correct => {}
            }
        }
        let missing_rate = missing as f64 / n as f64;
        let erroneous_rate = erroneous as f64 / n as f64;
        assert!((missing_rate - MISSING_RATE).abs() < 0.02, "missing {missing_rate}");
        assert!((erroneous_rate - ERRONEOUS_RATE).abs() < 0.02, "erroneous {erroneous_rate}");
    }

    #[test]
    fn case_sensitivity_corruption_flips_case() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = corrupt_evidence(&[atom()], EvidenceErrorType::CaseSensitivity, &mut rng);
        assert!(text.contains("'restricted'"), "{text}");
    }

    #[test]
    fn operator_corruption_flips_comparison() {
        use seed_llm::KnowledgeKind;
        let a = KnowledgeAtom::new(
            "exceeded the normal range",
            KnowledgeKind::DomainThreshold,
            SqlCondition::new("laboratory", "HCT", ">=", 52),
            SqlCondition::new("laboratory", "HCT", ">", 100),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let text = corrupt_evidence(&[a], EvidenceErrorType::ComparisonOperatorMisuse, &mut rng);
        assert!(text.contains("HCT <= 52"), "{text}");
    }

    #[test]
    fn unnecessary_information_keeps_correct_clause() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = corrupt_evidence(&[atom()], EvidenceErrorType::UnnecessaryInformation, &mut rng);
        assert!(text.contains("'Restricted'"));
        assert!(text.matches("means Element").count() >= 10);
    }

    #[test]
    fn corrected_always_holds_canonical_text() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let rec = make_human_evidence(&[atom()], &mut rng);
            assert_eq!(rec.corrected, "restricted refers to status = 'Restricted'");
            if rec.status == EvidenceStatus::Correct {
                assert_eq!(rec.text, rec.corrected);
            }
        }
    }

    #[test]
    fn no_atoms_means_trivially_correct_and_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let rec = make_human_evidence(&[], &mut rng);
        assert_eq!(rec.status, EvidenceStatus::Correct);
        assert!(!rec.is_present());
        assert!(EvidenceRecord::none().text.is_empty());
    }

    #[test]
    fn error_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            EvidenceErrorType::all().iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), 8);
    }
}
