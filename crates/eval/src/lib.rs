//! # seed-eval
//!
//! Evaluation harness for the SEED reproduction: the execution-accuracy (EX)
//! and valid-efficiency-score (VES) metrics used by BIRD/Spider, the evidence
//! error analysis behind the paper's Figure 2, and the experiment runners that
//! regenerate every results table.

pub mod error_analysis;
pub mod metrics;
pub mod report;
pub mod runner;

pub use error_analysis::{analyze_evidence_defects, DefectBreakdown, ExecutionHealth};
pub use metrics::{evaluate_pair, evaluate_pair_cached, score_set, PairEval, Scores};
pub use report::{columnar_health_line, execution_stats_block, Table};
pub use runner::{EvidenceSetting, ExperimentRunner, SeedEvidenceCache, SystemScores};
