//! Plain-text table rendering for the experiment harnesses.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a metric with the paper's `value (Δ)` convention.
pub fn delta(value: f64, baseline: f64) -> String {
    let diff = value - baseline;
    let arrow = if diff >= 0.0 { "↑" } else { "↓" };
    format!("{value:.2} ({arrow}{:.2})", diff.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["model", "EX%"]);
        t.row(vec!["SFT CodeS-15B".into(), "44.39".into()]);
        t.row(vec!["C3".into(), "82.0".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_has_header_separator() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        Table::new("x", &["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn delta_formats_both_directions() {
        assert_eq!(delta(56.26, 54.69), "56.26 (↑1.57)");
        assert_eq!(delta(54.11, 54.69), "54.11 (↓0.58)");
    }
}
