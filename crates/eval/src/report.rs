//! Plain-text table rendering for the experiment harnesses.

use seed_sqlengine::ExecStats;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Renders a run's merged [`ExecStats`] as a titled block, one counter per
/// line via the engine's `Display` impl (every counter in declaration
/// order, cost last), followed by a one-line columnar-health summary — the
/// fallback counters an error analysis cares about, called out explicitly.
pub fn execution_stats_block(title: &str, stats: &ExecStats) -> String {
    format!("== {title} ==\n{stats}\n{}\n", columnar_health_line(stats))
}

/// One-line summary of how much of the run left the vectorized path.
pub fn columnar_health_line(stats: &ExecStats) -> String {
    if stats.columnar_fallbacks == 0 && stats.columnar_partial == 0 {
        "columnar: fully vectorized (no fallbacks)".to_string()
    } else {
        format!(
            "columnar: {} full fallback(s), {} partially bridged statement(s)",
            stats.columnar_fallbacks, stats.columnar_partial
        )
    }
}

/// Formats a metric with the paper's `value (Δ)` convention.
pub fn delta(value: f64, baseline: f64) -> String {
    let diff = value - baseline;
    let arrow = if diff >= 0.0 { "↑" } else { "↓" };
    format!("{value:.2} ({arrow}{:.2})", diff.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["model", "EX%"]);
        t.row(vec!["SFT CodeS-15B".into(), "44.39".into()]);
        t.row(vec!["C3".into(), "82.0".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_has_header_separator() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        Table::new("x", &["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn delta_formats_both_directions() {
        assert_eq!(delta(56.26, 54.69), "56.26 (↑1.57)");
        assert_eq!(delta(54.11, 54.69), "54.11 (↓0.58)");
    }

    #[test]
    fn execution_stats_block_uses_the_engine_display() {
        let stats = ExecStats { rows_scanned: 7, columnar_fallbacks: 2, ..ExecStats::default() };
        let block = execution_stats_block("run totals", &stats);
        assert!(block.contains("== run totals =="));
        // The engine Display lists every counter by name plus the cost line.
        assert!(block.contains("rows_scanned"));
        assert!(block.contains("decorrelated_probes"));
        assert!(block.contains("cost"));
        assert!(block.contains("2 full fallback(s)"));
        let clean = execution_stats_block("clean", &ExecStats::default());
        assert!(clean.contains("fully vectorized"));
    }
}
