//! Evidence defect analysis (paper Figure 2 and Table I).

use std::collections::BTreeMap;

use seed_datasets::{EvidenceErrorType, EvidenceStatus, Question};

/// Breakdown of evidence soundness over a question set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DefectBreakdown {
    pub total: usize,
    pub correct: usize,
    pub missing: usize,
    pub erroneous: usize,
    /// Erroneous count per error type, keyed by label.
    pub by_error_type: BTreeMap<String, usize>,
}

impl DefectBreakdown {
    pub fn correct_rate(&self) -> f64 {
        percentage(self.correct, self.total)
    }
    pub fn missing_rate(&self) -> f64 {
        percentage(self.missing, self.total)
    }
    pub fn erroneous_rate(&self) -> f64 {
        percentage(self.erroneous, self.total)
    }
}

fn percentage(part: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64 * 100.0
    }
}

/// Computes the defect breakdown for a set of questions (normally the BIRD dev
/// split), considering only questions that actually require knowledge.
pub fn analyze_evidence_defects<'a>(
    questions: impl IntoIterator<Item = &'a Question>,
) -> DefectBreakdown {
    let mut out = DefectBreakdown::default();
    for q in questions {
        if q.atoms.is_empty() {
            continue;
        }
        out.total += 1;
        match q.human_evidence.status {
            EvidenceStatus::Correct => out.correct += 1,
            EvidenceStatus::Missing => out.missing += 1,
            EvidenceStatus::Erroneous(e) => {
                out.erroneous += 1;
                *out.by_error_type.entry(e.label().to_string()).or_insert(0) += 1;
            }
        }
    }
    out
}

/// Picks sample defective questions, one per error type, for the Table I harness.
pub fn defect_examples<'a>(
    questions: impl IntoIterator<Item = &'a Question>,
) -> Vec<(&'a Question, EvidenceErrorType)> {
    let mut seen: Vec<EvidenceErrorType> = Vec::new();
    let mut out = Vec::new();
    for q in questions {
        if let EvidenceStatus::Erroneous(e) = q.human_evidence.status {
            if !seen.contains(&e) {
                seen.push(e);
                out.push((q, e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_datasets::{bird::build_bird, CorpusConfig, Split};

    #[test]
    fn breakdown_rates_sum_to_one_hundred() {
        let bench = build_bird(&CorpusConfig::default());
        let b = analyze_evidence_defects(bench.split(Split::Dev));
        assert!(b.total > 60);
        let sum = b.correct_rate() + b.missing_rate() + b.erroneous_rate();
        assert!((sum - 100.0).abs() < 1e-6);
        assert_eq!(b.erroneous, b.by_error_type.values().sum::<usize>());
    }

    #[test]
    fn rates_are_near_the_paper_measurements() {
        let bench = build_bird(&CorpusConfig::default());
        let b = analyze_evidence_defects(bench.split(Split::Dev));
        // Paper: 9.65 % missing, 6.84 % erroneous. A synthetic corpus of a few
        // hundred questions lands within a few points of that.
        assert!((b.missing_rate() - 9.65).abs() < 2.0, "missing {:.2}%", b.missing_rate());
        assert!((b.erroneous_rate() - 6.84).abs() < 2.0, "erroneous {:.2}%", b.erroneous_rate());
    }

    #[test]
    fn defect_examples_cover_multiple_types() {
        let bench = build_bird(&CorpusConfig::default());
        let examples = defect_examples(bench.split(Split::Dev));
        assert!(examples.len() >= 3);
    }

    #[test]
    fn empty_set_is_all_zero() {
        let b = analyze_evidence_defects(std::iter::empty());
        assert_eq!(b, DefectBreakdown::default());
        assert_eq!(b.correct_rate(), 0.0);
    }
}
