//! Evidence defect analysis (paper Figure 2 and Table I), plus the
//! execution-layer health breakdown surfaced alongside it.

use std::collections::BTreeMap;

use seed_datasets::{EvidenceErrorType, EvidenceStatus, Question};
use seed_sqlengine::ExecStats;

use crate::report::Table;

/// Breakdown of evidence soundness over a question set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DefectBreakdown {
    pub total: usize,
    pub correct: usize,
    pub missing: usize,
    pub erroneous: usize,
    /// Erroneous count per error type, keyed by label.
    pub by_error_type: BTreeMap<String, usize>,
}

impl DefectBreakdown {
    pub fn correct_rate(&self) -> f64 {
        percentage(self.correct, self.total)
    }
    pub fn missing_rate(&self) -> f64 {
        percentage(self.missing, self.total)
    }
    pub fn erroneous_rate(&self) -> f64 {
        percentage(self.erroneous, self.total)
    }
}

fn percentage(part: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64 * 100.0
    }
}

/// Computes the defect breakdown for a set of questions (normally the BIRD dev
/// split), considering only questions that actually require knowledge.
pub fn analyze_evidence_defects<'a>(
    questions: impl IntoIterator<Item = &'a Question>,
) -> DefectBreakdown {
    let mut out = DefectBreakdown::default();
    for q in questions {
        if q.atoms.is_empty() {
            continue;
        }
        out.total += 1;
        match q.human_evidence.status {
            EvidenceStatus::Correct => out.correct += 1,
            EvidenceStatus::Missing => out.missing += 1,
            EvidenceStatus::Erroneous(e) => {
                out.erroneous += 1;
                *out.by_error_type.entry(e.label().to_string()).or_insert(0) += 1;
            }
        }
    }
    out
}

/// Execution-layer health of an eval run, distilled from the run's merged
/// [`ExecStats`]: how much of the work stayed on the vectorized columnar
/// path and how often it had to bridge back to the row machinery. Surfaced
/// in the error-analysis report next to the evidence defect breakdown —
/// a high fallback share means the serving-mode numbers are really
/// measuring the row executor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionHealth {
    /// Statements the columnar executor abandoned wholesale for the row
    /// pipeline (subqueries, outer references, other unvectorized shapes).
    pub columnar_fallbacks: u64,
    /// Statements that stayed columnar but bridged individual operators or
    /// expressions through the row machinery.
    pub columnar_partial: u64,
    /// Batches the vectorized operators actually moved.
    pub batches_built: u64,
    /// Rows carried inside those batches.
    pub batch_rows: u64,
}

impl ExecutionHealth {
    /// Extracts the columnar-health counters from a run's merged stats.
    pub fn from_stats(stats: &ExecStats) -> Self {
        ExecutionHealth {
            columnar_fallbacks: stats.columnar_fallbacks,
            columnar_partial: stats.columnar_partial,
            batches_built: stats.batches_built,
            batch_rows: stats.batch_rows,
        }
    }

    /// True when every statement executed fully vectorized.
    pub fn fully_vectorized(&self) -> bool {
        self.columnar_fallbacks == 0 && self.columnar_partial == 0
    }

    /// Renders the health counters as a report table (one counter per row),
    /// ready for [`Table::render`] / [`Table::render_markdown`].
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["counter", "value"]);
        t.row(vec!["columnar_fallbacks".into(), self.columnar_fallbacks.to_string()]);
        t.row(vec!["columnar_partial".into(), self.columnar_partial.to_string()]);
        t.row(vec!["batches_built".into(), self.batches_built.to_string()]);
        t.row(vec!["batch_rows".into(), self.batch_rows.to_string()]);
        t
    }
}

/// Picks sample defective questions, one per error type, for the Table I harness.
pub fn defect_examples<'a>(
    questions: impl IntoIterator<Item = &'a Question>,
) -> Vec<(&'a Question, EvidenceErrorType)> {
    let mut seen: Vec<EvidenceErrorType> = Vec::new();
    let mut out = Vec::new();
    for q in questions {
        if let EvidenceStatus::Erroneous(e) = q.human_evidence.status {
            if !seen.contains(&e) {
                seen.push(e);
                out.push((q, e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_datasets::{bird::build_bird, CorpusConfig, Split};

    #[test]
    fn breakdown_rates_sum_to_one_hundred() {
        let bench = build_bird(&CorpusConfig::default());
        let b = analyze_evidence_defects(bench.split(Split::Dev));
        assert!(b.total > 60);
        let sum = b.correct_rate() + b.missing_rate() + b.erroneous_rate();
        assert!((sum - 100.0).abs() < 1e-6);
        assert_eq!(b.erroneous, b.by_error_type.values().sum::<usize>());
    }

    #[test]
    fn rates_are_near_the_paper_measurements() {
        let bench = build_bird(&CorpusConfig::default());
        let b = analyze_evidence_defects(bench.split(Split::Dev));
        // Paper: 9.65 % missing, 6.84 % erroneous. A synthetic corpus of a few
        // hundred questions lands within a few points of that.
        assert!((b.missing_rate() - 9.65).abs() < 2.0, "missing {:.2}%", b.missing_rate());
        assert!((b.erroneous_rate() - 6.84).abs() < 2.0, "erroneous {:.2}%", b.erroneous_rate());
    }

    #[test]
    fn defect_examples_cover_multiple_types() {
        let bench = build_bird(&CorpusConfig::default());
        let examples = defect_examples(bench.split(Split::Dev));
        assert!(examples.len() >= 3);
    }

    #[test]
    fn empty_set_is_all_zero() {
        let b = analyze_evidence_defects(std::iter::empty());
        assert_eq!(b, DefectBreakdown::default());
        assert_eq!(b.correct_rate(), 0.0);
    }

    #[test]
    fn execution_health_surfaces_columnar_fallbacks() {
        use seed_sqlengine::{execute_statement, execute_with_stats_mode, Database, PlanMode};
        let mut db = Database::new("health");
        execute_statement(&mut db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)").unwrap();
        for i in 0..10i64 {
            execute_statement(&mut db, &format!("INSERT INTO t VALUES ({i}, {i}.5)")).unwrap();
        }
        // A vectorizable aggregate stays columnar end to end.
        let (_, vectorized) =
            execute_with_stats_mode(&db, "SELECT COUNT(*) FROM t WHERE v > 3", PlanMode::Columnar)
                .unwrap();
        let clean = ExecutionHealth::from_stats(&vectorized);
        assert!(clean.fully_vectorized());
        assert!(clean.batches_built > 0, "the columnar path actually ran");
        // A subquery forces the executor off the batch path; the health
        // breakdown must surface that.
        let (_, bridged) = execute_with_stats_mode(
            &db,
            "SELECT id FROM t WHERE v > (SELECT AVG(v) FROM t)",
            PlanMode::Columnar,
        )
        .unwrap();
        let health = ExecutionHealth::from_stats(&bridged);
        assert!(!health.fully_vectorized());
        assert!(health.columnar_fallbacks + health.columnar_partial > 0);
        let rendered = health.table("Execution health").render();
        assert!(rendered.contains("columnar_fallbacks"));
        assert!(rendered.contains("columnar_partial"));
        assert!(rendered.contains("batch_rows"));
    }
}
