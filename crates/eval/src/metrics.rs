//! Execution accuracy (EX) and valid efficiency score (VES).
//!
//! EX compares the execution result of the predicted query against the gold
//! query's result (multiset, order-insensitive). VES additionally weights each
//! correct prediction by `sqrt(gold_cost / predicted_cost)`, rewarding queries
//! that do the same work more cheaply — the paper uses wall-clock time on
//! SQLite; the reproduction uses the engine's deterministic cost counters
//! ([`seed_sqlengine::ExecStats`]), which preserves the ranking behaviour
//! without timing noise.

use seed_sqlengine::{
    execute_with_stats_mode, Database, ExecStats, PlanMode, ResultSet, SharedPlanCache, SqlResult,
};

/// Evaluation of one (gold, predicted) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairEval {
    /// Whether the predicted query produced the gold result.
    pub correct: bool,
    /// Whether the predicted query executed at all.
    pub valid: bool,
    /// Cost of the gold query.
    pub gold_cost: f64,
    /// Cost of the predicted query (equals `gold_cost` when invalid, so the
    /// VES contribution is simply zero via `correct`).
    pub pred_cost: f64,
}

impl PairEval {
    /// The VES reward for this pair: `sqrt(gold/pred)` when correct, else 0.
    pub fn ves_reward(&self) -> f64 {
        if self.correct && self.pred_cost > 0.0 {
            (self.gold_cost / self.pred_cost).sqrt()
        } else {
            0.0
        }
    }
}

/// Evaluates one predicted query against the gold query. Executes under
/// [`PlanMode::serving`] (the vectorized columnar pipeline), like the cached
/// path, so both report costs from the same execution mode.
pub fn evaluate_pair(db: &Database, gold_sql: &str, pred_sql: &str) -> PairEval {
    evaluate_pair_impl(
        |sql| execute_with_stats_mode(db, sql, PlanMode::serving()),
        gold_sql,
        pred_sql,
    )
    .0
}

/// Like [`evaluate_pair`], but executes through a [`SharedPlanCache`], so
/// gold queries repeated across an eval run (one execution per system ×
/// setting) parse and plan once per run instead of once per evaluation.
///
/// The returned [`ExecStats`] merges the gold and predicted executions'
/// stats ([`ExecStats::merge`]), letting runners aggregate run totals
/// without double counting. The [`PairEval`] is identical to the uncached
/// path: plan reuse changes only the cache observability counters, which
/// [`ExecStats::cost`] — and therefore EX/VES — never reads.
pub fn evaluate_pair_cached(
    db: &Database,
    plans: &SharedPlanCache,
    gold_sql: &str,
    pred_sql: &str,
) -> (PairEval, ExecStats) {
    evaluate_pair_impl(|sql| plans.execute(db, sql, PlanMode::serving()), gold_sql, pred_sql)
}

fn evaluate_pair_impl(
    mut run: impl FnMut(&str) -> SqlResult<(ResultSet, ExecStats)>,
    gold_sql: &str,
    pred_sql: &str,
) -> (PairEval, ExecStats) {
    let mut work = ExecStats::default();
    let (gold_rs, gold_stats) = match run(gold_sql) {
        Ok(x) => x,
        Err(_) => {
            // A broken gold query would be a corpus bug; treat the pair as wrong.
            return (
                PairEval { correct: false, valid: false, gold_cost: 1.0, pred_cost: 1.0 },
                work,
            );
        }
    };
    work.merge(&gold_stats);
    let gold_cost = gold_stats.cost();
    let pair = match run(pred_sql) {
        Ok((pred_rs, pred_stats)) => {
            work.merge(&pred_stats);
            PairEval {
                correct: pred_rs.result_eq(&gold_rs),
                valid: true,
                gold_cost,
                pred_cost: pred_stats.cost(),
            }
        }
        Err(_) => PairEval { correct: false, valid: false, gold_cost, pred_cost: gold_cost },
    };
    (pair, work)
}

/// Aggregate scores over a question set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Scores {
    /// Execution accuracy, in percent.
    pub ex: f64,
    /// Valid efficiency score, in percent.
    pub ves: f64,
    /// Number of evaluated questions.
    pub n: usize,
}

/// Aggregates pair evaluations into EX% and VES%.
pub fn score_set(pairs: &[PairEval]) -> Scores {
    if pairs.is_empty() {
        return Scores::default();
    }
    let n = pairs.len();
    let ex = pairs.iter().filter(|p| p.correct).count() as f64 / n as f64 * 100.0;
    let ves = pairs.iter().map(|p| p.ves_reward()).sum::<f64>() / n as f64 * 100.0;
    Scores { ex, ves, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_sqlengine::execute_statement;

    fn db() -> Database {
        let mut d = Database::new("t");
        execute_statement(&mut d, "CREATE TABLE x (id INTEGER, v TEXT)").unwrap();
        execute_statement(&mut d, "INSERT INTO x VALUES (1,'a'),(2,'b'),(3,'a')").unwrap();
        d
    }

    #[test]
    fn identical_queries_are_correct_with_unit_reward() {
        let d = db();
        let p = evaluate_pair(&d, "SELECT COUNT(*) FROM x", "SELECT COUNT(*) FROM x");
        assert!(p.correct && p.valid);
        assert!((p.ves_reward() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn semantically_equivalent_queries_are_correct() {
        let d = db();
        let p = evaluate_pair(
            &d,
            "SELECT id FROM x WHERE v = 'a' ORDER BY id",
            "SELECT id FROM x WHERE v = 'a'",
        );
        assert!(p.correct, "order-insensitive comparison");
        assert!(p.ves_reward() >= 1.0, "cheaper query earns a reward >= 1");
    }

    #[test]
    fn wrong_and_invalid_queries_score_zero() {
        let d = db();
        let wrong =
            evaluate_pair(&d, "SELECT COUNT(*) FROM x", "SELECT COUNT(*) FROM x WHERE v = 'zzz'");
        assert!(!wrong.correct && wrong.valid);
        assert_eq!(wrong.ves_reward(), 0.0);
        let invalid = evaluate_pair(&d, "SELECT COUNT(*) FROM x", "SELECT nope FROM missing");
        assert!(!invalid.correct && !invalid.valid);
    }

    #[test]
    fn score_set_aggregates_percentages() {
        let d = db();
        let pairs = vec![
            evaluate_pair(&d, "SELECT COUNT(*) FROM x", "SELECT COUNT(*) FROM x"),
            evaluate_pair(&d, "SELECT COUNT(*) FROM x", "SELECT COUNT(*) FROM x WHERE 1 = 0"),
        ];
        let s = score_set(&pairs);
        assert_eq!(s.n, 2);
        assert!((s.ex - 50.0).abs() < 1e-9);
        assert!(s.ves > 0.0 && s.ves <= 60.0);
        assert_eq!(score_set(&[]), Scores::default());
    }

    #[test]
    fn ves_rewards_cheaper_correct_queries_more() {
        let d = db();
        let cheap = evaluate_pair(
            &d,
            "SELECT id FROM ( SELECT id, v FROM x ) AS s WHERE v = 'a'",
            "SELECT id FROM x WHERE v = 'a'",
        );
        assert!(cheap.correct);
        assert!(cheap.ves_reward() > 1.0);
    }
}
