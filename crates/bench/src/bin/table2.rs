//! Table II: CodeS performance on the erroneous-evidence pairs, before and
//! after manual correction of the evidence.

use seed_bench::{corpus_config, fmt_scores};
use seed_datasets::{bird::build_bird, EvidenceStatus, Split};
use seed_eval::{EvidenceSetting, ExperimentRunner, Table};
use seed_text2sql::CodeS;

fn main() {
    let bench = build_bird(&corpus_config());
    let runner = ExperimentRunner::new(&bench, Split::Dev);
    let erroneous = |q: &seed_datasets::Question| {
        matches!(q.human_evidence.status, EvidenceStatus::Erroneous(_))
    };

    let mut table = Table::new(
        "Table II: EX% on erroneous-evidence pairs, defective vs corrected evidence (paper: 44.76 -> 54.29 for 15B)",
        &["model", "defective evidence EX%", "corrected evidence EX%"],
    );
    for billions in [15u32, 7, 3, 1] {
        let system = CodeS::new(billions);
        let defective = runner.evaluate_filtered(&system, EvidenceSetting::BirdEvidence, erroneous);
        let corrected =
            runner.evaluate_filtered(&system, EvidenceSetting::BirdCorrected, erroneous);
        table.row(vec![
            system_label(billions),
            fmt_scores(&defective.scores).0,
            fmt_scores(&corrected.scores).0,
        ]);
    }
    println!("{}", table.render());
}

fn system_label(billions: u32) -> String {
    format!("SFT CodeS-{billions}B")
}
