//! Figure 3: the SEED_gpt and SEED_deepseek architectures, shown as the actual
//! stage trace each pipeline executes for one question.

use seed_bench::corpus_config;
use seed_core::{SeedPipeline, SeedVariant};
use seed_datasets::{bird::build_bird, Split};

fn main() {
    let bench = build_bird(&corpus_config());
    let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
    let q = bench
        .split(Split::Dev)
        .into_iter()
        .find(|q| q.db_id == "financial" && !q.atoms.is_empty())
        .expect("financial dev question");
    let db = bench.database(&q.db_id).unwrap();

    println!("== Figure 3: the structure of SEED ==\n");
    println!("question: {}\n", q.text);
    for variant in [SeedVariant::Gpt, SeedVariant::Deepseek] {
        let pipeline = SeedPipeline::new(variant);
        let out = pipeline.generate(q, db, &train, true);
        println!("--- {} ---", variant.label());
        for (i, stage) in out.trace.stages.iter().enumerate() {
            println!("  stage {}: {}", i + 1, stage);
        }
        println!("  prompt tokens (evidence generation): {}", out.trace.prompt_tokens);
        println!("  context overflow: {}", out.trace.context_overflow);
        println!("  evidence: {}\n", out.evidence);
    }
}
