//! Table III: the categories of BIRD evidence, with samples and the database
//! information source each can be derived from.

use seed_bench::corpus_config;
use seed_datasets::{bird::build_bird, Split};
use seed_llm::KnowledgeKind;

fn main() {
    let bench = build_bird(&corpus_config());
    let dev = bench.split(Split::Dev);
    println!("== Table III: evidence categories, samples, and information sources ==\n");
    for kind in KnowledgeKind::all() {
        let Some(q) = dev.iter().find(|q| q.atoms.iter().any(|a| a.kind == kind)) else {
            continue;
        };
        let atom = q.atoms.iter().find(|a| a.kind == kind).unwrap();
        let db = bench.database(&q.db_id).unwrap();
        let source = db
            .schema()
            .table(&atom.correct.table)
            .and_then(|t| t.column(&atom.correct.column))
            .map(|c| {
                if !c.value_description.is_empty() {
                    format!(
                        "description file: {}.csv — {}",
                        atom.correct.table, c.value_description
                    )
                } else {
                    format!(
                        "database value: SELECT DISTINCT {} FROM {}",
                        atom.correct.column, atom.correct.table
                    )
                }
            })
            .unwrap_or_else(|| "schema".to_string());
        println!("knowledge type    : {}", kind.label());
        println!("question          : {}", q.text);
        println!("evidence          : {}", atom.evidence_sentence());
        println!("information source: {}", source);
        println!();
    }
}
