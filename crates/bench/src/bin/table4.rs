//! Table IV: BIRD dev EX% and VES% for every baseline under four evidence
//! settings — no evidence, BIRD human evidence, SEED_gpt, SEED_deepseek.

use seed_bench::{corpus_config, fmt_scores};
use seed_core::SeedVariant;
use seed_datasets::{bird::build_bird, Split};
use seed_eval::{EvidenceSetting, ExperimentRunner, Table};
use seed_text2sql::{Chess, ChessConfig, CodeS, DailSql, RslSql, Text2SqlSystem, C3};

fn main() {
    let bench = build_bird(&corpus_config());
    let runner = ExperimentRunner::new(&bench, Split::Dev)
        .with_seed_variants(&[SeedVariant::Gpt, SeedVariant::Deepseek]);

    let systems: Vec<Box<dyn Text2SqlSystem>> = vec![
        Box::new(Chess::new(ChessConfig::IrCgUt)),
        Box::new(Chess::new(ChessConfig::IrSsCg)),
        Box::new(RslSql::new()),
        Box::new(CodeS::new(15)),
        Box::new(CodeS::new(7)),
        Box::new(DailSql::new()),
        Box::new(C3::new()),
    ];
    let settings = [
        EvidenceSetting::WithoutEvidence,
        EvidenceSetting::BirdEvidence,
        EvidenceSetting::SeedGpt,
        EvidenceSetting::SeedDeepseek,
    ];

    let mut ex_table = Table::new(
        "Table IV (dev EX%): no evidence vs BIRD evidence vs SEED",
        &["system", "w/o evidence", "w/ evidence", "w/ SEED_gpt", "w/ SEED_deepseek"],
    );
    let mut ves_table = Table::new(
        "Table IV (dev VES%): no evidence vs BIRD evidence vs SEED",
        &["system", "w/o evidence", "w/ evidence", "w/ SEED_gpt", "w/ SEED_deepseek"],
    );

    for system in &systems {
        let mut ex_row = vec![system.name()];
        let mut ves_row = vec![system.name()];
        for setting in settings {
            let scores = runner.evaluate(system.as_ref(), setting);
            let (ex, ves) = fmt_scores(&scores.scores);
            ex_row.push(ex);
            ves_row.push(ves);
        }
        ex_table.row(ex_row);
        ves_table.row(ves_row);
        eprintln!("finished {}", system.name());
    }

    println!("{}", ex_table.render());
    println!("{}", ves_table.render());
    println!("questions evaluated per cell: {}", runner.questions().len());
}
