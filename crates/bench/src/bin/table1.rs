//! Table I: samples of defective BIRD evidence with the corrected version.

use seed_bench::corpus_config;
use seed_datasets::{bird::build_bird, Split};
use seed_eval::error_analysis::defect_examples;

fn main() {
    let bench = build_bird(&corpus_config());
    let dev = bench.split(Split::Dev);
    println!("== Table I: error samples of BIRD development-set evidence ==\n");
    for (q, error) in defect_examples(dev).into_iter().take(6) {
        println!("error type       : {}", error.label());
        println!("question         : {}", q.text);
        println!(
            "evidence         : {}",
            if q.human_evidence.text.is_empty() { "(none)" } else { &q.human_evidence.text }
        );
        println!("revised evidence : {}", q.human_evidence.corrected);
        println!();
    }
}
