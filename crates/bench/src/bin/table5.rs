//! Table V: Spider dev/test EX% with and without SEED_gpt evidence.
//!
//! Spider ships no description files, so — as in the paper (§IV-E-3) — they
//! are synthesized before running SEED.

use seed_bench::{corpus_config, fmt_scores};
use seed_core::SeedVariant;
use seed_datasets::{spider::build_spider, spider::synthesize_descriptions, Split};
use seed_eval::{EvidenceSetting, ExperimentRunner, Table};
use seed_text2sql::{CodeS, Text2SqlSystem, C3};

fn main() {
    let mut bench = build_spider(&corpus_config());
    synthesize_descriptions(&mut bench);

    let systems: Vec<Box<dyn Text2SqlSystem>> =
        vec![Box::new(CodeS::new(15)), Box::new(CodeS::new(7)), Box::new(C3::new())];

    let mut table = Table::new(
        "Table V: Spider EX% without vs with SEED_gpt evidence",
        &["system", "dev w/o SEED", "dev w/ SEED_gpt", "test w/o SEED", "test w/ SEED_gpt"],
    );

    let dev_runner =
        ExperimentRunner::new(&bench, Split::Dev).with_seed_variants(&[SeedVariant::Gpt]);
    let test_runner =
        ExperimentRunner::new(&bench, Split::Test).with_seed_variants(&[SeedVariant::Gpt]);

    for system in &systems {
        let dev_plain = dev_runner.evaluate(system.as_ref(), EvidenceSetting::WithoutEvidence);
        let dev_seed = dev_runner.evaluate(system.as_ref(), EvidenceSetting::SeedGpt);
        let test_plain = test_runner.evaluate(system.as_ref(), EvidenceSetting::WithoutEvidence);
        let test_seed = test_runner.evaluate(system.as_ref(), EvidenceSetting::SeedGpt);
        table.row(vec![
            system.name(),
            fmt_scores(&dev_plain.scores).0,
            fmt_scores(&dev_seed.scores).0,
            fmt_scores(&test_plain.scores).0,
            fmt_scores(&test_seed.scores).0,
        ]);
        eprintln!("finished {}", system.name());
    }

    println!("{}", table.render());
    println!(
        "dev questions: {}, test questions: {}",
        dev_runner.questions().len(),
        test_runner.questions().len()
    );
}
