//! Table VI: qualitative comparison of BIRD evidence, SEED_deepseek evidence,
//! and the revised SEED evidence for a california_schools question.

use seed_bench::corpus_config;
use seed_core::{remove_join_information, SeedPipeline};
use seed_datasets::{bird::build_bird, Split};

fn main() {
    let bench = build_bird(&corpus_config());
    let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
    let q = bench
        .split(Split::Dev)
        .into_iter()
        .find(|q| q.db_id == "california_schools" && q.text.contains("SAT test takers"))
        .expect("schools question with SAT test takers exists");
    let db = bench.database(&q.db_id).unwrap();

    let deepseek = SeedPipeline::deepseek().generate(q, db, &train, true);
    let revised = remove_join_information(&deepseek.evidence);

    println!("== Table VI: BIRD vs SEED_deepseek vs revised evidence ==\n");
    println!("question        : {}\n", q.text);
    println!("BIRD evidence   : {}\n", q.human_evidence.text);
    println!("SEED_deepseek   : {}\n", deepseek.evidence);
    println!("SEED_revised    : {}\n", revised);
}
