//! Throughput harness for the `seed-serve` runtime: replays a join-heavy
//! gold-query workload through the pre-existing serial execution path and
//! through `Server::execute_batch` at 1/2/4/8 workers, verifying
//! byte-identical results and writing the numbers to `BENCH_serve.json`.
//!
//! The workload mirrors what the motivating ISSUE calls "many gold-query
//! executions at once": every join/subquery-bearing gold statement of both
//! corpora, repeated the way an eval run repeats gold queries across
//! systems and settings, submitted in a seeded-shuffled order. The serial
//! baseline is the path the repo used before the serving runtime existed —
//! a fresh parse + plan + execution per statement, no sharing of anything.
//! A no-repetition variant isolates the plan-cache effect from the
//! result-cache effect.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seed_bench::corpus_config;
use seed_datasets::{bird::build_bird, spider::build_spider, Benchmark};
use seed_serve::{ServeConfig, Server};
use seed_sqlengine::{execute_with_stats, Database, ResultSet};

/// How often each distinct statement repeats in the main workload (an eval
/// run executes each gold query once per system x setting combination; the
/// paper's tables sweep more than six).
const REPEATS: usize = 6;
/// Timed repetitions per configuration; the median is reported.
const SAMPLES: usize = 5;

struct DbWorkload {
    db: Arc<Database>,
    stmts: Vec<String>,
}

/// Join-heavy slice of a benchmark's gold queries: everything with a join
/// or a subquery, grouped per database, repeated and seed-shuffled.
fn workloads(bench: &Benchmark, repeats: usize) -> Vec<DbWorkload> {
    bench
        .databases
        .iter()
        .filter_map(|db| {
            let uniques: Vec<&str> = bench
                .questions
                .iter()
                .filter(|q| q.db_id == db.name())
                .map(|q| q.gold_sql.as_str())
                .filter(|sql| {
                    let upper = sql.to_ascii_uppercase();
                    upper.contains(" JOIN ") || upper.contains("(SELECT")
                })
                .collect();
            if uniques.is_empty() {
                return None;
            }
            let mut stmts: Vec<String> =
                (0..repeats).flat_map(|_| uniques.iter().map(|s| s.to_string())).collect();
            stmts.shuffle(&mut StdRng::seed_from_u64(0x5eed));
            Some(DbWorkload { db: Arc::new(db.clone()), stmts })
        })
        .collect()
}

/// The pre-serve execution path: every statement parses, plans, and
/// executes from scratch, strictly serially.
fn run_baseline(loads: &[DbWorkload]) -> Vec<Vec<ResultSet>> {
    loads
        .iter()
        .map(|w| {
            w.stmts
                .iter()
                .map(|sql| execute_with_stats(&w.db, sql).expect("gold query executes").0)
                .collect()
        })
        .collect()
}

/// One serving sweep: a fresh server per database (empty caches, the cold
/// path a new snapshot faces), batches executed with `workers`.
fn run_serve(loads: &[DbWorkload], workers: usize) -> (Vec<Vec<ResultSet>>, u64, u64) {
    let mut all = Vec::with_capacity(loads.len());
    let (mut hits, mut statements) = (0u64, 0u64);
    for w in loads {
        let server = Server::new(Arc::clone(&w.db), ServeConfig::default().with_workers(workers));
        let outcomes = server.execute_batch(&w.stmts);
        all.push(
            outcomes.into_iter().map(|o| o.expect("gold query serves").result).collect::<Vec<_>>(),
        );
        let stats = server.snapshot_stats();
        hits += stats.result_cache_hits;
        statements += stats.statements;
    }
    (all, hits, statements)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Times `f` SAMPLES times (after one warmup), returning the median
/// statements-per-second over `n` statements.
fn qps<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = f();
    let mut rates = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        out = f();
        rates.push(n as f64 / t.elapsed().as_secs_f64());
    }
    (median(rates), out)
}

fn main() {
    let config = corpus_config();
    let bird = build_bird(&config);
    let spider = build_spider(&config);

    let mut report_variants = Vec::new();
    for (variant, repeats) in [("repeated_x6", REPEATS), ("unique", 1)] {
        let mut loads = workloads(&bird, repeats);
        loads.extend(workloads(&spider, repeats));
        let total: usize = loads.iter().map(|w| w.stmts.len()).sum();

        let (baseline_qps, reference) = qps(total, || run_baseline(&loads));
        let mut worker_rows = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let (rate, (results, hits, statements)) = qps(total, || run_serve(&loads, workers));
            for (db_ref, db_served) in reference.iter().zip(&results) {
                for (r, s) in db_ref.iter().zip(db_served) {
                    assert_eq!(r.rows, s.rows, "serve diverged from the serial baseline");
                    assert_eq!(r.columns, s.columns);
                }
            }
            let speedup = rate / baseline_qps;
            println!(
                "{variant:>11} | workers={workers} | {rate:9.0} stmt/s | {speedup:4.2}x baseline \
                 | result-cache hits {hits}/{statements}"
            );
            worker_rows.push(format!(
                "    {{ \"workers\": {workers}, \"qps\": {rate:.0}, \"speedup_vs_serial\": {speedup:.2}, \"result_cache_hits\": {hits}, \"statements\": {statements} }}"
            ));
        }
        report_variants.push(format!(
            "  \"{variant}\": {{\n  \"statements\": {total},\n  \"serial_baseline_qps\": {baseline_qps:.0},\n  \"serve\": [\n{}\n  ]\n  }}",
            worker_rows.join(",\n")
        ));
    }

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"command\": \"cargo run --release -p seed-bench --bin serve_bench\",\n  \
         \"note\": \"Workload: every join/subquery gold query of both corpora (scale {:.2}), seeded-shuffled; 'repeated_x6' repeats each statement six times the way eval runs repeat gold queries across systems/settings. Serial baseline = the pre-serve path (fresh parse+plan+execute per statement). Serve = Server::execute_batch with shared plan+result caches; results verified byte-identical to the baseline for every statement at every worker count. Host exposes {} CPU(s) to this process, so worker scaling beyond the cache wins is not observable here; on multi-core hosts the worker pool adds wall-clock scaling on top.\",\n  \"available_parallelism\": {},\n{}\n}}\n",
        config.scale,
        cpus,
        cpus,
        report_variants.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
