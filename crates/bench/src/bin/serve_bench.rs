//! Throughput harness for the `seed-serve` runtime: replays gold-query
//! workloads through the pre-existing serial execution path and through
//! `Server::execute_batch` at 1/2/4/8 workers, verifying byte-identical
//! results and writing a per-worker-count scaling table to
//! `BENCH_serve.json`.
//!
//! Three workloads:
//!
//! * **repeated_x6** — every join/subquery-bearing gold statement of both
//!   corpora, each repeated six times (the way an eval run repeats gold
//!   queries across systems and settings), seeded-shuffled. Exercises the
//!   result cache and the in-flight dedup table.
//! * **unique** — the same statements with no repetition: every statement
//!   is a cache miss, isolating the serving overhead the caches cannot
//!   hide. The acceptance bar is <5% overhead vs the serial baseline.
//! * **skewed** — the statements sorted most-expensive-first (by measured
//!   engine cost) with a Zipf-style repeat count (rank r repeats
//!   ~12/(r+1)x): a few heavy, hot statements in front of a long cheap
//!   tail. Fixed per-worker chunking would hand one worker all the heavy
//!   statements; the pool's work-stealing cursor keeps everyone busy.
//!
//! The serial baseline is the path the repo used before the serving
//! runtime existed — a fresh parse + plan + execution per statement, no
//! sharing of anything. Timed regions cover statement execution only:
//! servers (and their persistent worker pools) are constructed before the
//! clock starts, mirroring a long-lived serving process where pool
//! startup is paid once, not per batch.
//!
//! Measurement: configurations are sampled in interleaved rounds — every
//! configuration once per round, [`SAMPLES`] rounds, in a fresh seeded
//! permutation each round — and each configuration reports its median
//! round, where one round sums [`PASSES`] fresh-server passes over the
//! workload. Sequential per-configuration sampling would let slow drift
//! in container throughput masquerade as a worker-count effect; a fixed
//! (or merely rotated) within-round order would let cache-warming
//! inheritance from a fixed predecessor do the same; and single-pass
//! rounds are short enough for one scheduler tick to swing them by
//! percents.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seed_bench::corpus_config;
use seed_datasets::{bird::build_bird, spider::build_spider, Benchmark};
use seed_serve::{ServeConfig, Server};
use seed_sqlengine::{execute_with_stats, Database, ResultSet};

/// How often each distinct statement repeats in the repeated workload (an
/// eval run executes each gold query once per system x setting
/// combination; the paper's tables sweep more than six).
const REPEATS: usize = 6;
/// Timed rounds per workload. Within a round every configuration is
/// measured once, in a fresh seeded permutation per round, and each
/// configuration reports its best round. The shared host's throughput
/// wanders between regimes by tens of percent on second timescales
/// (medians land anywhere in the mix), but it is bounded above by the
/// hardware ceiling — so the per-config maximum is the stable,
/// comparable statistic, and many short rounds give every configuration
/// plenty of draws inside the fast regime. Interleaving with per-round
/// permutations keeps drift and predecessor effects from reading as
/// worker-count effects.
const SAMPLES: usize = 100;
/// Workload passes summed into one timed sample. Kept at one: a short
/// sample is the most likely to land wholly inside the host's fast
/// regime, which is what the per-config maximum estimates.
const PASSES: usize = 1;
/// Worker counts swept for the serve path.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct DbWorkload {
    db: Arc<Database>,
    stmts: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Repeated,
    Unique,
    Skewed,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Repeated => "repeated_x6",
            Variant::Unique => "unique",
            Variant::Skewed => "skewed",
        }
    }
}

/// Join-heavy slice of a benchmark's gold queries: everything with a join
/// or a subquery, grouped per database, expanded per `variant`.
fn workloads(bench: &Benchmark, variant: Variant) -> Vec<DbWorkload> {
    bench
        .databases
        .iter()
        .filter_map(|db| {
            let uniques: Vec<&str> = bench
                .questions
                .iter()
                .filter(|q| q.db_id == db.name())
                .map(|q| q.gold_sql.as_str())
                .filter(|sql| {
                    let upper = sql.to_ascii_uppercase();
                    upper.contains(" JOIN ") || upper.contains("(SELECT")
                })
                .collect();
            if uniques.is_empty() {
                return None;
            }
            let stmts = match variant {
                Variant::Repeated => {
                    let mut stmts: Vec<String> =
                        (0..REPEATS).flat_map(|_| uniques.iter().map(|s| s.to_string())).collect();
                    stmts.shuffle(&mut StdRng::seed_from_u64(0x5eed));
                    stmts
                }
                Variant::Unique => uniques.iter().map(|s| s.to_string()).collect(),
                Variant::Skewed => {
                    // Most expensive statements first, Zipf-decaying repeat
                    // counts: rank r runs ~12/(r+1) times. Heavy statements
                    // cluster at the front — the adversarial order for
                    // fixed chunking, routine for a work-stealing cursor.
                    let mut by_cost: Vec<(&str, f64)> = uniques
                        .iter()
                        .map(|sql| {
                            let (_, stats) =
                                execute_with_stats(db, sql).expect("gold query executes");
                            (*sql, stats.cost())
                        })
                        .collect();
                    by_cost.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
                    by_cost
                        .iter()
                        .enumerate()
                        .flat_map(|(rank, (sql, _))| {
                            let repeats = (2 * REPEATS / (rank + 1)).max(1);
                            (0..repeats).map(move |_| sql.to_string())
                        })
                        .collect()
                }
            };
            Some(DbWorkload { db: Arc::new(db.clone()), stmts })
        })
        .collect()
}

/// The pre-serve execution path: every statement parses, plans, and
/// executes from scratch, strictly serially. Runs the workload
/// [`PASSES`] times; returns the summed timed seconds and the
/// per-statement results of the last pass.
fn run_baseline(loads: &[DbWorkload]) -> (f64, Vec<Vec<ResultSet>>) {
    let mut elapsed = 0.0;
    let mut results = Vec::new();
    for _ in 0..PASSES {
        let start = Instant::now();
        results = loads
            .iter()
            .map(|w| {
                w.stmts
                    .iter()
                    .map(|sql| execute_with_stats(&w.db, sql).expect("gold query executes").0)
                    .collect()
            })
            .collect();
        elapsed += start.elapsed().as_secs_f64();
    }
    (elapsed, results)
}

/// One serving sweep: [`PASSES`] passes, each over fresh servers per
/// database (empty caches, the cold path a new snapshot faces),
/// constructed — worker pool and all — before the clock starts. Only
/// `execute_batch` is timed; the summed seconds are returned.
fn run_serve(loads: &[DbWorkload], workers: usize) -> (f64, Vec<Vec<ResultSet>>, u64, u64) {
    let mut elapsed = 0.0;
    let mut all = Vec::new();
    let (mut hits, mut statements) = (0u64, 0u64);
    for pass in 0..PASSES {
        let servers: Vec<Server> = loads
            .iter()
            .map(|w| Server::new(Arc::clone(&w.db), ServeConfig::default().with_workers(workers)))
            .collect();
        let start = Instant::now();
        all = loads
            .iter()
            .zip(&servers)
            .map(|(w, server)| {
                server
                    .execute_batch(&w.stmts)
                    .into_iter()
                    .map(|o| o.expect("gold query serves").result)
                    .collect()
            })
            .collect();
        elapsed += start.elapsed().as_secs_f64();
        if pass == 0 {
            for server in &servers {
                let stats = server.snapshot_stats();
                hits += stats.result_cache_hits;
                statements += stats.statements;
            }
        }
    }
    (elapsed, all, hits, statements)
}

/// Best (fastest) statements-per-second over interleaved round timings
/// (each round serves `n` statements [`PASSES`] times).
fn peak_qps(n: usize, secs: &[f64]) -> f64 {
    let fastest = secs.iter().copied().fold(f64::INFINITY, f64::min);
    (n * PASSES) as f64 / fastest
}

fn main() {
    let config = corpus_config();
    let bird = build_bird(&config);
    let spider = build_spider(&config);

    let mut report_variants = Vec::new();
    for variant in [Variant::Repeated, Variant::Unique, Variant::Skewed] {
        let mut loads = workloads(&bird, variant);
        loads.extend(workloads(&spider, variant));
        let total: usize = loads.iter().map(|w| w.stmts.len()).sum();

        // Warmup round doubling as the correctness gate: every serve
        // configuration must return byte-identical rows to the baseline.
        let (_, reference) = run_baseline(&loads);
        let mut counters = Vec::new();
        for &workers in &WORKER_COUNTS {
            let (_, results, hits, statements) = run_serve(&loads, workers);
            for (db_ref, db_served) in reference.iter().zip(&results) {
                for (r, s) in db_ref.iter().zip(db_served) {
                    assert_eq!(r.rows, s.rows, "serve diverged from the serial baseline");
                    assert_eq!(r.columns, s.columns);
                }
            }
            counters.push((hits, statements));
        }

        // Timed rounds: every configuration once per round, in a fresh
        // seeded permutation each round. A fixed within-round order (or a
        // mere rotation, which keeps every configuration's predecessor
        // fixed) lets drift and cache-warming inheritance read as a
        // worker-count effect; independent permutations spread both
        // evenly.
        let configs = 1 + WORKER_COUNTS.len();
        let mut baseline_secs = Vec::with_capacity(SAMPLES);
        let mut serve_secs = vec![Vec::with_capacity(SAMPLES); WORKER_COUNTS.len()];
        let mut order: Vec<usize> = (0..configs).collect();
        for round in 0..SAMPLES {
            order.shuffle(&mut StdRng::seed_from_u64(0xbe9c4 + round as u64));
            for &slot in &order {
                match slot {
                    0 => baseline_secs.push(run_baseline(&loads).0),
                    s => serve_secs[s - 1].push(run_serve(&loads, WORKER_COUNTS[s - 1]).0),
                }
            }
        }

        let baseline_qps = peak_qps(total, &baseline_secs);
        // Worker counts whose effective batch fan-out coincides (the pool
        // never makes more than `available_parallelism` workers runnable)
        // serve through *identical* code paths, so their rounds are draws
        // from one distribution: pool them and report the pooled peak for
        // each such row — the tightest estimate available, and immune to
        // tie-breaking noise between configurations that cannot differ.
        let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut worker_rows = Vec::new();
        for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
            let fanout = workers.min(hardware);
            let pooled: Vec<f64> = WORKER_COUNTS
                .iter()
                .enumerate()
                .filter(|(_, &w)| w.min(hardware) == fanout)
                .flat_map(|(j, _)| serve_secs[j].iter().copied())
                .collect();
            let rate = peak_qps(total, &pooled);
            let (hits, statements) = counters[i];
            let speedup = rate / baseline_qps;
            println!(
                "{:>11} | workers={workers} | fanout={fanout} | {rate:9.0} stmt/s \
                 | {speedup:4.2}x baseline | result-cache hits {hits}/{statements}",
                variant.name()
            );
            worker_rows.push(format!(
                "    {{ \"workers\": {workers}, \"effective_fanout\": {fanout}, \"qps\": {rate:.0}, \"speedup_vs_serial\": {speedup:.2}, \"result_cache_hits\": {hits}, \"statements\": {statements} }}"
            ));
        }
        report_variants.push(format!(
            "  \"{}\": {{\n  \"statements\": {total},\n  \"serial_baseline_qps\": {baseline_qps:.0},\n  \"serve\": [\n{}\n  ]\n  }}",
            variant.name(),
            worker_rows.join(",\n")
        ));
    }

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"command\": \"cargo run --release -p seed-bench --bin serve_bench\",\n  \
         \"note\": \"Workloads over every join/subquery gold query of both corpora (scale {:.2}): 'repeated_x6' repeats each statement six times, seeded-shuffled (result-cache + in-flight-dedup path); 'unique' runs each statement once (pure serving overhead, every statement a miss); 'skewed' orders statements most-expensive-first with Zipf-decaying repeats (work-stealing balance check). Serial baseline = the pre-serve path (fresh parse+plan+execute per statement). Serve = Server::execute_batch over sharded plan/result caches with in-flight dedup; results verified byte-identical to the baseline for every statement at every worker count; result_cache_hits are exact (statements - distinct) by dedup. Servers (and their persistent worker pools) are constructed outside the timed region, as in a long-lived serving process. Configurations are timed in interleaved rounds (a fresh seeded permutation of baseline + every worker count, each round) and each reports its best round: the shared host's throughput wanders between regimes by tens of percent but is bounded above by the hardware ceiling, so per-configuration peaks are the stable, comparable statistic, and neither drift nor predecessor cache-warming can masquerade as a worker-count effect. Worker counts with the same effective_fanout (= min(workers, available_parallelism)) serve through identical code paths by construction, so their rounds are pooled into one shared peak. Host exposes {} CPU(s) to this process, so worker counts beyond 1 cannot add wall-clock scaling here; the bar on this host is that they no longer subtract it (no negative scaling). A batch wakes at most min(workers, statements, available_parallelism) pool threads — waking workers the CPU cannot run only costs futex round-trips and context switches — so on this host every worker count serves through the same single-runnable-worker path and differences between rows are measurement noise; on multi-core hosts the same configs fan out and add thread scaling.\",\n  \"available_parallelism\": {},\n{}\n}}\n",
        config.scale,
        cpus,
        cpus,
        report_variants.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
