//! Table VII: evidence-format sensitivity — CHESS and CodeS evaluated with
//! SEED_deepseek evidence vs the revised (join-information-free) evidence.

use seed_bench::{corpus_config, fmt_scores};
use seed_core::SeedVariant;
use seed_datasets::{bird::build_bird, Split};
use seed_eval::{EvidenceSetting, ExperimentRunner, Table};
use seed_text2sql::{Chess, ChessConfig, CodeS, Text2SqlSystem};

fn main() {
    let bench = build_bird(&corpus_config());
    let runner = ExperimentRunner::new(&bench, Split::Dev)
        .with_seed_variants(&[SeedVariant::Deepseek, SeedVariant::Revised]);

    let systems: Vec<Box<dyn Text2SqlSystem>> = vec![
        Box::new(Chess::new(ChessConfig::IrCgUt)),
        Box::new(CodeS::new(15)),
        Box::new(CodeS::new(7)),
    ];

    let mut ex_table = Table::new(
        "Table VII (dev EX%): SEED_deepseek vs SEED_revised",
        &["system", "w/o SEED", "w/ SEED_deepseek", "w/ SEED_revised"],
    );
    let mut ves_table = Table::new(
        "Table VII (dev VES%): SEED_deepseek vs SEED_revised",
        &["system", "w/o SEED", "w/ SEED_deepseek", "w/ SEED_revised"],
    );

    for system in &systems {
        let plain = runner.evaluate(system.as_ref(), EvidenceSetting::WithoutEvidence);
        let deepseek = runner.evaluate(system.as_ref(), EvidenceSetting::SeedDeepseek);
        let revised = runner.evaluate(system.as_ref(), EvidenceSetting::SeedRevised);
        ex_table.row(vec![
            system.name(),
            fmt_scores(&plain.scores).0,
            fmt_scores(&deepseek.scores).0,
            fmt_scores(&revised.scores).0,
        ]);
        ves_table.row(vec![
            system.name(),
            fmt_scores(&plain.scores).1,
            fmt_scores(&deepseek.scores).1,
            fmt_scores(&revised.scores).1,
        ]);
        eprintln!("finished {}", system.name());
    }

    println!("{}", ex_table.render());
    println!("{}", ves_table.render());
}
