//! Figure 1: the three problem-setting contracts (Spider, BIRD, SEED), printed
//! as the inputs each setting actually supplies to the text-to-SQL model in
//! this reproduction.

use seed_bench::corpus_config;
use seed_core::SeedPipeline;
use seed_datasets::{bird::build_bird, Split};

fn main() {
    let bench = build_bird(&corpus_config());
    let train: Vec<&seed_datasets::Question> = bench.split(Split::Train);
    let q = bench
        .split(Split::Dev)
        .into_iter()
        .find(|q| !q.atoms.is_empty() && q.human_evidence.is_present())
        .expect("dev question with evidence");
    let db = bench.database(&q.db_id).unwrap();

    println!("== Figure 1: assumptions of the text-to-SQL problem ==\n");
    println!("(a) Spider-style: user provides only the question");
    println!("    input  = question + database");
    println!("    question: {}\n", q.text);

    println!("(b) BIRD-style: user also provides hand-written evidence");
    println!("    input  = question + database + human evidence");
    println!("    evidence: {}\n", q.human_evidence.text);

    let seed = SeedPipeline::gpt().generate(q, db, &train, true);
    println!("(c) SEED: evidence is generated automatically from the database itself");
    println!("    input  = question + database          (no user-supplied evidence)");
    println!("    SEED-generated evidence: {}", seed.evidence);
}
