//! Figure 2: BIRD development-set evidence error rate and error-type breakdown.

use seed_bench::corpus_config;
use seed_datasets::{bird::build_bird, Split};
use seed_eval::{analyze_evidence_defects, Table};

fn main() {
    let bench = build_bird(&corpus_config());
    let breakdown = analyze_evidence_defects(bench.split(Split::Dev));

    let mut rates = Table::new(
        "Figure 2 (left): BIRD dev evidence error rate (paper: 83.51% / 9.65% / 6.84%)",
        &["category", "count", "share"],
    );
    rates.row(vec![
        "correct".into(),
        breakdown.correct.to_string(),
        format!("{:.2}%", breakdown.correct_rate()),
    ]);
    rates.row(vec![
        "missing evidence".into(),
        breakdown.missing.to_string(),
        format!("{:.2}%", breakdown.missing_rate()),
    ]);
    rates.row(vec![
        "erroneous evidence".into(),
        breakdown.erroneous.to_string(),
        format!("{:.2}%", breakdown.erroneous_rate()),
    ]);
    println!("{}", rates.render());

    let mut types =
        Table::new("Figure 2 (right): erroneous evidence by error type", &["error type", "count"]);
    for (label, count) in &breakdown.by_error_type {
        types.row(vec![label.clone(), count.to_string()]);
    }
    println!("{}", types.render());
    println!("questions audited: {}", breakdown.total);
}
