//! # seed-bench
//!
//! The benchmark harness of the SEED reproduction. Every table and figure of
//! the paper has a dedicated binary (`cargo run --release -p seed-bench --bin
//! tableN` / `figureN`) that regenerates it from the synthetic corpora, and
//! the `benches/` directory contains Criterion micro-benchmarks for the
//! engine, the SEED pipeline, and the design-choice ablations.

use seed_datasets::CorpusConfig;

/// Reads the corpus scale from the `SEED_SCALE` environment variable
/// (default 1.0) so the harnesses can be run quickly during development.
pub fn corpus_config() -> CorpusConfig {
    let scale = std::env::var("SEED_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(1.0);
    CorpusConfig { scale, ..CorpusConfig::default() }
}

/// Formats an EX/VES pair the way the paper's tables report them.
pub fn fmt_scores(s: &seed_eval::Scores) -> (String, String) {
    (format!("{:.2}", s.ex), format!("{:.2}", s.ves))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_config_defaults_to_full_scale() {
        std::env::remove_var("SEED_SCALE");
        assert_eq!(corpus_config().scale, 1.0);
    }

    #[test]
    fn fmt_scores_two_decimals() {
        let s = seed_eval::Scores { ex: 54.6875, ves: 56.4012, n: 10 };
        let (ex, ves) = fmt_scores(&s);
        assert_eq!(ex, "54.69");
        assert_eq!(ves, "56.40");
    }
}
