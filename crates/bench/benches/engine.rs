//! Criterion micro-benchmarks for the SQL engine substrate: the per-query cost
//! model that backs the VES metric, the physical planner's hash-join /
//! index-lookup paths against the legacy nested-loop executor, and the
//! scaling benches behind `BENCH_engine.json` — GROUP BY / DISTINCT and BM25
//! search at 1x vs 10x input sizes (hash grouping and the inverted index
//! must scale ~linearly, not quadratically), plus a correlated-subquery
//! workload whose per-outer-row re-planning is eliminated by the plan cache.

use criterion::{criterion_group, criterion_main, Criterion};
use seed_datasets::{bird::build_bird, CorpusConfig, Split};
use seed_retrieval::Bm25Index;
use seed_sqlengine::{
    execute, execute_select_with_plan_cache, execute_with_stats_mode, parse_select, plan_select,
    ColumnDef, DataType, Database, PlanCache, PlanMode, TableSchema,
};

/// Rows in the 1x synthetic table; the 10x variants multiply this.
const BASE_ROWS: usize = 1_000;
/// Outer rows in the 1x correlated-subquery workload (each outer row
/// re-executes the subquery, so work grows quadratically in this knob).
const BASE_CORRELATED_ROWS: usize = 150;
/// Documents in the 1x BM25 corpus.
const BASE_DOCS: usize = 500;

/// A synthetic table whose group and distinct-value counts scale with the
/// row count, so a quadratic grouping path would cost ~100x at 10x rows
/// while the hashed path costs ~10x.
fn synthetic_db(rows: usize) -> Database {
    let mut db = Database::new("synthetic");
    db.create_table(TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Integer).primary_key(),
            ColumnDef::new("g", DataType::Integer),
            ColumnDef::new("v", DataType::Text),
            ColumnDef::new("amount", DataType::Real),
        ],
    ))
    .unwrap();
    let groups = (rows / 10).max(1);
    let distinct = (rows / 5).max(1);
    for i in 0..rows {
        db.insert(
            "t",
            vec![
                (i as i64).into(),
                ((i % groups) as i64).into(),
                format!("v{}", i % distinct).into(),
                (((i * 37) % 997) as f64).into(),
            ],
        )
        .unwrap();
    }
    db
}

/// A synthetic BM25 corpus: short multi-token documents over a vocabulary
/// that scales with the corpus, so any per-query full-corpus rescan is
/// visible at 10x while postings stay small.
fn synthetic_docs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "record {} category{} region{} status{} note{}",
                i,
                i % 23,
                i % 47,
                i % 11,
                i % (n / 10).max(1)
            )
        })
        .collect()
}

fn engine_benches(c: &mut Criterion) {
    let bench = build_bird(&CorpusConfig::tiny());
    let financial = bench.database("financial").unwrap();

    c.bench_function("engine/simple_filter", |b| {
        b.iter(|| {
            execute(
                financial,
                "SELECT COUNT(*) FROM account WHERE `account`.`frequency` = 'POPLATEK TYDNE'",
            )
            .unwrap()
        })
    });

    c.bench_function("engine/join_aggregate", |b| {
        b.iter(|| {
            execute(
                financial,
                "SELECT `district`.`district_name`, COUNT(*) FROM account \
                 INNER JOIN district ON `account`.`district_id` = `district`.`district_id` \
                 GROUP BY `district`.`district_name` ORDER BY COUNT(*) DESC",
            )
            .unwrap()
        })
    });

    let dev = bench.split(Split::Dev);
    c.bench_function("engine/gold_sql_suite", |b| {
        b.iter(|| {
            for q in dev.iter().take(20) {
                let db = bench.database(&q.db_id).unwrap();
                execute(db, &q.gold_sql).unwrap();
            }
        })
    });

    // Hash-join vs nested-loop on the join-heavy slice of the gold corpus:
    // every dev question whose plan contains at least one hash join, run
    // under both plan modes so the speedup is directly visible.
    let join_heavy: Vec<_> = dev
        .iter()
        .filter(|q| {
            let db = bench.database(&q.db_id).unwrap();
            parse_select(&q.gold_sql)
                .ok()
                .and_then(|stmt| plan_select(db, &stmt).ok())
                .is_some_and(|p| p.uses_hash_join())
        })
        .take(20)
        .collect();
    assert!(!join_heavy.is_empty(), "corpus must contain join-heavy gold queries");
    for (label, mode) in [
        ("engine/join_suite_hash", PlanMode::Optimized),
        ("engine/join_suite_nested_loop", PlanMode::NestedLoop),
    ] {
        let join_heavy = join_heavy.clone();
        c.bench_function(label, |b| {
            b.iter(|| {
                for q in &join_heavy {
                    let db = bench.database(&q.db_id).unwrap();
                    execute_with_stats_mode(db, &q.gold_sql, mode).unwrap();
                }
            })
        });
    }

    // GROUP BY / DISTINCT scaling: 10x rows (with 10x groups and 10x
    // distinct values) must cost ~10x, not ~100x — the payoff of hashing
    // the grouping keys instead of scanning previously-seen keys per row.
    let group_sql = "SELECT g, COUNT(*), SUM(amount) FROM t GROUP BY g";
    let distinct_sql = "SELECT DISTINCT v FROM t";
    for (scale, rows) in [("1x", BASE_ROWS), ("10x", BASE_ROWS * 10)] {
        let db = synthetic_db(rows);
        c.bench_function(&format!("engine/group_by_{scale}"), |b| {
            b.iter(|| execute(&db, group_sql).unwrap())
        });
        c.bench_function(&format!("engine/distinct_{scale}"), |b| {
            b.iter(|| execute(&db, distinct_sql).unwrap())
        });
    }

    // Columnar vs row execution over the hot operator shapes — scan,
    // filter, grouped aggregation, and equi-join — at 1x and 10x rows.
    // Both modes execute the *same* physical plans; only data movement
    // differs (batched column arrays vs per-row Vec<Value> clones), so any
    // gap is pure executor overhead. Row identity is asserted after each
    // pair so the speedup can never come from computing something else.
    let columnar_shapes: &[(&str, &str)] = &[
        ("scan", "SELECT id, g, v, amount FROM t"),
        ("filter", "SELECT id, amount FROM t WHERE amount > 498.0"),
        ("group", "SELECT g, COUNT(*), SUM(amount) FROM t GROUP BY g"),
        (
            "join",
            "SELECT a.id, b.amount FROM t AS a INNER JOIN t AS b ON a.id = b.id WHERE b.amount > 300.0",
        ),
    ];
    for (scale, rows) in [("1x", BASE_ROWS), ("10x", BASE_ROWS * 10)] {
        let db = synthetic_db(rows);
        for (shape, sql) in columnar_shapes {
            for (label, mode) in [("columnar", PlanMode::Columnar), ("row", PlanMode::Optimized)] {
                c.bench_function(&format!("engine/{label}_{shape}_{scale}"), |b| {
                    b.iter(|| execute_with_stats_mode(&db, sql, mode).unwrap())
                });
            }
            let (col, col_stats) = execute_with_stats_mode(&db, sql, PlanMode::Columnar).unwrap();
            let (row, _) = execute_with_stats_mode(&db, sql, PlanMode::Optimized).unwrap();
            assert_eq!(col.rows, row.rows, "columnar must be row-identical on {shape}");
            assert!(col_stats.batches_built > 0, "columnar must actually batch on {shape}");
        }
    }

    // Wide grouped aggregation — eight aggregates (COUNT/SUM/AVG/MIN/MAX
    // over Int, Real, and Text columns) per high-cardinality key — where
    // the vectorized accumulators earn their keep: the row path re-walks
    // every group's members once per aggregate, the columnar path makes one
    // typed pass per aggregate over the whole table.
    let wide_sql = "SELECT g, COUNT(*), COUNT(amount), SUM(amount), AVG(amount), MIN(amount), \
                    MAX(amount), SUM(id), MAX(v) FROM t GROUP BY g";
    for (scale, rows) in [("1x", BASE_ROWS), ("10x", BASE_ROWS * 10)] {
        let db = synthetic_db(rows);
        for (label, mode) in [("columnar", PlanMode::Columnar), ("row", PlanMode::Optimized)] {
            c.bench_function(&format!("engine/{label}_group_wide_{scale}"), |b| {
                b.iter(|| execute_with_stats_mode(&db, wide_sql, mode).unwrap())
            });
        }
        let (col, col_stats) = execute_with_stats_mode(&db, wide_sql, PlanMode::Columnar).unwrap();
        let (row, _) = execute_with_stats_mode(&db, wide_sql, PlanMode::Optimized).unwrap();
        assert_eq!(col.rows, row.rows, "columnar must be row-identical on group_wide");
        assert_eq!(col_stats.columnar_fallbacks, 0, "group_wide must stay fully vectorized");
    }

    // Filter selectivity sweep at 10x rows: `amount` is uniform over
    // [0, 997), so the cutoffs keep ~1% / ~50% / ~99% of rows. Selection
    // vectors make the kept fraction the cost driver — a 1%-selective
    // filter compacts to almost nothing, a 99%-selective one never copies.
    {
        let db = synthetic_db(BASE_ROWS * 10);
        for (pct, cutoff) in [("1", 10.0), ("50", 498.5), ("99", 987.0)] {
            let sql = format!("SELECT id, amount FROM t WHERE amount < {cutoff} AND amount >= 0.0");
            for (label, mode) in [("columnar", PlanMode::Columnar), ("row", PlanMode::Optimized)] {
                let sql = sql.clone();
                c.bench_function(&format!("engine/{label}_filter_sel{pct}_10x"), |b| {
                    b.iter(|| execute_with_stats_mode(&db, &sql, mode).unwrap())
                });
            }
            let (col, _) = execute_with_stats_mode(&db, &sql, PlanMode::Columnar).unwrap();
            let (row, _) = execute_with_stats_mode(&db, &sql, PlanMode::Optimized).unwrap();
            assert_eq!(col.rows, row.rows, "columnar must be row-identical at {pct}% kept");
            let frac = col.rows.len() as f64 / (BASE_ROWS * 10) as f64;
            let target: f64 = pct.parse::<f64>().unwrap() / 100.0;
            assert!(
                (frac - target).abs() < 0.02,
                "selectivity drifted: wanted ~{target}, kept {frac}"
            );
        }
    }

    // Correlated scalar subquery: re-executed per outer row (inherently
    // quadratic in rows), but *planned* once — the plan cache serves every
    // re-execution after the first.
    // Correlated scalar-aggregate workload, both engine strategies:
    // `decorrelated` (the default) rewrites the subquery into a hash group
    // join — one build pass plus O(1) probes, ~linear in outer rows —
    // while `plan_cached` pins the pre-decorrelation behaviour (subquery
    // planned once, re-executed per outer row, quadratic in outer rows).
    let correlated_sql = "SELECT a.id FROM t AS a \
                          WHERE a.amount > (SELECT AVG(b.amount) FROM t AS b WHERE b.g = a.g)";
    let correlated_stmt = parse_select(correlated_sql).unwrap();
    for (scale, rows) in [("1x", BASE_CORRELATED_ROWS), ("10x", BASE_CORRELATED_ROWS * 10)] {
        let db = synthetic_db(rows);
        c.bench_function(&format!("engine/correlated_decorrelated_{scale}"), |b| {
            b.iter(|| {
                execute_select_with_plan_cache(
                    &db,
                    &correlated_stmt,
                    PlanMode::Optimized,
                    PlanCache::default(),
                )
                .unwrap()
            })
        });
        c.bench_function(&format!("engine/correlated_plan_cached_{scale}"), |b| {
            b.iter(|| {
                execute_select_with_plan_cache(
                    &db,
                    &correlated_stmt,
                    PlanMode::Optimized,
                    PlanCache::without_decorrelation(),
                )
                .unwrap()
            })
        });
        let (rs, stats, _) = execute_select_with_plan_cache(
            &db,
            &correlated_stmt,
            PlanMode::Optimized,
            PlanCache::default(),
        )
        .unwrap();
        assert!(
            stats.decorrelated_subqueries >= 1,
            "correlated workload must engage the decorrelation rewrite"
        );
        let (rs_cached, cached_stats, _) = execute_select_with_plan_cache(
            &db,
            &correlated_stmt,
            PlanMode::Optimized,
            PlanCache::without_decorrelation(),
        )
        .unwrap();
        assert_eq!(rs.rows, rs_cached.rows, "both strategies must agree row-for-row");
        assert!(
            cached_stats.plan_cache_hits > 0,
            "plan-cached workload must replay cached subquery plans"
        );
        println!(
            "stats engine/correlated_decorrelated_{scale}   decorrelated_subqueries {} probes {} memo_hits {}",
            stats.decorrelated_subqueries, stats.decorrelated_probes, stats.decorrelated_memo_hits
        );
        println!(
            "stats engine/correlated_plan_cached_{scale}    plan_cache_hits {} plan_cache_misses {}",
            cached_stats.plan_cache_hits, cached_stats.plan_cache_misses
        );
    }

    // BM25 search: query cost scales with matching postings, not corpus
    // size; a 10x corpus with a 10x vocabulary must search in ~10x.
    for (scale, n) in [("1x", BASE_DOCS), ("10x", BASE_DOCS * 10)] {
        let index = Bm25Index::build(synthetic_docs(n));
        c.bench_function(&format!("retrieval/bm25_search_{scale}"), |b| {
            b.iter(|| index.search("category7 region12 status3", 10))
        });
    }
    c.bench_function("retrieval/bm25_build_10x", |b| {
        b.iter(|| Bm25Index::build(synthetic_docs(BASE_DOCS * 10)))
    });

    // PK point lookup vs full scan on the largest base table.
    c.bench_function("engine/pk_lookup_hash_index", |b| {
        b.iter(|| {
            execute_with_stats_mode(
                financial,
                "SELECT * FROM account WHERE `account`.`account_id` = 7",
                PlanMode::Optimized,
            )
            .unwrap()
        })
    });
    c.bench_function("engine/pk_lookup_full_scan", |b| {
        b.iter(|| {
            execute_with_stats_mode(
                financial,
                "SELECT * FROM account WHERE `account`.`account_id` = 7",
                PlanMode::NestedLoop,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_benches
}
criterion_main!(benches);
