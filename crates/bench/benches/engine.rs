//! Criterion micro-benchmarks for the SQL engine substrate: the per-query cost
//! model that backs the VES metric, and the physical planner's hash-join /
//! index-lookup paths against the legacy nested-loop executor.

use criterion::{criterion_group, criterion_main, Criterion};
use seed_datasets::{bird::build_bird, CorpusConfig, Split};
use seed_sqlengine::{execute, execute_with_stats_mode, parse_select, plan_select, PlanMode};

fn engine_benches(c: &mut Criterion) {
    let bench = build_bird(&CorpusConfig::tiny());
    let financial = bench.database("financial").unwrap();

    c.bench_function("engine/simple_filter", |b| {
        b.iter(|| {
            execute(
                financial,
                "SELECT COUNT(*) FROM account WHERE `account`.`frequency` = 'POPLATEK TYDNE'",
            )
            .unwrap()
        })
    });

    c.bench_function("engine/join_aggregate", |b| {
        b.iter(|| {
            execute(
                financial,
                "SELECT `district`.`district_name`, COUNT(*) FROM account \
                 INNER JOIN district ON `account`.`district_id` = `district`.`district_id` \
                 GROUP BY `district`.`district_name` ORDER BY COUNT(*) DESC",
            )
            .unwrap()
        })
    });

    let dev = bench.split(Split::Dev);
    c.bench_function("engine/gold_sql_suite", |b| {
        b.iter(|| {
            for q in dev.iter().take(20) {
                let db = bench.database(&q.db_id).unwrap();
                execute(db, &q.gold_sql).unwrap();
            }
        })
    });

    // Hash-join vs nested-loop on the join-heavy slice of the gold corpus:
    // every dev question whose plan contains at least one hash join, run
    // under both plan modes so the speedup is directly visible.
    let join_heavy: Vec<_> = dev
        .iter()
        .filter(|q| {
            let db = bench.database(&q.db_id).unwrap();
            parse_select(&q.gold_sql)
                .ok()
                .and_then(|stmt| plan_select(db, &stmt).ok())
                .is_some_and(|p| p.uses_hash_join())
        })
        .take(20)
        .collect();
    assert!(!join_heavy.is_empty(), "corpus must contain join-heavy gold queries");
    for (label, mode) in [
        ("engine/join_suite_hash", PlanMode::Optimized),
        ("engine/join_suite_nested_loop", PlanMode::NestedLoop),
    ] {
        let join_heavy = join_heavy.clone();
        c.bench_function(label, |b| {
            b.iter(|| {
                for q in &join_heavy {
                    let db = bench.database(&q.db_id).unwrap();
                    execute_with_stats_mode(db, &q.gold_sql, mode).unwrap();
                }
            })
        });
    }

    // PK point lookup vs full scan on the largest base table.
    c.bench_function("engine/pk_lookup_hash_index", |b| {
        b.iter(|| {
            execute_with_stats_mode(
                financial,
                "SELECT * FROM account WHERE `account`.`account_id` = 7",
                PlanMode::Optimized,
            )
            .unwrap()
        })
    });
    c.bench_function("engine/pk_lookup_full_scan", |b| {
        b.iter(|| {
            execute_with_stats_mode(
                financial,
                "SELECT * FROM account WHERE `account`.`account_id` = 7",
                PlanMode::NestedLoop,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_benches
}
criterion_main!(benches);
