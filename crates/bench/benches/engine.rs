//! Criterion micro-benchmarks for the SQL engine substrate: the per-query cost
//! model that backs the VES metric.

use criterion::{criterion_group, criterion_main, Criterion};
use seed_datasets::{bird::build_bird, CorpusConfig, Split};
use seed_sqlengine::execute;

fn engine_benches(c: &mut Criterion) {
    let bench = build_bird(&CorpusConfig::tiny());
    let financial = bench.database("financial").unwrap();

    c.bench_function("engine/simple_filter", |b| {
        b.iter(|| {
            execute(
                financial,
                "SELECT COUNT(*) FROM account WHERE `account`.`frequency` = 'POPLATEK TYDNE'",
            )
            .unwrap()
        })
    });

    c.bench_function("engine/join_aggregate", |b| {
        b.iter(|| {
            execute(
                financial,
                "SELECT `district`.`district_name`, COUNT(*) FROM account \
                 INNER JOIN district ON `account`.`district_id` = `district`.`district_id` \
                 GROUP BY `district`.`district_name` ORDER BY COUNT(*) DESC",
            )
            .unwrap()
        })
    });

    let dev = bench.split(Split::Dev);
    c.bench_function("engine/gold_sql_suite", |b| {
        b.iter(|| {
            for q in dev.iter().take(20) {
                let db = bench.database(&q.db_id).unwrap();
                execute(db, &q.gold_sql).unwrap();
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_benches
}
criterion_main!(benches);
