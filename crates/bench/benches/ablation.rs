//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//! sample-SQL grounding on/off, few-shot selection on/off, and schema
//! summarization aggressiveness. Each ablation reports the *accuracy effect*
//! (printed once) and benchmarks the runtime cost of the stage it toggles.

use criterion::{criterion_group, criterion_main, Criterion};
use seed_core::few_shot::select_examples;
use seed_core::sample_sql::run_sample_sql;
use seed_datasets::{bird::build_bird, CorpusConfig, Question, Split};
use seed_embedding::HashedEmbedder;
use seed_llm::{EvidenceGenTask, LanguageModel, ModelProfile, SimLlm};

fn ablation_benches(c: &mut Criterion) {
    let bench = build_bird(&CorpusConfig::tiny());
    let train: Vec<&Question> = bench.split(Split::Train);
    let q = bench
        .split(Split::Dev)
        .into_iter()
        .find(|q| q.db_id == "financial" && !q.atoms.is_empty())
        .unwrap();
    let db = bench.database(&q.db_id).unwrap();
    let sampler = SimLlm::new(ModelProfile::gpt_4o_mini());
    let generator = SimLlm::new(ModelProfile::gpt_4o());
    let embedder = HashedEmbedder::default();

    // Accuracy effect of grounding (printed once so the ablation is visible in
    // bench logs): with grounding the issuance code is resolvable, without it
    // the evidence generator must rely on descriptions alone.
    let grounded = run_sample_sql(&sampler, &q.text, db, None);
    let few_shot = select_examples(&embedder, q, &train);
    let with = generator.generate_evidence(&EvidenceGenTask {
        question_id: &q.id,
        question: &q.text,
        schema: db.schema(),
        schema_subset: None,
        grounded_values: &grounded.grounded,
        few_shot: &few_shot,
        atoms: &q.atoms,
        descriptions_available: true,
        qualified_style: false,
        join_hints: &[],
    });
    let without = generator.generate_evidence(&EvidenceGenTask {
        question_id: &q.id,
        question: &q.text,
        schema: db.schema(),
        schema_subset: None,
        grounded_values: &[],
        few_shot: &[],
        atoms: &q.atoms,
        descriptions_available: false,
        qualified_style: false,
        join_hints: &[],
    });
    println!(
        "ablation: atoms resolved with grounding = {}, without grounding/descriptions = {}",
        with.resolved_atoms, without.resolved_atoms
    );

    c.bench_function("ablation/sample_sql_grounding", |b| {
        b.iter(|| run_sample_sql(&sampler, &q.text, db, None))
    });
    c.bench_function("ablation/few_shot_selection", |b| {
        b.iter(|| select_examples(&embedder, q, &train))
    });
    c.bench_function("ablation/schema_summarization", |b| {
        b.iter(|| {
            seed_core::schema_summary::summarize_if_needed(
                &SimLlm::new(ModelProfile::deepseek_r1()),
                &q.text,
                db.schema(),
                3_000,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = ablation_benches
}
criterion_main!(benches);
