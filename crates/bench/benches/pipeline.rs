//! Criterion benchmarks for the SEED pipelines: end-to-end evidence generation
//! cost per question for both architectures.

use criterion::{criterion_group, criterion_main, Criterion};
use seed_core::{SeedPipeline, SeedVariant};
use seed_datasets::{bird::build_bird, CorpusConfig, Question, Split};

fn pipeline_benches(c: &mut Criterion) {
    let bench = build_bird(&CorpusConfig::tiny());
    let train: Vec<&Question> = bench.split(Split::Train);
    let q = bench
        .split(Split::Dev)
        .into_iter()
        .find(|q| q.db_id == "financial" && !q.atoms.is_empty())
        .unwrap();
    let db = bench.database(&q.db_id).unwrap();

    for variant in [SeedVariant::Gpt, SeedVariant::Deepseek, SeedVariant::Revised] {
        let pipeline = SeedPipeline::new(variant);
        c.bench_function(&format!("seed/{}", variant.label()), |b| {
            b.iter(|| pipeline.generate(q, db, &train, true))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = pipeline_benches
}
criterion_main!(benches);
