//! Word tokenization and stop-word filtering shared by retrieval components.

/// English stop-words that carry no schema-linking signal. The list is small
/// on purpose: question keywords like "more", "than" are removed while domain
/// terms survive.
const STOP_WORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "for", "to", "from", "by", "with", "and", "or", "is",
    "are", "was", "were", "be", "been", "do", "does", "did", "have", "has", "had", "how", "what",
    "which", "who", "whom", "whose", "when", "where", "why", "list", "show", "give", "find",
    "name", "names", "number", "many", "much", "all", "please", "me", "their", "there", "that",
    "this", "these", "those", "than", "then", "as", "it", "its", "his", "her", "they", "them",
    "out", "down", "up", "more", "most", "least", "per", "each", "between", "among", "also",
    "state", "whether", "if", "not", "no",
];

/// Lowercases and splits text into alphanumeric word tokens.
pub fn tokenize_words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '_' {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Tokenizes and removes stop-words, keeping content words only.
pub fn content_words(text: &str) -> Vec<String> {
    tokenize_words(text)
        .into_iter()
        .filter(|w| !STOP_WORDS.contains(&w.as_str()) && w.len() > 1)
        .collect()
}

/// Character n-grams of a lowercased string (used by the embedding hash).
pub fn ngrams(text: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = text.to_lowercase().chars().collect();
    if chars.len() < n || n == 0 {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n).map(|i| chars[i..i + n].iter().collect()).collect()
}

/// Splits an identifier like `NumTstTakr` or `free_meal_count` into lowercase
/// word pieces, so schema names can be matched against question words.
pub fn split_identifier(ident: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = ident.chars().collect();
    for (i, &ch) in chars.iter().enumerate() {
        if ch == '_' || ch == ' ' || ch == '-' || ch == '(' || ch == ')' || ch == '%' {
            if !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
            continue;
        }
        if ch.is_uppercase()
            && i > 0
            && (chars[i - 1].is_lowercase()
                || (i + 1 < chars.len()
                    && chars[i + 1].is_lowercase()
                    && chars[i - 1].is_uppercase()))
            && !cur.is_empty()
        {
            words.push(std::mem::take(&mut cur));
        }
        cur.extend(ch.to_lowercase());
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_on_punctuation() {
        assert_eq!(
            tokenize_words("How many clients opened accounts in Jesenik?"),
            vec!["how", "many", "clients", "opened", "accounts", "in", "jesenik"]
        );
    }

    #[test]
    fn content_words_drop_stopwords() {
        let words = content_words("How many clients opened their accounts in the Jesenik branch?");
        assert!(words.contains(&"clients".to_string()));
        assert!(words.contains(&"jesenik".to_string()));
        assert!(!words.contains(&"how".to_string()));
        assert!(!words.contains(&"the".to_string()));
    }

    #[test]
    fn ngrams_of_short_strings() {
        assert_eq!(ngrams("ab", 3), vec!["ab".to_string()]);
        assert_eq!(ngrams("abcd", 3), vec!["abc".to_string(), "bcd".to_string()]);
    }

    #[test]
    fn split_identifier_handles_camel_and_snake() {
        assert_eq!(split_identifier("NumTstTakr"), vec!["num", "tst", "takr"]);
        assert_eq!(split_identifier("free_meal_count"), vec!["free", "meal", "count"]);
        assert_eq!(split_identifier("CDSCode"), vec!["cds", "code"]);
        assert_eq!(
            split_identifier("Percent (%) Eligible Free (K-12)"),
            vec!["percent", "eligible", "free", "k", "12"]
        );
    }
}
