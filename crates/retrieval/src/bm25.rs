//! A small BM25 index over short text documents.
//!
//! CodeS uses a BM25 index over database values and column descriptions for
//! schema linking; SEED's keyword grounding reuses the same machinery.

use std::collections::HashMap;

use crate::tokenize::tokenize_words;

/// Default BM25 parameters (standard Okapi settings).
const K1: f64 = 1.2;
const B: f64 = 0.75;

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index of the document in insertion order.
    pub doc_id: usize,
    /// BM25 relevance score (higher is better).
    pub score: f64,
}

/// An in-memory BM25 index.
#[derive(Debug, Clone, Default)]
pub struct Bm25Index {
    /// Raw documents, in insertion order.
    docs: Vec<String>,
    /// Tokenized documents.
    doc_tokens: Vec<Vec<String>>,
    /// term -> number of documents containing it.
    doc_freq: HashMap<String, usize>,
    /// Total token count, for average document length.
    total_len: usize,
}

impl Bm25Index {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index over the given documents.
    pub fn build<I, S>(docs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut index = Self::new();
        for d in docs {
            index.add_document(d.into());
        }
        index
    }

    /// Adds one document and returns its id.
    pub fn add_document(&mut self, doc: String) -> usize {
        let tokens = tokenize_words(&doc);
        let mut seen: Vec<&String> = Vec::new();
        for t in &tokens {
            if !seen.contains(&t) {
                *self.doc_freq.entry(t.clone()).or_insert(0) += 1;
                seen.push(t);
            }
        }
        self.total_len += tokens.len();
        self.doc_tokens.push(tokens);
        self.docs.push(doc);
        self.docs.len() - 1
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents have been indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The raw text of a document.
    pub fn document(&self, doc_id: usize) -> Option<&str> {
        self.docs.get(doc_id).map(|s| s.as_str())
    }

    /// Scores every document against the query and returns the top `k` hits
    /// with positive scores, best first.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        if self.docs.is_empty() {
            return Vec::new();
        }
        let q_tokens = tokenize_words(query);
        let n = self.docs.len() as f64;
        let avg_len = (self.total_len as f64 / self.docs.len() as f64).max(1.0);
        let mut hits: Vec<SearchHit> = Vec::new();
        for (doc_id, tokens) in self.doc_tokens.iter().enumerate() {
            let dl = tokens.len() as f64;
            let mut score = 0.0;
            for q in &q_tokens {
                let tf = tokens.iter().filter(|t| *t == q).count() as f64;
                if tf == 0.0 {
                    continue;
                }
                let df = *self.doc_freq.get(q).unwrap_or(&0) as f64;
                let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                score += idf * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * dl / avg_len));
            }
            if score > 0.0 {
                hits.push(SearchHit { doc_id, score });
            }
        }
        hits.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> Bm25Index {
        Bm25Index::build([
            "Alameda County Office of Education",
            "Fresno County Office of Education",
            "Fremont Unified School District",
            "monthly issuance POPLATEK MESICNE",
            "weekly issuance POPLATEK TYDNE",
        ])
    }

    #[test]
    fn exact_term_ranks_first() {
        let idx = index();
        let hits = idx.search("Fremont district", 3);
        assert_eq!(hits[0].doc_id, 2);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let idx = index();
        // "weekly" appears once, "issuance" twice; the weekly doc must win.
        let hits = idx.search("weekly issuance", 2);
        assert_eq!(hits[0].doc_id, 4);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = index();
        assert!(idx.search("zzz qqq", 5).is_empty());
        assert!(Bm25Index::new().search("anything", 5).is_empty());
    }

    #[test]
    fn top_k_truncation() {
        let idx = index();
        let hits = idx.search("county office education", 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn document_accessor_round_trips() {
        let idx = index();
        assert_eq!(idx.document(0).unwrap(), "Alameda County Office of Education");
        assert!(idx.document(99).is_none());
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
    }

    #[test]
    fn scores_are_sorted_descending() {
        let idx = index();
        let hits = idx.search("county education office", 5);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
