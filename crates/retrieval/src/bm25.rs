//! An inverted-index BM25 engine over short text documents.
//!
//! CodeS uses a BM25 index over database values and column descriptions for
//! schema linking; SEED's keyword grounding reuses the same machinery.
//!
//! The index is built at [`Bm25Index::add_document`] time: each document is
//! tokenized once into a term-frequency map, and every distinct term is
//! appended to a postings list (`term -> [(doc_id, tf)]`, doc ids ascending
//! by construction). A query then touches only the postings of its own
//! terms, so search cost scales with the number of *matching* postings
//! rather than with corpus size — the old implementation rescanned every
//! document's full token list per query term, which was quadratic in
//! practice. Top-k selection uses a bounded binary heap, so ranking costs
//! O(matches · log k) instead of sorting every scored document.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::tokenize::tokenize_words;

/// Default BM25 parameters (standard Okapi settings).
const K1: f64 = 1.2;
const B: f64 = 0.75;

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index of the document in insertion order.
    pub doc_id: usize,
    /// BM25 relevance score (higher is better).
    pub score: f64,
}

/// Heap entry ordered so the *worst* hit (lowest score, ties broken toward
/// the larger doc id) sits at the top of a max-heap and is evicted first.
struct WorstFirst(SearchHit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower score is "greater" (evicted first); on equal scores the
        // larger doc id is evicted first, preserving the stable
        // score-descending / doc-id-ascending output order of a full sort.
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then(self.0.doc_id.cmp(&other.0.doc_id))
    }
}

/// An in-memory BM25 index with postings lists.
#[derive(Debug, Clone, Default)]
pub struct Bm25Index {
    /// Raw documents, in insertion order.
    docs: Vec<String>,
    /// Token count per document (the BM25 `|d|`).
    doc_lens: Vec<usize>,
    /// Per-document term frequencies, computed once at indexing time.
    doc_tfs: Vec<HashMap<String, usize>>,
    /// term -> (doc id, term frequency), doc ids ascending.
    postings: HashMap<String, Vec<(usize, usize)>>,
    /// Total token count, for average document length.
    total_len: usize,
}

impl Bm25Index {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index over the given documents.
    pub fn build<I, S>(docs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut index = Self::new();
        for d in docs {
            index.add_document(d.into());
        }
        index
    }

    /// Adds one document and returns its id. Tokenization, the document's
    /// term-frequency map, and its postings entries are all computed here,
    /// so `search` never re-reads document text.
    pub fn add_document(&mut self, doc: String) -> usize {
        let doc_id = self.docs.len();
        let tokens = tokenize_words(&doc);
        self.total_len += tokens.len();
        self.doc_lens.push(tokens.len());
        let mut tf: HashMap<String, usize> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0) += 1;
        }
        for (term, &count) in &tf {
            self.postings.entry(term.clone()).or_default().push((doc_id, count));
        }
        self.doc_tfs.push(tf);
        self.docs.push(doc);
        doc_id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents have been indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The raw text of a document.
    pub fn document(&self, doc_id: usize) -> Option<&str> {
        self.docs.get(doc_id).map(|s| s.as_str())
    }

    /// How often `term` (already normalized the way [`tokenize_words`]
    /// normalizes) occurs in a document.
    pub fn term_frequency(&self, doc_id: usize, term: &str) -> usize {
        self.doc_tfs.get(doc_id).and_then(|tf| tf.get(term)).copied().unwrap_or(0)
    }

    /// Number of documents containing `term`.
    pub fn document_frequency(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, Vec::len)
    }

    /// Scores the documents matching the query and returns the top `k` hits
    /// with positive scores, best first (ties broken by ascending doc id).
    ///
    /// Only the postings of the query's terms are visited; documents sharing
    /// no term with the query are never touched.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        if self.docs.is_empty() || k == 0 {
            return Vec::new();
        }
        let q_tokens = tokenize_words(query);
        let n = self.docs.len() as f64;
        let avg_len = (self.total_len as f64 / self.docs.len() as f64).max(1.0);

        // Accumulate per-document scores term by term, in query order (a
        // repeated query term contributes once per occurrence, as before).
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for q in &q_tokens {
            let Some(postings) = self.postings.get(q) else { continue };
            let df = postings.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(doc_id, tf) in postings {
                let tf = tf as f64;
                let dl = self.doc_lens[doc_id] as f64;
                let term_score = idf * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * dl / avg_len));
                *scores.entry(doc_id).or_insert(0.0) += term_score;
            }
        }

        // Bounded top-k: a k-sized heap keyed worst-first.
        let mut heap: BinaryHeap<WorstFirst> = BinaryHeap::with_capacity(k + 1);
        for (doc_id, score) in scores {
            if score > 0.0 {
                heap.push(WorstFirst(SearchHit { doc_id, score }));
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        let mut hits: Vec<SearchHit> = heap.into_iter().map(|w| w.0).collect();
        hits.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal).then(a.doc_id.cmp(&b.doc_id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> Bm25Index {
        Bm25Index::build([
            "Alameda County Office of Education",
            "Fresno County Office of Education",
            "Fremont Unified School District",
            "monthly issuance POPLATEK MESICNE",
            "weekly issuance POPLATEK TYDNE",
        ])
    }

    /// The pre-inverted-index scorer, kept as the semantic reference: scan
    /// every document, score every query token against its full token list.
    fn reference_search(idx: &Bm25Index, query: &str, k: usize) -> Vec<SearchHit> {
        let q_tokens = tokenize_words(query);
        let n = idx.len() as f64;
        let total: usize =
            (0..idx.len()).map(|d| tokenize_words(idx.document(d).unwrap()).len()).sum();
        let avg_len = (total as f64 / idx.len() as f64).max(1.0);
        let mut hits: Vec<SearchHit> = Vec::new();
        for doc_id in 0..idx.len() {
            let tokens = tokenize_words(idx.document(doc_id).unwrap());
            let dl = tokens.len() as f64;
            let mut score = 0.0;
            for q in &q_tokens {
                let tf = tokens.iter().filter(|t| *t == q).count() as f64;
                if tf == 0.0 {
                    continue;
                }
                let df = idx.document_frequency(q) as f64;
                let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                score += idf * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * dl / avg_len));
            }
            if score > 0.0 {
                hits.push(SearchHit { doc_id, score });
            }
        }
        hits.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal));
        hits.truncate(k);
        hits
    }

    #[test]
    fn exact_term_ranks_first() {
        let idx = index();
        let hits = idx.search("Fremont district", 3);
        assert_eq!(hits[0].doc_id, 2);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let idx = index();
        // "weekly" appears once, "issuance" twice; the weekly doc must win.
        let hits = idx.search("weekly issuance", 2);
        assert_eq!(hits[0].doc_id, 4);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = index();
        assert!(idx.search("zzz qqq", 5).is_empty());
        assert!(Bm25Index::new().search("anything", 5).is_empty());
    }

    #[test]
    fn top_k_truncation() {
        let idx = index();
        let hits = idx.search("county office education", 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn document_accessor_round_trips() {
        let idx = index();
        assert_eq!(idx.document(0).unwrap(), "Alameda County Office of Education");
        assert!(idx.document(99).is_none());
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
    }

    #[test]
    fn scores_are_sorted_descending() {
        let idx = index();
        let hits = idx.search("county education office", 5);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn postings_and_tf_accessors() {
        let idx = index();
        assert_eq!(idx.document_frequency("education"), 2);
        assert_eq!(idx.document_frequency("fremont"), 1);
        assert_eq!(idx.document_frequency("missing"), 0);
        assert_eq!(idx.term_frequency(0, "education"), 1);
        assert_eq!(idx.term_frequency(2, "education"), 0);
        let idx = Bm25Index::build(["alpha alpha beta"]);
        assert_eq!(idx.term_frequency(0, "alpha"), 2);
    }

    #[test]
    fn inverted_index_matches_full_scan_reference() {
        // The postings-based scorer must rank exactly like the legacy
        // scan-every-document scorer, including duplicate query terms
        // (each occurrence contributes again) and tie-breaking.
        let idx = index();
        for query in [
            "county office education",
            "weekly issuance",
            "issuance issuance",
            "fremont",
            "education education county",
            "POPLATEK",
        ] {
            for k in [1, 3, 10] {
                let fast = idx.search(query, k);
                let slow = reference_search(&idx, query, k);
                assert_eq!(fast.len(), slow.len(), "{query:?} k={k}");
                for (f, s) in fast.iter().zip(&slow) {
                    assert_eq!(f.doc_id, s.doc_id, "{query:?} k={k}");
                    assert!((f.score - s.score).abs() < 1e-12, "{query:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn search_cost_scales_with_matches_not_corpus() {
        // Build a corpus where only a handful of documents contain the
        // query term; the loop in `search` must only visit those postings.
        let mut docs: Vec<String> = (0..500).map(|i| format!("filler{i} common text")).collect();
        docs.push("needle in the haystack".into());
        let idx = Bm25Index::build(docs);
        assert_eq!(idx.document_frequency("needle"), 1);
        let hits = idx.search("needle", 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc_id, 500);
    }
}
