//! Levenshtein edit distance, used by SEED's sample-SQL stage to retrieve
//! database values that are *similar* to a question keyword (the paper pairs
//! `LIKE` probes with edit-distance filtering).

/// Classic dynamic-programming Levenshtein distance over Unicode scalars,
/// case-insensitive (keywords in questions rarely match database casing).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Similarity in `[0, 1]`: `1 - distance / max_len`.
pub fn normalized_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("Fremont", "fremont"), 0, "case-insensitive");
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(normalized_similarity("abc", "abc"), 1.0);
        assert_eq!(normalized_similarity("", ""), 1.0);
        assert!(normalized_similarity("abc", "xyz") < 0.01);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(a in "[a-zA-Z ]{0,20}", b in "[a-zA-Z ]{0,20}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn distance_zero_iff_equal_ignoring_case(a in "[a-z ]{0,20}") {
            prop_assert_eq!(levenshtein(&a, &a.to_uppercase()), 0);
        }

        #[test]
        fn triangle_inequality(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn similarity_in_unit_interval(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
            let s = normalized_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
