//! # seed-retrieval
//!
//! Lexical retrieval utilities used across the SEED reproduction:
//!
//! * [`bm25`] — a BM25 index over short documents, used by the CodeS baseline
//!   for database-value referencing and by SEED's keyword grounding.
//! * [`edit_distance`] — Levenshtein distance, used by SEED's sample-SQL stage
//!   to pull values *similar* to question keywords.
//! * [`lcs`] — longest common substring, the second half of CodeS' coarse-to-fine
//!   value matching.
//! * [`tokenize`] — shared word tokenizer / keyword extraction helpers.

pub mod bm25;
pub mod edit_distance;
pub mod lcs;
pub mod tokenize;

pub use bm25::{Bm25Index, SearchHit};
pub use edit_distance::{levenshtein, normalized_similarity};
pub use lcs::{lcs_ratio, longest_common_substring};
pub use tokenize::{content_words, ngrams, split_identifier, tokenize_words};
