//! Longest common substring, the matching primitive CodeS combines with BM25
//! for database-value referencing.

/// Length of the longest common substring (contiguous), case-insensitive.
pub fn longest_common_substring(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut best = 0usize;
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for ca in a.iter() {
        for (j, cb) in b.iter().enumerate() {
            if ca == cb {
                cur[j + 1] = prev[j] + 1;
                best = best.max(cur[j + 1]);
            } else {
                cur[j + 1] = 0;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.iter_mut().for_each(|x| *x = 0);
    }
    best
}

/// Ratio of the longest common substring to the shorter string's length,
/// in `[0, 1]`.
pub fn lcs_ratio(a: &str, b: &str) -> f64 {
    let min_len = a.chars().count().min(b.chars().count());
    if min_len == 0 {
        return 0.0;
    }
    longest_common_substring(a, b) as f64 / min_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_common_runs() {
        assert_eq!(longest_common_substring("Fremont Unified", "fremont"), 7);
        assert_eq!(longest_common_substring("POPLATEK TYDNE", "weekly"), 2); // "ek"
        assert_eq!(longest_common_substring("abc", "xyz"), 0);
    }

    #[test]
    fn ratio_is_one_for_containment() {
        assert_eq!(lcs_ratio("Alameda", "Alameda County Office"), 1.0);
        assert_eq!(lcs_ratio("", "x"), 0.0);
    }

    proptest! {
        #[test]
        fn lcs_symmetric(a in "[a-z ]{0,16}", b in "[a-z ]{0,16}") {
            prop_assert_eq!(longest_common_substring(&a, &b), longest_common_substring(&b, &a));
        }

        #[test]
        fn lcs_bounded_by_min_length(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
            let l = longest_common_substring(&a, &b);
            prop_assert!(l <= a.len().min(b.len()));
        }

        #[test]
        fn self_lcs_is_full_length(a in "[a-z]{1,16}") {
            prop_assert_eq!(longest_common_substring(&a, &a), a.len());
        }
    }
}
