//! Per-operator wall-clock profiling, kept strictly outside the
//! deterministic cost model.
//!
//! [`ExecStats`](crate::result::ExecStats) is the deterministic cost proxy
//! the VES metric compares, so wall-clock measurements must never flow into
//! it. This module holds the *other* half of observability: a
//! `Profiler` that the executor optionally carries, accumulating
//! per-operator invocation counts, output rows, batch counts, and monotonic
//! nanoseconds keyed by operator identity (the address of the `PlanNode` —
//! or, in nested-loop mode, of the AST node — being executed). The finished
//! [`QueryProfile`] is returned *next to* the result and stats, never inside
//! them, which is what lets `EXPLAIN ANALYZE` and the serve slow-query log
//! stay always-on without perturbing determinism suites.
//!
//! Timings are inclusive: an operator's nanos include the time spent in its
//! children, mirroring how the plan tree is rendered (a parent line
//! subsumes the subtree below it).

use std::collections::HashMap;
use std::time::Instant;

/// Accumulated measurements for one operator in one statement execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Rendered operator label (same format as the `EXPLAIN` plan tree).
    pub label: String,
    /// How many times the operator ran (legacy-mode operators run once per
    /// statement; subquery-plan operators run once per evaluation).
    pub invocations: u64,
    /// Total rows the operator produced across all invocations.
    pub rows_out: u64,
    /// Total columnar batches produced (0 on the row paths).
    pub batches: u64,
    /// Inclusive monotonic nanoseconds across all invocations.
    pub nanos: u64,
}

impl OpProfile {
    /// One-line rendering of the measured columns, used as the
    /// `EXPLAIN ANALYZE` annotation suffix.
    pub fn annotation(&self) -> String {
        let mut s = format!("(invocations={} rows={}", self.invocations, self.rows_out);
        if self.batches > 0 {
            s.push_str(&format!(" batches={}", self.batches));
        }
        s.push_str(&format!(" time={})", format_nanos(self.nanos)));
        s
    }
}

/// The wall-clock profile of one statement execution: total elapsed time
/// plus per-operator measurements in first-touch order.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// Monotonic nanoseconds from executor construction to profile finish.
    pub total_nanos: u64,
    ops: Vec<OpProfile>,
    index: HashMap<usize, usize>,
}

impl QueryProfile {
    /// Per-operator measurements in the order operators were first
    /// executed.
    pub fn ops(&self) -> &[OpProfile] {
        &self.ops
    }

    /// Looks up the profile entry recorded under an operator key (the
    /// address of the plan/AST node it executed).
    pub(crate) fn op_for_key(&self, key: usize) -> Option<&OpProfile> {
        self.index.get(&key).map(|&i| &self.ops[i])
    }

    /// Position of an operator key in [`Self::ops`], if recorded.
    pub(crate) fn op_position(&self, key: usize) -> Option<usize> {
        self.index.get(&key).copied()
    }

    /// Multi-line human-readable rendering (one operator per line), used by
    /// the serve slow-query log.
    pub fn render(&self) -> String {
        let mut out = format!("total time: {}", format_nanos(self.total_nanos));
        for op in &self.ops {
            out.push('\n');
            out.push_str(&op.label);
            out.push(' ');
            out.push_str(&op.annotation());
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Mutable profile accumulator the executor carries while profiling is
/// enabled. `record` is keyed by operator address so repeated invocations
/// of the same operator (per outer row, per batch round) accumulate into
/// one entry; the label closure only runs on first touch.
#[derive(Debug)]
pub(crate) struct Profiler {
    started: Instant,
    ops: Vec<OpProfile>,
    index: HashMap<usize, usize>,
}

impl Profiler {
    pub(crate) fn new() -> Self {
        Profiler { started: Instant::now(), ops: Vec::new(), index: HashMap::new() }
    }

    pub(crate) fn record(
        &mut self,
        key: usize,
        label: impl FnOnce() -> String,
        rows_out: u64,
        batches: u64,
        nanos: u64,
    ) {
        let slot = match self.index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.ops.len();
                self.ops.push(OpProfile {
                    label: label(),
                    invocations: 0,
                    rows_out: 0,
                    batches: 0,
                    nanos: 0,
                });
                self.index.insert(key, i);
                i
            }
        };
        let op = &mut self.ops[slot];
        op.invocations += 1;
        op.rows_out += rows_out;
        op.batches += batches;
        op.nanos += nanos;
    }

    pub(crate) fn finish(self) -> QueryProfile {
        QueryProfile {
            total_nanos: self.started.elapsed().as_nanos() as u64,
            ops: self.ops,
            index: self.index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_key_in_first_touch_order() {
        let mut p = Profiler::new();
        p.record(10, || "SeqScan a".into(), 5, 0, 100);
        p.record(20, || "HashJoin".into(), 3, 1, 50);
        p.record(10, || panic!("label closure must not re-run"), 7, 0, 25);
        let profile = p.finish();
        assert_eq!(profile.ops().len(), 2);
        let scan = profile.op_for_key(10).unwrap();
        assert_eq!(scan.label, "SeqScan a");
        assert_eq!(scan.invocations, 2);
        assert_eq!(scan.rows_out, 12);
        assert_eq!(scan.nanos, 125);
        assert_eq!(profile.op_position(20), Some(1));
        assert!(profile.op_for_key(99).is_none());
    }

    #[test]
    fn format_nanos_tiers() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(1_500), "1.5us");
        assert_eq!(format_nanos(2_500_000), "2.5ms");
        assert_eq!(format_nanos(3_000_000_000), "3.00s");
    }

    #[test]
    fn annotation_includes_batches_only_when_present() {
        let row =
            OpProfile { label: "x".into(), invocations: 1, rows_out: 2, batches: 0, nanos: 10 };
        assert_eq!(row.annotation(), "(invocations=1 rows=2 time=10ns)");
        let col = OpProfile { batches: 3, ..row.clone() };
        assert_eq!(col.annotation(), "(invocations=1 rows=2 batches=3 time=10ns)");
    }
}
