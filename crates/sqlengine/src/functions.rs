//! Scalar SQL functions supported by the expression evaluator.

use crate::error::{SqlError, SqlResult};
use crate::value::Value;

/// Evaluates a scalar function call on already-evaluated arguments.
pub fn eval_scalar_function(name: &str, args: &[Value]) -> SqlResult<Value> {
    match name {
        "LENGTH" => {
            expect_arity(name, args, 1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Text(s) => Value::Integer(s.chars().count() as i64),
                other => Value::Integer(other.render().chars().count() as i64),
            })
        }
        "UPPER" => {
            expect_arity(name, args, 1)?;
            Ok(map_text(&args[0], |s| s.to_uppercase()))
        }
        "LOWER" => {
            expect_arity(name, args, 1)?;
            Ok(map_text(&args[0], |s| s.to_lowercase()))
        }
        "TRIM" => {
            expect_arity(name, args, 1)?;
            Ok(map_text(&args[0], |s| s.trim().to_string()))
        }
        "ABS" => {
            expect_arity(name, args, 1)?;
            Ok(match args[0].coerce_numeric() {
                Value::Integer(i) => Value::Integer(i.abs()),
                Value::Real(r) => Value::Real(r.abs()),
                _ => Value::Null,
            })
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(SqlError::UnknownFunction("ROUND expects 1 or 2 arguments".into()));
            }
            let digits = if args.len() == 2 { args[1].as_i64().unwrap_or(0) } else { 0 };
            Ok(match args[0].coerce_numeric() {
                Value::Integer(i) => Value::Real(i as f64),
                Value::Real(r) => {
                    let m = 10f64.powi(digits as i32);
                    Value::Real((r * m).round() / m)
                }
                _ => Value::Null,
            })
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() < 2 || args.len() > 3 {
                return Err(SqlError::UnknownFunction("SUBSTR expects 2 or 3 arguments".into()));
            }
            let s = match &args[0] {
                Value::Null => return Ok(Value::Null),
                v => v.render(),
            };
            let chars: Vec<char> = s.chars().collect();
            let start = args[1].as_i64().unwrap_or(1);
            // SQLite SUBSTR is 1-based; negative counts from the end.
            let begin = if start > 0 {
                (start - 1) as usize
            } else if start < 0 {
                chars.len().saturating_sub(start.unsigned_abs() as usize)
            } else {
                0
            };
            let len = if args.len() == 3 {
                args[2].as_i64().unwrap_or(0).max(0) as usize
            } else {
                chars.len().saturating_sub(begin)
            };
            let out: String = chars.iter().skip(begin).take(len).collect();
            Ok(Value::Text(out))
        }
        "INSTR" => {
            expect_arity(name, args, 2)?;
            let (h, n) = match (&args[0], &args[1]) {
                (Value::Null, _) | (_, Value::Null) => return Ok(Value::Null),
                (a, b) => (a.render(), b.render()),
            };
            Ok(Value::Integer(h.find(&n).map(|p| p as i64 + 1).unwrap_or(0)))
        }
        "REPLACE" => {
            expect_arity(name, args, 3)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            Ok(Value::Text(args[0].render().replace(&args[1].render(), &args[2].render())))
        }
        "COALESCE" | "IFNULL" => {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        "NULLIF" => {
            expect_arity(name, args, 2)?;
            if !args[0].is_null() && args[0].grouping_eq(&args[1]) {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        "IIF" => {
            expect_arity(name, args, 3)?;
            Ok(if args[0].to_truth().is_true() { args[1].clone() } else { args[2].clone() })
        }
        "STRFTIME" => {
            expect_arity(name, args, 2)?;
            strftime(&args[0], &args[1])
        }
        "MIN2" | "MAX2" => {
            // two-argument scalar min/max (exposed for generated SQL robustness)
            expect_arity(name, args, 2)?;
            let ord = args[0].sql_cmp(&args[1]);
            Ok(match ord {
                None => Value::Null,
                Some(o) => {
                    let pick_first = if name == "MIN2" { o.is_le() } else { o.is_ge() };
                    if pick_first {
                        args[0].clone()
                    } else {
                        args[1].clone()
                    }
                }
            })
        }
        other => Err(SqlError::UnknownFunction(other.to_string())),
    }
}

fn expect_arity(name: &str, args: &[Value], n: usize) -> SqlResult<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(SqlError::UnknownFunction(format!("{name} expects {n} arguments, got {}", args.len())))
    }
}

fn map_text(v: &Value, f: impl Fn(&str) -> String) -> Value {
    match v {
        Value::Null => Value::Null,
        Value::Text(s) => Value::Text(f(s)),
        other => Value::Text(f(&other.render())),
    }
}

/// Minimal STRFTIME supporting `%Y`, `%m`, `%d` over ISO `YYYY-MM-DD` dates,
/// which is what BIRD-style gold SQL uses for birthday / date filters.
fn strftime(format: &Value, date: &Value) -> SqlResult<Value> {
    let (fmt, d) = match (format, date) {
        (Value::Null, _) | (_, Value::Null) => return Ok(Value::Null),
        (f, d) => (f.render(), d.render()),
    };
    let parts: Vec<&str> = d.split('-').collect();
    if parts.len() < 3 {
        return Ok(Value::Null);
    }
    let (year, month, day) = (parts[0], parts[1], &parts[2][..parts[2].len().min(2)]);
    let out = fmt.replace("%Y", year).replace("%m", month).replace("%d", day);
    Ok(Value::Text(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_upper_lower_trim() {
        assert_eq!(eval_scalar_function("LENGTH", &["abc".into()]).unwrap(), Value::Integer(3));
        assert_eq!(eval_scalar_function("UPPER", &["abc".into()]).unwrap(), Value::text("ABC"));
        assert_eq!(eval_scalar_function("LOWER", &["AbC".into()]).unwrap(), Value::text("abc"));
        assert_eq!(eval_scalar_function("TRIM", &["  x ".into()]).unwrap(), Value::text("x"));
        assert!(eval_scalar_function("LENGTH", &[Value::Null]).unwrap().is_null());
    }

    #[test]
    fn round_and_abs() {
        assert_eq!(
            eval_scalar_function("ROUND", &[Value::Real(1.23456), Value::Integer(2)]).unwrap(),
            Value::Real(1.23)
        );
        assert_eq!(eval_scalar_function("ABS", &[Value::Integer(-5)]).unwrap(), Value::Integer(5));
    }

    #[test]
    fn substr_one_based_and_negative() {
        assert_eq!(
            eval_scalar_function("SUBSTR", &["abcdef".into(), 2.into(), 3.into()]).unwrap(),
            Value::text("bcd")
        );
        assert_eq!(
            eval_scalar_function("SUBSTR", &["abcdef".into(), (-2).into()]).unwrap(),
            Value::text("ef")
        );
    }

    #[test]
    fn instr_and_replace() {
        assert_eq!(
            eval_scalar_function("INSTR", &["hello".into(), "ll".into()]).unwrap(),
            Value::Integer(3)
        );
        assert_eq!(
            eval_scalar_function("REPLACE", &["a-b".into(), "-".into(), "_".into()]).unwrap(),
            Value::text("a_b")
        );
    }

    #[test]
    fn coalesce_iif_nullif() {
        assert_eq!(
            eval_scalar_function("COALESCE", &[Value::Null, Value::Integer(2)]).unwrap(),
            Value::Integer(2)
        );
        assert_eq!(
            eval_scalar_function("IIF", &[Value::Integer(1), "y".into(), "n".into()]).unwrap(),
            Value::text("y")
        );
        assert!(eval_scalar_function("NULLIF", &[Value::Integer(2), Value::Integer(2)])
            .unwrap()
            .is_null());
    }

    #[test]
    fn strftime_extracts_year() {
        assert_eq!(
            eval_scalar_function("STRFTIME", &["%Y".into(), "1996-05-13".into()]).unwrap(),
            Value::text("1996")
        );
    }

    #[test]
    fn unknown_function_is_error() {
        assert!(matches!(eval_scalar_function("MEDIAN", &[]), Err(SqlError::UnknownFunction(_))));
    }
}
