//! Decorrelation: rewriting correlated subqueries into hash semi / anti /
//! aggregate ("group") joins.
//!
//! A correlated scalar/`IN`/`EXISTS` subquery is *planned* once per statement
//! (the [`crate::plan::PlanCache`] takes care of that) but, without this
//! module, *executed* once per outer row — quadratic in the outer relation.
//! Classic decorrelation turns that per-row re-execution into a single pass:
//! the subquery's correlation predicate (`inner.k = outer.k`) is stripped,
//! the remaining — now provably uncorrelated — **build side** executes once,
//! a hash table ([`crate::storage::EqKeyMap`]) is built over the inner key,
//! and every outer row becomes an O(1) hash **probe**:
//!
//! * `EXISTS (…)` / `NOT EXISTS (…)` → hash **semi/anti join**: the probe
//!   asks whether any build row matches every correlation key (the `NOT`
//!   stays at the evaluation site, which already negates the emptiness
//!   test).
//! * `expr IN (…)` → hash **semi join with a value column**: the build
//!   additionally carries the subquery's projected value; the probe returns
//!   the matching rows' values so the evaluation site applies its usual
//!   (NULL-correct) `IN` comparison against exactly the rows the correlated
//!   subquery would have produced for that outer row.
//! * correlated scalar aggregates (`SELECT agg(…) … WHERE inner.k = outer.k`)
//!   → hash **group join**: the build carries the correlation keys plus the
//!   aggregate arguments; each probe aggregates its matching rows, and a
//!   [`crate::storage::GroupKeyMap`]-keyed memo makes that aggregation run
//!   once per *distinct* outer key — a lazily materialized pre-aggregated
//!   build side.
//!
//! ## Why the group join aggregates lazily
//!
//! An eagerly pre-grouped build (`GROUP BY inner.k`) would be keyed by
//! [`Value::grouping_eq`] while the correlation predicate compares with
//! [`Value::sql_cmp`] — and `sql_cmp` equality is not transitive (`2 = '2'`
//! and `2 = '2.0'` but `'2' ≠ '2.0'`; NaN compares equal to every number).
//! A probe could therefore match *several* pre-built groups, or miss rows
//! hidden inside a group whose key does not match. Probing raw rows through
//! [`crate::storage::EqKeyMap`] (which implements `sql_cmp` equality
//! exactly, NULL and NaN included) and aggregating the matched set keeps the
//! rewrite bit-for-bit faithful to the per-row reference; memoizing by
//! `grouping_eq` of the *probe* key is sound because grouping-equal non-NaN
//! probe keys have identical `sql_cmp` match sets (NaN probes bypass the
//! memo).
//!
//! ## When the rewrite is refused
//!
//! [`decorrelate`] is deliberately conservative; it returns `None` — leaving
//! the subquery on the per-outer-row cached-plan path — whenever equivalence
//! is not *provable*:
//!
//! * correlation through anything but a top-level equality conjunct
//!   (non-equality comparisons, disjunctions, correlation inside `OR`);
//! * subqueries with `GROUP BY`, `HAVING`, `DISTINCT`, `ORDER BY`, `LIMIT`,
//!   or `OFFSET` (a `LIMIT` inside a correlated subquery is per-outer-row
//!   and cannot move to a shared build);
//! * `IN` subqueries whose projection is not a single aggregate-free
//!   expression, and scalar subqueries whose projection is not
//!   "aggregate-pure" (every column reference inside an aggregate argument);
//! * error-capable expressions (nested subqueries, aggregates, scalar
//!   function calls) anywhere the rewrite would relocate evaluation — in
//!   residual conjuncts (evaluated on every build row instead of only the
//!   rows the stripped correlation equality admits, and never skipped by an
//!   `AND` short-circuit), in an `EXISTS` projection (discarded by the semi
//!   join but evaluated per matched row by the reference), in the `IN` value
//!   column, or in an aggregate argument: a nested subquery can *error* at
//!   evaluation time (multi-row scalar) and a function call can error
//!   (unknown name, wrong arity), so moving or dropping an evaluation site
//!   could change which queries fail. The engine's error-surfacing contract
//!   is plan-dependent in general (see [`crate::plan`]: predicate pushdown
//!   already reorders conjunct evaluation), but the rewrite stays
//!   conservative and refuses the reachable error-capable forms outright;
//! * any shape where the rewritten build side fails
//!   [`crate::plan::is_uncorrelated`] — the same static analysis that
//!   licenses the uncorrelated-subquery result cache doubles as the safety
//!   net here: a correlation the classifier missed (an `ON` clause reading
//!   the outer row, a nested subquery escaping the build's scope, …) makes
//!   the build non-self-contained and vetoes the rewrite.
//!
//! The rewrite itself is purely schema-driven and deterministic, so
//! [`crate::plan::PlanCache`] caches the analysis per subquery and
//! [`crate::prepared::SharedPlanCache`] shares it — rewritten build
//! statements are `Arc`-pinned, which keeps their plans address-stable and
//! shareable across statements, sessions, and threads exactly like ordinary
//! plans. The nested-loop reference mode never decorrelates, so
//! `tests/engine_conformance.rs` and the decorrelation suite can hold the
//! rewrite to row-identical results on every query.
//!
//! [`Value::grouping_eq`]: crate::value::Value::grouping_eq
//! [`Value::sql_cmp`]: crate::value::Value::sql_cmp

use crate::ast::{AggregateKind, CompareOp, Expr, Projection, SelectStatement};
use crate::plan::{is_uncorrelated, resolve_in, statement_input_layout, ColMeta};
use crate::storage::Database;

/// The expression position a subquery appears in, which determines the
/// decorrelated operator shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubqueryPosition {
    /// `[NOT] EXISTS (subquery)`.
    Exists,
    /// `expr [NOT] IN (subquery)`.
    In,
    /// A scalar subquery in expression position.
    Scalar,
}

/// One aggregate extracted from a scalar subquery's projection.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub kind: AggregateKind,
    /// `DISTINCT` aggregate.
    pub distinct: bool,
    /// Build-output column holding the evaluated aggregate argument;
    /// `None` for `COUNT(*)`, which counts matched rows directly.
    pub arg_col: Option<usize>,
}

/// How the probe side consumes the build side.
#[derive(Debug, Clone, PartialEq)]
pub enum DecorrelatedKind {
    /// Hash semi join (`EXISTS`; `NOT EXISTS` negates at the eval site):
    /// the probe reports whether any build row matches all correlation keys.
    SemiJoin,
    /// Hash semi join with a value column (`IN`): the probe returns the
    /// matching rows' value column for the eval site's `IN` comparison.
    InSemiJoin,
    /// Hash group join (correlated scalar aggregate): the probe aggregates
    /// the matching rows and evaluates `projection` over the results.
    GroupJoin {
        /// The aggregates of the original projection, in extraction order.
        aggregates: Vec<AggSpec>,
        /// The original scalar projection with each `Aggregate` node
        /// replaced by a synthetic column `#aggN` (resolved against the
        /// computed aggregate values at probe time).
        projection: Expr,
    },
}

/// A correlated subquery rewritten into a hash-join build/probe pair.
///
/// The build statement is provably uncorrelated (checked by
/// [`is_uncorrelated`]) and is boxed so its address stays stable for the
/// life of this struct — the invariant the address-keyed
/// [`crate::plan::PlanCache`] needs to cache the build's physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DecorrelatedSubquery {
    /// Operator shape and (for group joins) the aggregate recipe.
    pub kind: DecorrelatedKind,
    /// The uncorrelated build-side statement, executed once per enclosing
    /// statement execution.
    pub build: Box<SelectStatement>,
    /// Outer-side expressions of the correlation equalities, evaluated
    /// against the outer scope at probe time; parallel to [`Self::key_cols`].
    pub outer_keys: Vec<Expr>,
    /// Build-output columns holding the inner-side correlation keys.
    pub key_cols: Vec<usize>,
    /// Build-output column of the `IN` value ([`DecorrelatedKind::InSemiJoin`]).
    pub value_col: Option<usize>,
}

/// Classification of one side of a candidate correlation equality, relative
/// to the subquery's own FROM/JOIN layout.
enum SideClass {
    /// Every column reference resolves in the subquery's layout.
    Inner,
    /// At least one reference, none resolving locally: reads the outer row.
    Outer,
    /// Constants, mixed references, aggregates, or nested subqueries —
    /// unusable as a correlation key side.
    Neither,
}

fn classify(expr: &Expr, inner: &[ColMeta]) -> SideClass {
    if expr.contains_subquery() || expr.contains_aggregate() {
        return SideClass::Neither;
    }
    let mut refs = Vec::new();
    expr.referenced_columns(&mut refs);
    if refs.is_empty() {
        return SideClass::Neither;
    }
    let resolved = refs
        .iter()
        .filter(|(qual, name)| !resolve_in(inner, qual.as_deref(), name).is_empty())
        .count();
    if resolved == refs.len() {
        SideClass::Inner
    } else if resolved == 0 {
        SideClass::Outer
    } else {
        SideClass::Neither
    }
}

/// Walks a scalar projection, replacing every `Aggregate` node with a
/// synthetic `#aggN` column and recording its spec. Returns `None` when the
/// projection is not aggregate-pure (a column reference or subquery outside
/// an aggregate argument), in which case the probe could not reproduce the
/// reference semantics from aggregate values alone.
fn extract_aggregates(
    expr: &Expr,
    args: &mut Vec<(AggregateKind, bool, Option<Expr>)>,
) -> Option<Expr> {
    let walk = |e: &Expr, args: &mut Vec<_>| extract_aggregates(e, args);
    Some(match expr {
        Expr::Aggregate { kind, distinct, arg } => {
            let idx = args.len();
            args.push((*kind, *distinct, arg.as_deref().cloned()));
            synthetic_agg_column(idx)
        }
        Expr::Literal(v) => Expr::Literal(v.clone()),
        // A bare column outside any aggregate: its value depends on which
        // matching row the reference executor picks as group context.
        Expr::Column { .. } => return None,
        Expr::Compare { op, left, right } => Expr::Compare {
            op: *op,
            left: Box::new(walk(left, args)?),
            right: Box::new(walk(right, args)?),
        },
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(walk(left, args)?),
            right: Box::new(walk(right, args)?),
        },
        Expr::Concat { left, right } => {
            Expr::Concat { left: Box::new(walk(left, args)?), right: Box::new(walk(right, args)?) }
        }
        Expr::And(a, b) => Expr::And(Box::new(walk(a, args)?), Box::new(walk(b, args)?)),
        Expr::Or(a, b) => Expr::Or(Box::new(walk(a, args)?), Box::new(walk(b, args)?)),
        Expr::Not(e) => Expr::Not(Box::new(walk(e, args)?)),
        Expr::Neg(e) => Expr::Neg(Box::new(walk(e, args)?)),
        Expr::IsNull { negated, expr } => {
            Expr::IsNull { negated: *negated, expr: Box::new(walk(expr, args)?) }
        }
        Expr::Between { negated, expr, low, high } => Expr::Between {
            negated: *negated,
            expr: Box::new(walk(expr, args)?),
            low: Box::new(walk(low, args)?),
            high: Box::new(walk(high, args)?),
        },
        Expr::Case { operand, branches, else_branch } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(walk(o, args)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| Some((walk(w, args)?, walk(t, args)?)))
                .collect::<Option<Vec<_>>>()?,
            else_branch: match else_branch {
                Some(e) => Some(Box::new(walk(e, args)?)),
                None => None,
            },
        },
        Expr::Cast { expr, target } => {
            Expr::Cast { expr: Box::new(walk(expr, args)?), target: *target }
        }
        Expr::Function { name, args: fargs } => Expr::Function {
            name: name.clone(),
            args: fargs.iter().map(|a| walk(a, args)).collect::<Option<Vec<_>>>()?,
        },
        Expr::Like { negated, expr, pattern } => Expr::Like {
            negated: *negated,
            expr: Box::new(walk(expr, args)?),
            pattern: Box::new(walk(pattern, args)?),
        },
        Expr::InList { negated, expr, list } => Expr::InList {
            negated: *negated,
            expr: Box::new(walk(expr, args)?),
            list: list.iter().map(|e| walk(e, args)).collect::<Option<Vec<_>>>()?,
        },
        // Nested subqueries inside the scalar projection: bail.
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => return None,
    })
}

/// The synthetic column a probe resolves the `i`-th aggregate result under.
/// The leading `#` keeps it out of any parseable identifier's namespace.
pub(crate) fn synthetic_agg_column(i: usize) -> Expr {
    Expr::Column { table: None, column: synthetic_agg_name(i) }
}

/// Name of the `i`-th synthetic aggregate column.
pub(crate) fn synthetic_agg_name(i: usize) -> String {
    format!("#agg{i}")
}

/// Attempts to rewrite a correlated subquery into a decorrelated build/probe
/// pair. Returns `None` when the shape is not provably rewritable — the
/// caller keeps the per-outer-row cached-plan path, so a refusal costs
/// performance, never correctness.
///
/// The analysis is purely schema-driven (no data access) and deterministic,
/// so its result can be cached per subquery and shared across threads.
pub fn decorrelate(
    db: &Database,
    query: &SelectStatement,
    pos: SubqueryPosition,
) -> Option<DecorrelatedSubquery> {
    // Shape gates shared by every position. LIMIT/OFFSET are per-outer-row
    // and cannot move to a shared build; GROUP BY / HAVING / DISTINCT /
    // ORDER BY change the build's row multiset or evaluation order in ways
    // the probe cannot replay.
    if query.from.is_none()
        || query.limit.is_some()
        || query.offset.is_some()
        || !query.order_by.is_empty()
        || query.distinct
        || !query.group_by.is_empty()
        || query.having.is_some()
    {
        return None;
    }
    let where_clause = query.where_clause.as_ref()?;
    let inner = statement_input_layout(db, query).ok()?;

    // Split the WHERE into correlation equalities (one provably inner side,
    // one provably outer side) and residual conjuncts that stay on the build.
    let mut inner_keys: Vec<Expr> = Vec::new();
    let mut outer_keys: Vec<Expr> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for conj in where_clause.split_conjuncts() {
        let mut matched = false;
        if let Expr::Compare { op: CompareOp::Eq, left, right } = conj {
            match (classify(left, &inner), classify(right, &inner)) {
                (SideClass::Inner, SideClass::Outer) => {
                    inner_keys.push((**left).clone());
                    outer_keys.push((**right).clone());
                    matched = true;
                }
                (SideClass::Outer, SideClass::Inner) => {
                    inner_keys.push((**right).clone());
                    outer_keys.push((**left).clone());
                    matched = true;
                }
                _ => {}
            }
        }
        if !matched {
            // A residual conjunct moves to the build's WHERE, where it is
            // evaluated on *every* build row — the reference only evaluates
            // it on rows the (stripped) correlation equality admits, and an
            // `AND` short-circuit can skip it entirely. For total
            // expressions that changes nothing, but a nested subquery can
            // *error* at evaluation time (multi-row scalar), an aggregate
            // in WHERE always errors ("outside GROUP context"), and a
            // scalar function call can error (unknown name, wrong arity) —
            // so relocating any of them could surface an error the
            // reference's short-circuit never reaches.
            if conj.contains_subquery() || conj.contains_aggregate() || conj.contains_function() {
                return None;
            }
            residual.push(conj.clone());
        }
    }
    if inner_keys.is_empty() {
        return None;
    }

    // Assemble the build statement per position.
    let project = |e: Expr| Projection::Expr { expr: e, alias: None };
    let (kind, projections, key_cols, value_col) = match pos {
        SubqueryPosition::Exists => {
            // EXISTS ignores projection *values*, but not every projection
            // can be discarded: an aggregate projection collapses the
            // subquery to a single always-present row (different semantics,
            // not a semi join), and a projected subquery or function call
            // can error when the reference evaluates it per matched row —
            // the semi join would suppress that error by never evaluating
            // the projection.
            if query.projections.iter().any(|p| match p {
                Projection::Expr { expr, .. } => {
                    expr.contains_aggregate()
                        || expr.contains_subquery()
                        || expr.contains_function()
                }
                _ => false,
            }) {
                return None;
            }
            let projections: Vec<Projection> = inner_keys.iter().cloned().map(project).collect();
            let key_cols = (0..inner_keys.len()).collect();
            (DecorrelatedKind::SemiJoin, projections, key_cols, None)
        }
        SubqueryPosition::In => {
            // The IN comparison consumes the first output column; require
            // exactly one aggregate-free expression so the build's value
            // column is the same value the reference would have produced.
            let [Projection::Expr { expr: value, .. }] = query.projections.as_slice() else {
                return None;
            };
            // The value column is evaluated for every build row instead of
            // only the reference's correlation-matched rows, so it must be
            // total: no aggregates (different semantics), and no nested
            // subqueries or function calls (both can error on rows the
            // reference never evaluates).
            if value.contains_aggregate() || value.contains_subquery() || value.contains_function()
            {
                return None;
            }
            let mut projections = vec![project(value.clone())];
            projections.extend(inner_keys.iter().cloned().map(project));
            let key_cols = (1..=inner_keys.len()).collect();
            (DecorrelatedKind::InSemiJoin, projections, key_cols, Some(0))
        }
        SubqueryPosition::Scalar => {
            let [Projection::Expr { expr: scalar, .. }] = query.projections.as_slice() else {
                return None;
            };
            if !scalar.contains_aggregate() {
                // Without an aggregate the subquery is not guaranteed to
                // produce one row per outer key; keep the per-row path (and
                // its more-than-one-row error behaviour).
                return None;
            }
            let mut agg_args: Vec<(AggregateKind, bool, Option<Expr>)> = Vec::new();
            let projection = extract_aggregates(scalar, &mut agg_args)?;
            let mut projections: Vec<Projection> =
                inner_keys.iter().cloned().map(project).collect();
            let mut aggregates = Vec::with_capacity(agg_args.len());
            let mut next_col = inner_keys.len();
            for (kind, distinct, arg) in agg_args {
                let arg_col = match arg {
                    None => {
                        if kind != AggregateKind::Count {
                            // `SUM()` etc. error at evaluation time in the
                            // reference; keep that behaviour per-row.
                            return None;
                        }
                        None
                    }
                    Some(a) => {
                        // Aggregate arguments become build columns evaluated
                        // on every build row; like residual conjuncts, a
                        // nested subquery or function call inside one could
                        // error on rows the reference's matched set never
                        // reaches.
                        if a.contains_subquery() || a.contains_function() {
                            return None;
                        }
                        projections.push(project(a));
                        next_col += 1;
                        Some(next_col - 1)
                    }
                };
                aggregates.push(AggSpec { kind, distinct, arg_col });
            }
            let key_cols = (0..inner_keys.len()).collect();
            (DecorrelatedKind::GroupJoin { aggregates, projection }, projections, key_cols, None)
        }
    };

    let build = Box::new(SelectStatement {
        distinct: false,
        projections,
        from: query.from.clone(),
        joins: query.joins.clone(),
        where_clause: residual.into_iter().reduce(|a, b| Expr::And(Box::new(a), Box::new(b))),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
        offset: None,
    });

    // Safety net: the rewritten build must be provably self-contained. This
    // catches every correlation channel the conjunct classifier does not
    // model — ON clauses reading the outer row (including via later-joined
    // aliases), nested subqueries escaping the build's scope, unknown
    // tables — and vetoes the rewrite so execution falls back to the
    // per-outer-row reference path.
    if !is_uncorrelated(db, &build) {
        return None;
    }

    Some(DecorrelatedSubquery { kind, build, outer_keys, key_cols, value_col })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TableRef;
    use crate::parser::parse_select;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    /// True when any table reference in the statement is a derived table —
    /// used to document build-side coverage.
    fn has_derived(stmt: &SelectStatement) -> bool {
        let is_derived = |t: &TableRef| matches!(t, TableRef::Derived { .. });
        stmt.from.as_ref().is_some_and(is_derived)
            || stmt.joins.iter().any(|j| is_derived(&j.table))
    }

    fn db() -> Database {
        let mut db = Database::new("decorr");
        db.create_table(TableSchema::new(
            "account",
            vec![
                ColumnDef::new("account_id", DataType::Integer).primary_key(),
                ColumnDef::new("district_id", DataType::Integer),
            ],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "loan",
            vec![
                ColumnDef::new("loan_id", DataType::Integer).primary_key(),
                ColumnDef::new("account_id", DataType::Integer),
                ColumnDef::new("amount", DataType::Real),
            ],
        ))
        .unwrap();
        db
    }

    /// Parses the subquery out of `WHERE EXISTS (..)` / `IN (..)` / a scalar
    /// comparison so tests exercise the real parser shapes.
    fn subquery_of(sql: &str) -> (SelectStatement, SubqueryPosition) {
        let stmt = parse_select(sql).unwrap();
        fn find(e: &Expr) -> Option<(SelectStatement, SubqueryPosition)> {
            match e {
                Expr::Exists { query, .. } => Some(((**query).clone(), SubqueryPosition::Exists)),
                Expr::InSubquery { query, .. } => Some(((**query).clone(), SubqueryPosition::In)),
                Expr::ScalarSubquery(query) => Some(((**query).clone(), SubqueryPosition::Scalar)),
                Expr::Compare { left, right, .. } => find(left).or_else(|| find(right)),
                Expr::And(a, b) | Expr::Or(a, b) => find(a).or_else(|| find(b)),
                Expr::Not(inner) => find(inner),
                _ => None,
            }
        }
        find(stmt.where_clause.as_ref().unwrap()).expect("query contains a subquery")
    }

    fn try_rewrite(sql: &str) -> Option<DecorrelatedSubquery> {
        let d = db();
        let (sub, pos) = subquery_of(sql);
        decorrelate(&d, &sub, pos)
    }

    #[test]
    fn correlated_exists_rewrites_to_semi_join() {
        let rw = try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.account_id = account.account_id \
              AND loan.amount > 1000)",
        )
        .expect("rewritable");
        assert_eq!(rw.kind, DecorrelatedKind::SemiJoin);
        assert_eq!(rw.key_cols, vec![0]);
        assert_eq!(rw.outer_keys.len(), 1);
        // The residual conjunct stays on the build side.
        assert!(rw.build.where_clause.is_some());
        assert!(is_uncorrelated(&db(), &rw.build));
    }

    #[test]
    fn correlated_in_rewrites_with_value_column() {
        let rw = try_rewrite(
            "SELECT loan_id FROM loan WHERE account_id IN \
             (SELECT a.account_id FROM account AS a WHERE a.district_id = loan.loan_id)",
        )
        .expect("rewritable");
        assert_eq!(rw.kind, DecorrelatedKind::InSemiJoin);
        assert_eq!(rw.value_col, Some(0));
        assert_eq!(rw.key_cols, vec![1]);
    }

    #[test]
    fn correlated_scalar_aggregate_rewrites_to_group_join() {
        let rw = try_rewrite(
            "SELECT account_id FROM account WHERE account_id > \
             (SELECT AVG(l.amount) FROM loan AS l WHERE l.account_id = account.account_id)",
        )
        .expect("rewritable");
        let DecorrelatedKind::GroupJoin { aggregates, projection } = &rw.kind else {
            panic!("expected group join, got {:?}", rw.kind);
        };
        assert_eq!(aggregates.len(), 1);
        assert_eq!(aggregates[0].kind, AggregateKind::Avg);
        assert_eq!(aggregates[0].arg_col, Some(1), "key col 0, arg col 1");
        assert_eq!(projection, &synthetic_agg_column(0));
    }

    #[test]
    fn compound_aggregate_projection_extracts_every_aggregate() {
        let rw = try_rewrite(
            "SELECT account_id FROM account WHERE account_id > \
             (SELECT MAX(l.amount) - MIN(l.amount) FROM loan AS l \
              WHERE l.account_id = account.account_id)",
        )
        .expect("rewritable");
        let DecorrelatedKind::GroupJoin { aggregates, .. } = &rw.kind else {
            panic!("expected group join");
        };
        assert_eq!(aggregates.len(), 2);
        assert_eq!(aggregates[0].arg_col, Some(1));
        assert_eq!(aggregates[1].arg_col, Some(2));
    }

    #[test]
    fn count_star_needs_no_argument_column() {
        let rw = try_rewrite(
            "SELECT account_id FROM account WHERE 0 < \
             (SELECT COUNT(*) FROM loan WHERE loan.account_id = account.account_id)",
        )
        .expect("rewritable");
        let DecorrelatedKind::GroupJoin { aggregates, .. } = &rw.kind else {
            panic!("expected group join");
        };
        assert_eq!(aggregates[0].arg_col, None);
        assert_eq!(rw.build.projections.len(), 1, "keys only, no argument column");
    }

    #[test]
    fn multi_key_correlation_collects_every_equality() {
        let rw = try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.account_id = account.account_id \
              AND loan.loan_id = account.district_id)",
        )
        .expect("rewritable");
        assert_eq!(rw.key_cols, vec![0, 1]);
        assert_eq!(rw.outer_keys.len(), 2);
    }

    #[test]
    fn unrewritable_shapes_are_refused() {
        // Non-equality correlation.
        assert!(try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.amount > account.account_id)"
        )
        .is_none());
        // Correlation inside a disjunction.
        assert!(try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.account_id = account.account_id OR loan.amount > 5)"
        )
        .is_none());
        // LIMIT inside the subquery.
        assert!(try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.account_id = account.account_id LIMIT 1)"
        )
        .is_none());
        // GROUP BY inside the subquery.
        assert!(try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT loan.account_id FROM loan \
              WHERE loan.account_id = account.account_id GROUP BY loan.account_id)"
        )
        .is_none());
        // Scalar subquery without an aggregate (not guaranteed single-row).
        assert!(try_rewrite(
            "SELECT account_id FROM account WHERE account_id = \
             (SELECT loan.loan_id FROM loan WHERE loan.account_id = account.account_id)"
        )
        .is_none());
        // Scalar projection that is not aggregate-pure.
        assert!(try_rewrite(
            "SELECT account_id FROM account WHERE account_id > \
             (SELECT COUNT(*) + loan.loan_id FROM loan \
              WHERE loan.account_id = account.account_id)"
        )
        .is_none());
        // No correlation at all (the uncorrelated result cache owns this).
        assert!(try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.amount > 1000)"
        )
        .is_none());
    }

    #[test]
    fn outer_alias_shadowed_by_inner_base_name_is_refused() {
        // `loan.account_id` resolves against the inner scan (an aliased
        // table still answers to its base name), so there is no correlation
        // to strip — the classifier must see both sides as inner.
        assert!(try_rewrite(
            "SELECT account_id FROM loan WHERE EXISTS \
             (SELECT 1 FROM loan AS l WHERE l.account_id = loan.account_id)"
        )
        .is_none());
    }

    #[test]
    fn derived_table_builds_are_allowed() {
        let rw = try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM (SELECT account_id AS aid FROM loan) AS t \
              WHERE t.aid = account.account_id)",
        )
        .expect("derived-table build is rewritable");
        assert!(has_derived(&rw.build));
        assert!(is_uncorrelated(&db(), &rw.build));
    }

    #[test]
    fn on_clause_reading_the_outer_row_is_vetoed_by_the_safety_net() {
        // The correlation conjunct classifier only inspects WHERE; an ON
        // clause reading the outer row must be caught by `is_uncorrelated`.
        assert!(try_rewrite(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan INNER JOIN account AS a2 \
              ON a2.district_id = account.account_id \
              WHERE loan.account_id = account.account_id)"
        )
        .is_none());
    }
}
