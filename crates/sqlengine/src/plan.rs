//! Physical query planning: lowering a parsed `SELECT` into a tree of
//! physical operators.
//!
//! The planner replaces the legacy "cross-product everything, then filter"
//! strategy for the FROM/JOIN/WHERE section of a query with three
//! optimizations, while leaving projection, grouping, ordering, and limiting
//! to the shared executor pipeline:
//!
//! 1. **Hash equi-joins** — a join whose `ON` clause (or, for comma joins,
//!    the `WHERE` clause) contains a `left.col = right.col` conjunct builds
//!    a hash table over the right relation's key and probes it with each
//!    left row, turning an O(|L|·|R|) nested loop into O(|L| + |R|). The
//!    full `ON` predicate is still re-evaluated on hash candidates, so the
//!    hash phase can only *narrow* the candidate set, never change results.
//! 2. **Predicate pushdown** — `WHERE` conjuncts that reference exactly one
//!    base relation are evaluated while scanning that relation, shrinking
//!    join inputs. Conjuncts on the right side of a `LEFT JOIN` are never
//!    pushed (they must see the NULL-padded row), and conjuncts containing
//!    subqueries or aggregates always stay post-join.
//! 3. **Primary-key point lookups** — a pushed conjunct of the shape
//!    `pk = literal` on an indexed table fetches matching rows from the
//!    table's hash index instead of scanning.
//!
//! Before execution, correlated scalar/`IN`/`EXISTS` subqueries also pass
//! through the decorrelation analysis ([`mod@crate::decorrelate`],
//! memoized here in [`PlanCache::rewrite_for`]): provably rewritable shapes
//! become hash semi/anti/group joins executed by the runtime in
//! [`crate::exec`], the rest keep the per-outer-row cached-plan path.
//!
//! Plans preserve the legacy executor's row *order* as well as its row
//! multiset: hash probes return matches in right-scan order, so
//! `LIMIT`-without-`ORDER BY` queries stay bit-for-bit identical between
//! [`PlanMode::Optimized`] and [`PlanMode::NestedLoop`]. The conformance
//! suite in `tests/engine_conformance.rs` asserts this equivalence over
//! every gold query of both synthetic corpora.
//!
//! **Equivalence contract, precisely:** for any query that evaluates
//! without error, both modes return identical rows in identical order.
//! For queries whose predicates can *error* at evaluation time (unknown
//! function, scalar subquery with more than one row, …), which error
//! surfaces — or whether it surfaces at all — is plan-dependent: pushdown
//! reorders conjunct evaluation, so a pushed conjunct may filter out every
//! row before an erroring post-join conjunct ever runs. Production engines
//! behave the same way (predicate evaluation order is unspecified in SQL),
//! and the eval layer always runs gold and predicted SQL under the same
//! mode, so EX/VES comparisons are unaffected.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{Expr, JoinKind, Projection, SelectStatement, TableRef};
use crate::decorrelate::{decorrelate, DecorrelatedSubquery, SubqueryPosition};
use crate::error::{SqlError, SqlResult};
use crate::result::ExecStats;
use crate::storage::Database;
use crate::value::Value;

/// Which execution strategy the executor uses for FROM/JOIN/WHERE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Physical planner: hash equi-joins, PK lookups, predicate pushdown.
    #[default]
    Optimized,
    /// Legacy executor: nested-loop joins and post-join filtering only.
    /// Kept as the semantic reference the optimized plans are tested
    /// against.
    NestedLoop,
    /// Vectorized execution over the *same* physical plans as `Optimized`:
    /// operators exchange [`crate::chunk::DataChunk`] batches of typed
    /// column arrays instead of one `Vec<Value>` row at a time, with batch
    /// expression kernels for the hot paths and a per-statement row
    /// fallback for everything not yet vectorized (see [`crate::columnar`]).
    /// Row-identical to both other modes by construction and by the
    /// three-way differential suites; subquery caching and decorrelation
    /// engage exactly as in `Optimized`.
    Columnar,
}

impl PlanMode {
    /// The mode production serving paths (`seed-serve`, the eval runners)
    /// default to: columnar batch execution. Library callers keep
    /// [`PlanMode::Optimized`] as `Default` — the row pipeline remains the
    /// reference the vectorized path is differentially tested against.
    pub fn serving() -> PlanMode {
        PlanMode::Columnar
    }
}

/// Metadata for one column of a flattened (joined) relation.
#[derive(Debug, Clone)]
pub struct ColMeta {
    /// Accepted qualifiers (alias and base-table name), lowercased.
    pub quals: Vec<String>,
    /// Original column name.
    pub name: String,
}

/// A primary-key point lookup planned for a scan.
#[derive(Debug, Clone)]
pub struct PkLookup {
    /// Column position (within the scan's layout) of the primary key.
    pub column: usize,
    /// Literal the key must equal.
    pub value: Value,
}

/// A physical operator. Joins are left-deep, mirroring the syntactic join
/// chain; the planner chooses the operator per join, not the join order.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Scan of a named base table, with pushed-down predicates and an
    /// optional PK point lookup.
    SeqScan {
        table: String,
        /// Lowercased qualifiers (base name and alias) the scan answers to.
        quals: Vec<String>,
        /// Single-relation `WHERE` conjuncts evaluated during the scan.
        pushed: Vec<Expr>,
        /// When set, rows come from the PK index instead of a full scan.
        lookup: Option<PkLookup>,
    },
    /// A derived table (subquery in FROM); the subquery is itself planned
    /// when it executes.
    SubqueryScan {
        query: Box<SelectStatement>,
        alias: String,
        /// Single-relation `WHERE` conjuncts evaluated on the subquery rows.
        pushed: Vec<Expr>,
    },
    /// Hash equi-join: builds on the right input's key column, probes with
    /// the left input's. `on` is the complete join predicate, re-checked on
    /// every hash candidate.
    HashJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        kind: JoinKind,
        /// Key column position in the left (probe) layout.
        left_key: usize,
        /// Key column position in the right (build) layout.
        right_key: usize,
        on: Option<Expr>,
    },
    /// Fallback nested-loop join for predicates with no extractable equi-key.
    NestedLoopJoin { left: Box<PlanNode>, right: Box<PlanNode>, kind: JoinKind, on: Option<Expr> },
}

/// The physical plan for a query's FROM/JOIN/WHERE section.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Operator tree; `None` for a FROM-less `SELECT`.
    pub root: Option<PlanNode>,
    /// Flattened column layout of the joined relation.
    pub layout: Vec<ColMeta>,
    /// `WHERE` conjuncts that must run after the join (multi-relation
    /// predicates, subqueries, and everything not proven pushable).
    pub where_remnant: Vec<Expr>,
}

impl PhysicalPlan {
    /// Renders the operator tree, EXPLAIN-style.
    pub fn explain(&self) -> String {
        self.explain_annotated(&|_| String::new())
    }

    /// Renders the operator tree with a per-node annotation suffix —
    /// `EXPLAIN ANALYZE` passes a closure mapping each node to its measured
    /// profile (empty string ⇒ no suffix).
    pub fn explain_annotated(&self, annotate: &dyn Fn(&PlanNode) -> String) -> String {
        let mut out = String::new();
        match &self.root {
            None => out.push_str("Result (no FROM)\n"),
            Some(node) => explain_node(node, 0, annotate, &mut out),
        }
        if !self.where_remnant.is_empty() {
            out.push_str(&format!("Filter: {} post-join conjunct(s)\n", self.where_remnant.len()));
        }
        out
    }

    /// True if any operator in the tree is a hash join.
    pub fn uses_hash_join(&self) -> bool {
        fn walk(n: &PlanNode) -> bool {
            match n {
                PlanNode::HashJoin { .. } => true,
                PlanNode::NestedLoopJoin { left, right, .. } => walk(left) || walk(right),
                _ => false,
            }
        }
        self.root.as_ref().is_some_and(walk)
    }

    /// True if any scan in the tree is a PK point lookup.
    pub fn uses_index_lookup(&self) -> bool {
        fn walk(n: &PlanNode) -> bool {
            match n {
                PlanNode::SeqScan { lookup, .. } => lookup.is_some(),
                PlanNode::HashJoin { left, right, .. }
                | PlanNode::NestedLoopJoin { left, right, .. } => walk(left) || walk(right),
                PlanNode::SubqueryScan { .. } => false,
            }
        }
        self.root.as_ref().is_some_and(walk)
    }
}

/// The one-line `EXPLAIN` label for a physical operator — the single source
/// of truth shared by the plan renderer and the per-operator profiler, so
/// `EXPLAIN ANALYZE` annotations always match the rendered tree.
pub fn node_label(node: &PlanNode) -> String {
    match node {
        PlanNode::SeqScan { table, pushed, lookup, .. } => {
            let mut s = match lookup {
                Some(l) => {
                    format!("IndexLookup {table} (pk #{} = {})", l.column, l.value.render())
                }
                None => format!("SeqScan {table}"),
            };
            if !pushed.is_empty() {
                s.push_str(&format!(" [{} pushed predicate(s)]", pushed.len()));
            }
            s
        }
        PlanNode::SubqueryScan { alias, pushed, .. } => {
            let mut s = format!("SubqueryScan {alias}");
            if !pushed.is_empty() {
                s.push_str(&format!(" [{} pushed predicate(s)]", pushed.len()));
            }
            s
        }
        PlanNode::HashJoin { kind, left_key, right_key, .. } => {
            format!("HashJoin ({kind:?}) probe=#{left_key} build=#{right_key}")
        }
        PlanNode::NestedLoopJoin { kind, .. } => format!("NestedLoopJoin ({kind:?})"),
    }
}

fn explain_node(
    node: &PlanNode,
    depth: usize,
    annotate: &dyn Fn(&PlanNode) -> String,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push_str(&node_label(node));
    let suffix = annotate(node);
    if !suffix.is_empty() {
        out.push(' ');
        out.push_str(&suffix);
    }
    out.push('\n');
    match node {
        PlanNode::HashJoin { left, right, .. } | PlanNode::NestedLoopJoin { left, right, .. } => {
            explain_node(left, depth + 1, annotate, out);
            explain_node(right, depth + 1, annotate, out);
        }
        PlanNode::SeqScan { .. } | PlanNode::SubqueryScan { .. } => {}
    }
}

/// Static column layout of one plan node's output relation, mirroring what
/// executing the node materializes. Used by `EXPLAIN`'s columnar-bridge
/// analysis to evaluate batch-expressibility per operator without running
/// anything.
pub(crate) fn node_layout(db: &Database, node: &PlanNode) -> SqlResult<Vec<ColMeta>> {
    match node {
        PlanNode::SeqScan { table, quals, .. } => {
            let t = db.table(table)?;
            Ok(t.schema
                .columns
                .iter()
                .map(|c| ColMeta { quals: quals.clone(), name: c.name.clone() })
                .collect())
        }
        PlanNode::SubqueryScan { query, alias, .. } => {
            let headers = select_headers(db, query)?;
            let quals = vec![alias.to_ascii_lowercase()];
            Ok(headers.into_iter().map(|name| ColMeta { quals: quals.clone(), name }).collect())
        }
        PlanNode::HashJoin { left, right, .. } | PlanNode::NestedLoopJoin { left, right, .. } => {
            let mut cols = node_layout(db, left)?;
            cols.extend(node_layout(db, right)?);
            Ok(cols)
        }
    }
}

/// Column positions in `layout` matching a `qualifier.name` reference, in
/// layout order. Mirrors the executor's scope resolution (case-insensitive
/// names, lowercased qualifiers) so planning decisions agree with runtime
/// resolution.
pub(crate) fn resolve_in(layout: &[ColMeta], qual: Option<&str>, name: &str) -> Vec<usize> {
    let qual = qual.map(str::to_ascii_lowercase);
    layout
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            c.name.eq_ignore_ascii_case(name)
                && match &qual {
                    Some(q) => c.quals.contains(q),
                    None => true,
                }
        })
        .map(|(i, _)| i)
        .collect()
}

/// Lowercased qualifiers a table reference answers to.
fn ref_quals(tref: &TableRef) -> Vec<String> {
    match tref {
        TableRef::Named { table, alias } => {
            let mut quals = vec![table.to_ascii_lowercase()];
            if let Some(a) = alias {
                quals.push(a.to_ascii_lowercase());
            }
            quals
        }
        TableRef::Derived { alias, .. } => vec![alias.to_ascii_lowercase()],
    }
}

/// Static column layout of a table reference, without executing anything.
///
/// For derived tables this re-derives the subquery's output headers from its
/// projections, recursing for wildcards. It must agree with the executor's
/// `expand_projections`; the engine conformance suite holds the two together.
fn table_ref_layout(db: &Database, tref: &TableRef) -> SqlResult<Vec<ColMeta>> {
    let quals = ref_quals(tref);
    match tref {
        TableRef::Named { table, .. } => {
            let t = db.table(table)?;
            Ok(t.schema
                .columns
                .iter()
                .map(|c| ColMeta { quals: quals.clone(), name: c.name.clone() })
                .collect())
        }
        TableRef::Derived { query, .. } => {
            let headers = select_headers(db, query)?;
            Ok(headers.into_iter().map(|name| ColMeta { quals: quals.clone(), name }).collect())
        }
    }
}

/// Expands a projection list against a column layout into output headers
/// plus one expression per output column.
///
/// This is the *single* source of truth for projection expansion: the
/// executor calls it at runtime with the materialized relation's layout,
/// and the planner calls it (via [`select_headers`]) with the statically
/// derived layout — so the two can never disagree on a derived table's
/// output columns.
pub(crate) fn expand_projections(
    projections: &[Projection],
    cols: &[ColMeta],
) -> SqlResult<(Vec<String>, Vec<Expr>)> {
    let mut headers = Vec::new();
    let mut exprs = Vec::new();
    for p in projections {
        match p {
            Projection::Wildcard => {
                for c in cols {
                    headers.push(c.name.clone());
                    exprs.push(Expr::Column {
                        table: c.quals.first().cloned(),
                        column: c.name.clone(),
                    });
                }
                if cols.is_empty() {
                    return Err(SqlError::Execution("SELECT * with no FROM clause".into()));
                }
            }
            Projection::TableWildcard(t) => {
                let tl = t.to_ascii_lowercase();
                let mut any = false;
                for c in cols {
                    if c.quals.contains(&tl) {
                        headers.push(c.name.clone());
                        exprs
                            .push(Expr::Column { table: Some(tl.clone()), column: c.name.clone() });
                        any = true;
                    }
                }
                if !any {
                    return Err(SqlError::UnknownTable(t.clone()));
                }
            }
            Projection::Expr { expr, alias } => {
                let header = alias.clone().unwrap_or_else(|| describe_expr(expr));
                headers.push(header);
                exprs.push(expr.clone());
            }
        }
    }
    Ok((headers, exprs))
}

/// Static column layout of a statement's full FROM/JOIN input relation —
/// the scope its `WHERE` clause evaluates against. Shared with the
/// decorrelation analysis, which classifies predicate sides by whether they
/// resolve in this layout.
pub(crate) fn statement_input_layout(
    db: &Database,
    stmt: &SelectStatement,
) -> SqlResult<Vec<ColMeta>> {
    let mut inner: Vec<ColMeta> = Vec::new();
    if let Some(from) = &stmt.from {
        inner.extend(table_ref_layout(db, from)?);
    }
    for join in &stmt.joins {
        inner.extend(table_ref_layout(db, &join.table)?);
    }
    Ok(inner)
}

/// Static output headers of a `SELECT`, computed by running the shared
/// projection expansion over the statically derived input layout.
fn select_headers(db: &Database, stmt: &SelectStatement) -> SqlResult<Vec<String>> {
    let inner = statement_input_layout(db, stmt)?;
    let (headers, _) = expand_projections(&stmt.projections, &inner)?;
    Ok(headers)
}

/// Default header for an unaliased projection expression (shared with the
/// executor's projection expansion).
pub(crate) fn describe_expr(expr: &Expr) -> String {
    match expr {
        Expr::Column { table, column } => match table {
            Some(t) => format!("{t}.{column}"),
            None => column.clone(),
        },
        Expr::Aggregate { kind, distinct, arg } => {
            let inner = match arg {
                None => "*".to_string(),
                Some(a) => describe_expr(a),
            };
            if *distinct {
                format!("{}(DISTINCT {})", kind.name(), inner)
            } else {
                format!("{}({})", kind.name(), inner)
            }
        }
        Expr::Function { name, args } => {
            let inner: Vec<String> = args.iter().map(describe_expr).collect();
            format!("{}({})", name, inner.join(", "))
        }
        Expr::Literal(v) => v.render(),
        Expr::Arith { left, right, op } => {
            let sym = match op {
                crate::value::ArithOp::Add => "+",
                crate::value::ArithOp::Sub => "-",
                crate::value::ArithOp::Mul => "*",
                crate::value::ArithOp::Div => "/",
                crate::value::ArithOp::Mod => "%",
            };
            format!("{} {} {}", describe_expr(left), sym, describe_expr(right))
        }
        Expr::Cast { expr, target } => {
            format!("CAST({} AS {})", describe_expr(expr), target.sql_name())
        }
        _ => "expr".to_string(),
    }
}

/// A per-execution cache of physical plans, keyed by statement identity.
///
/// Planning is pure in the database and the statement, both of which are
/// immutable for the duration of one `execute*` call — so a statement that
/// executes many times (a correlated scalar/`IN`/`EXISTS` subquery runs once
/// per outer row, a derived table once per enclosing execution) needs
/// planning exactly once. The executor owns one cache per top-level
/// statement and threads every `plan_select` call through it; hits and
/// misses are reported in [`ExecStats`].
///
/// Besides physical plans, the cache memoizes the [`mod@crate::decorrelate`]
/// analysis per subquery: a correlated subquery is analyzed once, and a
/// successful rewrite's build statement is `Arc`-pinned here so *its* plan
/// can be address-keyed and shared like any other — repeated executions of a
/// decorrelated statement neither re-analyze nor re-plan.
///
/// Keys are the statement's address. That is sound here because every
/// statement planned during an execution is either reachable from the
/// borrowed top-level AST (alive for the whole execution) or owned by
/// something this cache keeps alive for its own lifetime: a plan already in
/// the cache (subqueries inside `SubqueryScan` nodes) or a decorrelation
/// rewrite (the `Arc`-pinned build statement) — the cache never evicts, and
/// [`PlanCache::merge`] pins superseded entries rather than dropping them,
/// so no address can be freed and reused while the cache lives.
/// [`crate::prepared::SharedPlanCache`] extends the same invariant across
/// statements and threads by pinning each prepared AST for the life of the
/// shared cache; plans are `Arc`-shared so a clone of this cache is a
/// handful of refcount bumps, not a re-plan.
#[derive(Debug, Clone)]
pub struct PlanCache {
    plans: HashMap<usize, CachedPlan>,
    /// Whether correlated subqueries may be decorrelated into hash joins.
    /// On by default; [`PlanCache::without_decorrelation`] turns it off so
    /// benches (and suspicious users) can isolate the per-outer-row
    /// cached-plan path.
    decorrelate: bool,
    /// Memoized decorrelation analysis per subquery address; a `None`
    /// rewrite records "analyzed, not rewritable" so refusals are not
    /// re-derived per row. Entries carry the same structural fingerprint as
    /// [`CachedPlan`], so address reuse fails a debug assertion instead of
    /// silently probing the wrong build side.
    rewrites: HashMap<usize, CachedRewrite>,
    /// Entries superseded during [`PlanCache::merge`]. Kept only to pin
    /// their owned ASTs: a superseded plan or rewrite can own statements
    /// whose addresses key *other* live entries, so dropping it could let
    /// an address be reused while the cache still answers for it. Keyed by
    /// `Arc` pointer identity so re-merging the same object (a snapshot
    /// folding back into its origin, the common prepared-statement cycle)
    /// is idempotent — the pin set only grows when a genuinely distinct
    /// plan/rewrite for an already-known key appears (racing planners).
    pinned_plans: HashMap<usize, Arc<PhysicalPlan>>,
    pinned_rewrites: HashMap<usize, Arc<DecorrelatedSubquery>>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            plans: HashMap::new(),
            decorrelate: true,
            rewrites: HashMap::new(),
            pinned_plans: HashMap::new(),
            pinned_rewrites: HashMap::new(),
        }
    }
}

/// A cached plan plus a cheap structural fingerprint of the statement it was
/// planned from, so an address accidentally reused by a *different*
/// statement (should the lifetime invariant above ever be broken) fails a
/// debug assertion instead of silently executing the wrong plan.
#[derive(Debug, Clone)]
struct CachedPlan {
    plan: Arc<PhysicalPlan>,
    shape: (usize, usize, usize, usize, bool),
}

/// A memoized decorrelation verdict plus the analyzed statement's
/// fingerprint (same defensive role as [`CachedPlan::shape`]).
#[derive(Debug, Clone)]
struct CachedRewrite {
    rewrite: Option<Arc<DecorrelatedSubquery>>,
    shape: (usize, usize, usize, usize, bool),
}

fn stmt_shape(stmt: &SelectStatement) -> (usize, usize, usize, usize, bool) {
    (
        stmt.projections.len(),
        stmt.joins.len(),
        stmt.group_by.len(),
        stmt.order_by.len(),
        stmt.distinct,
    )
}

impl PlanCache {
    /// Returns the cached plan for `stmt`, planning and caching on miss.
    pub fn get_or_plan(
        &mut self,
        db: &Database,
        stmt: &SelectStatement,
        stats: &mut ExecStats,
    ) -> SqlResult<Arc<PhysicalPlan>> {
        let key = stmt as *const SelectStatement as usize;
        if let Some(cached) = self.plans.get(&key) {
            debug_assert_eq!(
                cached.shape,
                stmt_shape(stmt),
                "PlanCache address reuse: a statement was dropped while its cache entry lived"
            );
            stats.plan_cache_hits += 1;
            return Ok(Arc::clone(&cached.plan));
        }
        stats.plan_cache_misses += 1;
        let plan = Arc::new(plan_select(db, stmt)?);
        self.plans.insert(key, CachedPlan { plan: Arc::clone(&plan), shape: stmt_shape(stmt) });
        Ok(plan)
    }

    /// Returns the already-cached plan for `stmt` without planning on miss.
    /// `EXPLAIN ANALYZE` uses this to render the exact plan object an
    /// execution just ran (operator profile entries are keyed by node
    /// address, so the rendering must walk the *same* allocation).
    pub fn cached_plan(&self, stmt: &SelectStatement) -> Option<Arc<PhysicalPlan>> {
        let key = stmt as *const SelectStatement as usize;
        self.plans.get(&key).map(|c| Arc::clone(&c.plan))
    }

    /// Returns the memoized decorrelation rewrite for the subquery `stmt`,
    /// running the analysis on first sight. `None` means the shape is not
    /// rewritable (or decorrelation is disabled) and the caller should use
    /// the per-outer-row path.
    pub fn rewrite_for(
        &mut self,
        db: &Database,
        stmt: &SelectStatement,
        pos: SubqueryPosition,
    ) -> Option<Arc<DecorrelatedSubquery>> {
        if !self.decorrelate {
            return None;
        }
        let key = stmt as *const SelectStatement as usize;
        let cached = self.rewrites.entry(key).or_insert_with(|| CachedRewrite {
            rewrite: decorrelate(db, stmt, pos).map(Arc::new),
            shape: stmt_shape(stmt),
        });
        debug_assert_eq!(
            cached.shape,
            stmt_shape(stmt),
            "PlanCache address reuse: a statement was dropped while its rewrite entry lived"
        );
        cached.rewrite.clone()
    }

    /// A cache that never decorrelates: correlated subqueries stay on the
    /// per-outer-row cached-plan path. Used by benches to measure the
    /// decorrelation speedup and by tests to triangulate semantics.
    pub fn without_decorrelation() -> Self {
        PlanCache { decorrelate: false, ..Default::default() }
    }

    /// Whether this cache rewrites correlated subqueries into hash joins.
    pub fn decorrelation_enabled(&self) -> bool {
        self.decorrelate
    }

    /// Copies every entry of `newer` this cache does not already hold.
    /// Entries are `Arc`-shared plans, so a merge never re-plans; it is how
    /// a shared cache folds back the plans one execution discovered.
    ///
    /// Entries the target already holds are *pinned*, not dropped: a
    /// superseded plan or decorrelation rewrite owns statement ASTs
    /// (`SubqueryScan` queries, rewritten build statements) whose addresses
    /// may key other entries being merged in, and the address-keying
    /// soundness argument requires every such owner to outlive the cache.
    pub fn merge(&mut self, newer: &PlanCache) {
        for (key, cached) in &newer.plans {
            match self.plans.entry(*key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(cached.clone());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    // The same Arc folding back (a snapshot merging into its
                    // origin) pins nothing; only a *different* plan for a
                    // known key — racing planners — needs its ASTs kept.
                    if !Arc::ptr_eq(&e.get().plan, &cached.plan) {
                        self.pinned_plans
                            .insert(Arc::as_ptr(&cached.plan) as usize, Arc::clone(&cached.plan));
                    }
                }
            }
        }
        for (key, cached) in &newer.rewrites {
            match self.rewrites.entry(*key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(cached.clone());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if let Some(arc) = &cached.rewrite {
                        if !e.get().rewrite.as_ref().is_some_and(|mine| Arc::ptr_eq(mine, arc)) {
                            self.pinned_rewrites.insert(Arc::as_ptr(arc) as usize, Arc::clone(arc));
                        }
                    }
                }
            }
        }
        // Pointer-keyed maps make re-absorbing a snapshot's pin set (which
        // started as a clone of this cache's own) idempotent instead of
        // doubling it on every merge.
        for (k, v) in &newer.pinned_plans {
            self.pinned_plans.entry(*k).or_insert_with(|| Arc::clone(v));
        }
        for (k, v) in &newer.pinned_rewrites {
            self.pinned_rewrites.entry(*k).or_insert_with(|| Arc::clone(v));
        }
    }

    /// Number of superseded entries pinned by [`PlanCache::merge`] — zero
    /// for serial prepared-statement cycles, bounded by distinct racing
    /// planning events otherwise. Exposed so tests can pin the bound.
    pub fn pinned_len(&self) -> usize {
        self.pinned_plans.len() + self.pinned_rewrites.len()
    }

    /// Number of distinct statements planned so far.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when nothing has been planned yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// Per-relation bookkeeping while planning.
struct RelPlan<'a> {
    tref: &'a TableRef,
    offset: usize,
    width: usize,
    /// Whether `WHERE` conjuncts may be pushed into this relation's scan:
    /// true for the FROM relation and inner-joined relations, false for the
    /// right side of a LEFT JOIN (its rows must reach the NULL-padding
    /// stage unfiltered).
    pushable: bool,
    pushed: Vec<Expr>,
}

/// Lowers a `SELECT`'s FROM/JOIN/WHERE section into a physical plan.
///
/// Planning is purely schema-driven (no data access beyond table metadata),
/// deterministic, and cheap relative to execution. Subqueries are *not*
/// planned here — each runs through its own `plan_select` when the executor
/// reaches it.
pub fn plan_select(db: &Database, stmt: &SelectStatement) -> SqlResult<PhysicalPlan> {
    let where_conjuncts: Vec<Expr> = match &stmt.where_clause {
        Some(w) => w.split_conjuncts().into_iter().cloned().collect(),
        None => Vec::new(),
    };
    let Some(from) = &stmt.from else {
        return Ok(PhysicalPlan { root: None, layout: Vec::new(), where_remnant: where_conjuncts });
    };

    // 1. Flattened layout and per-relation spans.
    let mut layout: Vec<ColMeta> = Vec::new();
    let mut rels: Vec<RelPlan<'_>> = Vec::new();
    let trefs = std::iter::once(from).chain(stmt.joins.iter().map(|j| &j.table));
    for (i, tref) in trefs.enumerate() {
        let cols = table_ref_layout(db, tref)?;
        let pushable = i == 0 || stmt.joins[i - 1].kind == JoinKind::Inner;
        rels.push(RelPlan {
            tref,
            offset: layout.len(),
            width: cols.len(),
            pushable,
            pushed: Vec::new(),
        });
        layout.extend(cols);
    }

    // 2. Predicate pushdown: a conjunct goes to a scan when every column it
    // references resolves uniquely in the full layout, all of them land in
    // the same relation, and that relation may be filtered early.
    let mut remnant: Vec<Expr> = Vec::new();
    'conjunct: for conj in where_conjuncts {
        if conj.contains_subquery() || conj.contains_aggregate() {
            remnant.push(conj);
            continue;
        }
        let mut refs = Vec::new();
        conj.referenced_columns(&mut refs);
        if refs.is_empty() {
            remnant.push(conj);
            continue;
        }
        let mut target: Option<usize> = None;
        for (qual, name) in &refs {
            let matches = resolve_in(&layout, qual.as_deref(), name);
            if matches.len() != 1 {
                // Unresolved (outer-scope reference) or ambiguous: leave it
                // for the executor's scope-chain resolution.
                remnant.push(conj);
                continue 'conjunct;
            }
            let idx = matches[0];
            let rel = rels
                .iter()
                .position(|r| idx >= r.offset && idx < r.offset + r.width)
                .expect("resolved column must lie in some relation span");
            match target {
                None => target = Some(rel),
                Some(t) if t == rel => {}
                Some(_) => {
                    remnant.push(conj);
                    continue 'conjunct;
                }
            }
        }
        let t = target.expect("non-empty refs imply a target relation");
        if rels[t].pushable {
            rels[t].pushed.push(conj);
        } else {
            remnant.push(conj);
        }
    }

    // 3. Scan nodes, detecting PK point lookups among pushed predicates.
    let mut nodes: Vec<PlanNode> = Vec::new();
    for rel in &rels {
        nodes.push(make_scan_node(db, rel)?);
    }

    // 4. Left-deep join tree with per-join operator choice.
    let mut nodes = nodes.into_iter();
    let mut root = nodes.next().expect("at least the FROM relation");
    let mut split = rels[0].width;
    for (join, (right_node, right_rel)) in stmt.joins.iter().zip(nodes.zip(rels[1..].iter())) {
        let combined = &layout[..split + right_rel.width];
        // Try the ON clause first; for inner joins, fall back to promoting a
        // WHERE equality (the comma-join idiom `FROM a, b WHERE a.x = b.x`).
        let mut key = join
            .on
            .as_ref()
            .and_then(|on| extract_equi_key(on.split_conjuncts().into_iter(), combined, split));
        if key.is_none() && join.kind == JoinKind::Inner {
            key = extract_equi_key(remnant.iter(), combined, split);
        }
        root = match key {
            Some((left_key, right_key)) => PlanNode::HashJoin {
                left: Box::new(root),
                right: Box::new(right_node),
                kind: join.kind,
                left_key,
                right_key: right_key - split,
                on: join.on.clone(),
            },
            None => PlanNode::NestedLoopJoin {
                left: Box::new(root),
                right: Box::new(right_node),
                kind: join.kind,
                on: join.on.clone(),
            },
        };
        split += right_rel.width;
    }

    Ok(PhysicalPlan { root: Some(root), layout, where_remnant: remnant })
}

/// Finds the first conjunct of the shape `col = col` whose sides resolve
/// uniquely in `combined` and fall on opposite sides of `split`. Returns
/// (left position, absolute right position).
fn extract_equi_key<'a>(
    conjuncts: impl Iterator<Item = &'a Expr>,
    combined: &[ColMeta],
    split: usize,
) -> Option<(usize, usize)> {
    for conj in conjuncts {
        let Some(((q1, c1), (q2, c2))) = conj.as_column_equality() else { continue };
        let m1 = resolve_in(combined, q1, c1);
        let m2 = resolve_in(combined, q2, c2);
        if m1.len() != 1 || m2.len() != 1 {
            continue;
        }
        let (a, b) = (m1[0], m2[0]);
        if a < split && b >= split {
            return Some((a, b));
        }
        if b < split && a >= split {
            return Some((b, a));
        }
    }
    None
}

/// Builds the scan node for one relation, detecting a PK point lookup among
/// its pushed predicates.
fn make_scan_node(db: &Database, rel: &RelPlan<'_>) -> SqlResult<PlanNode> {
    match rel.tref {
        TableRef::Named { table, .. } => {
            let quals = ref_quals(rel.tref);
            let t = db.table(table)?;
            let mut lookup = None;
            if let Some(pk) = t.primary_key_column() {
                // Resolve against this scan's own layout: the lookup column
                // must be the primary key, unambiguously.
                let local: Vec<ColMeta> = t
                    .schema
                    .columns
                    .iter()
                    .map(|c| ColMeta { quals: quals.clone(), name: c.name.clone() })
                    .collect();
                for conj in &rel.pushed {
                    let Some(((qual, name), value)) = conj.as_column_literal_equality() else {
                        continue;
                    };
                    let m = resolve_in(&local, qual, name);
                    if m.len() == 1 && m[0] == pk {
                        lookup = Some(PkLookup { column: pk, value: value.clone() });
                        break;
                    }
                }
            }
            Ok(PlanNode::SeqScan {
                table: table.clone(),
                quals,
                pushed: rel.pushed.clone(),
                lookup,
            })
        }
        TableRef::Derived { query, alias } => Ok(PlanNode::SubqueryScan {
            query: query.clone(),
            alias: alias.clone(),
            pushed: rel.pushed.clone(),
        }),
    }
}

/// True when `stmt` is provably *uncorrelated*: every column reference
/// inside it — including inside its nested subqueries and derived tables —
/// resolves within the statement's own scope chain, so executing it never
/// consults an enclosing statement's row. An uncorrelated subquery therefore
/// returns the same result for every outer row, which is what licenses the
/// executor's per-statement subquery *result* cache.
///
/// The analysis is purely schema-driven and conservative: an unknown table,
/// an unresolvable reference, or anything else surprising yields `false`
/// (treat as correlated — merely forgoing the cache, never changing
/// results). A reference that resolves *ambiguously* in a local layer still
/// counts as local, because the executor's scope-chain resolution handles
/// ambiguity at the level that matched and never falls through to the outer
/// scope in that case.
pub fn is_uncorrelated(db: &Database, stmt: &SelectStatement) -> bool {
    stmt_is_self_contained(db, stmt, &[])
}

/// Core of [`is_uncorrelated`]: `outer` holds the layouts of enclosing
/// statements *within the unit being checked* (nearest first). References
/// resolving in any layer are fine; a reference that falls through every
/// layer would read the real outer scope at runtime, so the unit is
/// correlated.
fn stmt_is_self_contained(db: &Database, stmt: &SelectStatement, outer: &[&[ColMeta]]) -> bool {
    fn add_relation(
        db: &Database,
        tref: &TableRef,
        local: &mut Vec<ColMeta>,
        outer: &[&[ColMeta]],
    ) -> bool {
        // A derived table executes against the *enclosing* statement's outer
        // scope — it cannot see sibling FROM relations — so it is checked
        // against `outer`, not against the chain that includes `local`.
        if let TableRef::Derived { query, .. } = tref {
            if !stmt_is_self_contained(db, query, outer) {
                return false;
            }
        }
        match table_ref_layout(db, tref) {
            Ok(cols) => {
                local.extend(cols);
                true
            }
            Err(_) => false,
        }
    }
    fn chain_of<'a>(local: &'a [ColMeta], outer: &[&'a [ColMeta]]) -> Vec<&'a [ColMeta]> {
        let mut chain: Vec<&[ColMeta]> = Vec::with_capacity(outer.len() + 1);
        chain.push(local);
        chain.extend_from_slice(outer);
        chain
    }

    let mut local: Vec<ColMeta> = Vec::new();
    if let Some(from) = &stmt.from {
        if !add_relation(db, from, &mut local, outer) {
            return false;
        }
    }
    // Joins build left-deep: each join's ON predicate executes with only the
    // prefix (FROM plus the joins up to and including itself) in scope, so a
    // reference to a relation joined *later* falls through to the outer row
    // at runtime even though it would resolve in the full FROM layout. Check
    // every ON against exactly its runtime prefix.
    for join in &stmt.joins {
        if !add_relation(db, &join.table, &mut local, outer) {
            return false;
        }
        let prefix_chain = chain_of(&local, outer);
        if !join.on.iter().all(|e| expr_is_self_contained(db, e, &prefix_chain)) {
            return false;
        }
    }
    let chain = chain_of(&local, outer);

    let mut exprs: Vec<&Expr> = Vec::new();
    for p in &stmt.projections {
        if let Projection::Expr { expr, .. } = p {
            exprs.push(expr);
        }
    }
    exprs.extend(stmt.where_clause.iter());
    exprs.extend(stmt.group_by.iter());
    exprs.extend(stmt.having.iter());
    if !exprs.into_iter().all(|e| expr_is_self_contained(db, e, &chain)) {
        return false;
    }

    // ORDER BY additionally resolves bare names against the output headers
    // (aliases and default expression names) before consulting any scope, so
    // a bare reference matching a header never reads the outer scope even
    // when no input column carries that name.
    let headers: Vec<String> = stmt
        .projections
        .iter()
        .filter_map(|p| match p {
            Projection::Expr { expr, alias } => {
                Some(alias.clone().unwrap_or_else(|| describe_expr(expr)))
            }
            _ => None,
        })
        .collect();
    stmt.order_by.iter().all(|item| {
        if let Expr::Column { table: None, column } = &item.expr {
            if headers.iter().any(|h| h.eq_ignore_ascii_case(column)) {
                return true;
            }
        }
        expr_is_self_contained(db, &item.expr, &chain)
    })
}

/// Walks one expression: every column reference must resolve in `chain`, and
/// nested subqueries must be self-contained relative to `chain`.
fn expr_is_self_contained(db: &Database, expr: &Expr, chain: &[&[ColMeta]]) -> bool {
    let sub = |q: &SelectStatement| stmt_is_self_contained(db, q, chain);
    let walk = |e: &Expr| expr_is_self_contained(db, e, chain);
    match expr {
        Expr::Literal(_) => true,
        Expr::Column { table, column } => {
            chain.iter().any(|layer| !resolve_in(layer, table.as_deref(), column).is_empty())
        }
        Expr::Compare { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::Concat { left, right } => walk(left) && walk(right),
        Expr::And(a, b) | Expr::Or(a, b) => walk(a) && walk(b),
        Expr::Not(e) | Expr::Neg(e) => walk(e),
        Expr::Like { expr, pattern, .. } => walk(expr) && walk(pattern),
        Expr::IsNull { expr, .. } => walk(expr),
        Expr::InList { expr, list, .. } => walk(expr) && list.iter().all(walk),
        Expr::InSubquery { expr, query, .. } => walk(expr) && sub(query),
        Expr::Between { expr, low, high, .. } => walk(expr) && walk(low) && walk(high),
        Expr::Exists { query, .. } => sub(query),
        Expr::ScalarSubquery(query) => sub(query),
        Expr::Aggregate { arg, .. } => arg.as_deref().is_none_or(walk),
        Expr::Function { args, .. } => args.iter().all(walk),
        Expr::Cast { expr, .. } => walk(expr),
        Expr::Case { operand, branches, else_branch } => {
            operand.as_deref().is_none_or(walk)
                && branches.iter().all(|(w, t)| walk(w) && walk(t))
                && else_branch.as_deref().is_none_or(walk)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("plans");
        db.create_table(TableSchema::new(
            "account",
            vec![
                ColumnDef::new("account_id", DataType::Integer).primary_key(),
                ColumnDef::new("district_id", DataType::Integer),
            ],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "loan",
            vec![
                ColumnDef::new("loan_id", DataType::Integer).primary_key(),
                ColumnDef::new("account_id", DataType::Integer),
                ColumnDef::new("amount", DataType::Real),
            ],
        ))
        .unwrap();
        db
    }

    fn plan(sql: &str) -> PhysicalPlan {
        plan_select(&db(), &parse_select(sql).unwrap()).unwrap()
    }

    #[test]
    fn on_clause_equi_join_gets_hash_plan() {
        let p = plan(
            "SELECT T1.account_id FROM account AS T1 \
             INNER JOIN loan AS T2 ON T1.account_id = T2.account_id",
        );
        assert!(p.uses_hash_join(), "plan:\n{}", p.explain());
        let Some(PlanNode::HashJoin { left_key, right_key, .. }) = p.root else {
            panic!("expected hash join at root");
        };
        assert_eq!(left_key, 0, "probe key is account.account_id");
        assert_eq!(right_key, 1, "build key is loan.account_id (local position)");
    }

    #[test]
    fn comma_join_promotes_where_equality_to_hash_key() {
        let p = plan(
            "SELECT loan.loan_id FROM loan, account \
             WHERE loan.account_id = account.account_id AND account.district_id = 1",
        );
        assert!(p.uses_hash_join(), "plan:\n{}", p.explain());
        // The equality stays in the remnant for re-checking; the
        // single-table conjunct was pushed into the account scan.
        assert_eq!(p.where_remnant.len(), 1);
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let p = plan(
            "SELECT loan.loan_id FROM loan \
             INNER JOIN account ON loan.amount > account.district_id",
        );
        assert!(!p.uses_hash_join());
        assert!(matches!(p.root, Some(PlanNode::NestedLoopJoin { .. })));
    }

    #[test]
    fn where_conjunct_pushes_into_from_scan() {
        let p = plan("SELECT loan_id FROM loan WHERE amount > 100000 AND loan_id < 10");
        let Some(PlanNode::SeqScan { pushed, .. }) = &p.root else { panic!("expected scan") };
        assert_eq!(pushed.len(), 2);
        assert!(p.where_remnant.is_empty());
    }

    #[test]
    fn left_join_right_side_predicate_is_not_pushed() {
        let p = plan(
            "SELECT account.account_id FROM account \
             LEFT JOIN loan ON account.account_id = loan.account_id \
             WHERE loan.amount > 1000",
        );
        // The conjunct must see NULL-padded rows, so it stays post-join.
        assert_eq!(p.where_remnant.len(), 1);
        assert!(p.uses_hash_join(), "LEFT equi-joins still hash: {}", p.explain());
    }

    #[test]
    fn ambiguous_column_is_never_pushed() {
        // account_id exists in both tables: resolution is ambiguous, so the
        // conjunct stays in the remnant for the executor's scope chain.
        let p = plan(
            "SELECT loan.loan_id FROM loan \
             INNER JOIN account ON loan.account_id = account.account_id \
             WHERE account_id = 3",
        );
        assert_eq!(p.where_remnant.len(), 1);
    }

    #[test]
    fn pk_literal_equality_becomes_index_lookup() {
        let p = plan("SELECT * FROM loan WHERE loan_id = 3");
        assert!(p.uses_index_lookup(), "plan:\n{}", p.explain());
        let Some(PlanNode::SeqScan { lookup: Some(l), .. }) = &p.root else {
            panic!("expected index lookup scan");
        };
        assert_eq!(l.column, 0);
        assert_eq!(l.value, Value::Integer(3));
        // Reversed operand order plans the same lookup.
        assert!(plan("SELECT * FROM loan WHERE 3 = loan_id").uses_index_lookup());
        // Non-PK equality does not.
        assert!(!plan("SELECT * FROM loan WHERE account_id = 3").uses_index_lookup());
    }

    #[test]
    fn subquery_in_where_stays_post_join() {
        let p = plan("SELECT loan_id FROM loan WHERE amount > (SELECT AVG(amount) FROM loan)");
        let Some(PlanNode::SeqScan { pushed, .. }) = &p.root else { panic!("expected scan") };
        assert!(pushed.is_empty());
        assert_eq!(p.where_remnant.len(), 1);
    }

    #[test]
    fn derived_table_plans_subquery_scan_with_pushdown() {
        let p = plan("SELECT t.n FROM (SELECT account_id AS n FROM loan) AS t WHERE t.n > 2");
        let Some(PlanNode::SubqueryScan { pushed, alias, .. }) = &p.root else {
            panic!("expected subquery scan, got {:?}", p.root);
        };
        assert_eq!(alias, "t");
        assert_eq!(pushed.len(), 1, "derived-table filter is pushed onto its rows");
    }

    #[test]
    fn plan_cache_hits_on_repeated_statements() {
        let d = db();
        let stmt = parse_select("SELECT loan_id FROM loan WHERE amount > 10").unwrap();
        let mut cache = PlanCache::default();
        let mut stats = ExecStats::default();
        let p1 = cache.get_or_plan(&d, &stmt, &mut stats).unwrap();
        let p2 = cache.get_or_plan(&d, &stmt, &mut stats).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "repeated statements share one plan");
        assert_eq!((stats.plan_cache_misses, stats.plan_cache_hits), (1, 1));
        let stmt2 = parse_select("SELECT loan_id FROM loan").unwrap();
        cache.get_or_plan(&d, &stmt2, &mut stats).unwrap();
        assert_eq!(cache.len(), 2, "distinct statements plan independently");
    }

    #[test]
    fn plan_cache_merge_shares_entries_without_replanning() {
        let d = db();
        let stmt = parse_select("SELECT loan_id FROM loan WHERE amount > 10").unwrap();
        let mut a = PlanCache::default();
        let mut stats = ExecStats::default();
        let p1 = a.get_or_plan(&d, &stmt, &mut stats).unwrap();
        let mut b = PlanCache::default();
        b.merge(&a);
        let p2 = b.get_or_plan(&d, &stmt, &mut stats).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "merged cache serves the same Arc'd plan");
        assert_eq!(stats.plan_cache_misses, 1, "the merge target never re-plans");
        assert_eq!(stats.plan_cache_hits, 1);
        // Merging back is idempotent.
        a.merge(&b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn uncorrelated_analysis_separates_subquery_shapes() {
        let d = db();
        let sub = |sql: &str| {
            let stmt = parse_select(sql).unwrap();
            is_uncorrelated(&d, &stmt)
        };
        // Self-contained aggregates and joins are uncorrelated.
        assert!(sub("SELECT AVG(amount) FROM loan"));
        assert!(sub("SELECT T1.account_id FROM account AS T1 \
             INNER JOIN loan AS T2 ON T1.account_id = T2.account_id \
             WHERE T2.amount > 100"));
        // A reference that cannot resolve locally escapes to the outer scope.
        assert!(!sub("SELECT 1 FROM loan WHERE loan.account_id = account.account_id"));
        assert!(!sub("SELECT 1 FROM loan WHERE district_id = 4"));
        // Nesting: the inner subquery's outer reference is *our* FROM —
        // still self-contained as a unit.
        assert!(sub("SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.account_id = account.account_id)"));
        // ...but a reference that escapes even the top level is correlated.
        assert!(!sub("SELECT account_id FROM account AS a2 WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.account_id = outer_table.account_id)"));
        // Unknown tables are conservatively correlated.
        assert!(!sub("SELECT x FROM no_such_table"));
        // ORDER BY an output alias stays self-contained.
        assert!(sub("SELECT account_id AS k FROM account GROUP BY account_id ORDER BY k"));
    }

    #[test]
    fn explain_renders_operators() {
        let text = plan(
            "SELECT T1.account_id FROM account AS T1 \
             INNER JOIN loan AS T2 ON T1.account_id = T2.account_id \
             WHERE T2.loan_id = 3",
        )
        .explain();
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("SeqScan account"), "{text}");
        assert!(text.contains("IndexLookup loan"), "{text}");
    }
}
