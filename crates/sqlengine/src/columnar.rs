//! Vectorized execution ([`crate::PlanMode::Columnar`]): the physical plans
//! of the optimized mode, executed over [`DataChunk`] batches instead of one
//! row at a time.
//!
//! ## Design
//!
//! The columnar pipeline reuses the planner verbatim — it executes the same
//! [`PlanNode`] tree `PlanMode::Optimized` would — and replaces the *data
//! movement*: scans produce column arrays, filters refine a [`SelChunk`]
//! selection vector over shared chunks (a conjunction of predicates fuses
//! into one selection; survivors are gathered only at pipeline boundaries or
//! below the [`crate::chunk::SELECTION_COMPACT_DENOM`] selectivity
//! threshold), hash joins build and probe over compacted column slices, and
//! grouping folds batch-computed group ids into typed per-aggregate
//! accumulators (`AggAcc`). Everything the batch layer cannot express
//! (subqueries, outer-scope references, ambiguous columns, nested
//! aggregates) falls back *per operator* to the row machinery in
//! [`crate::exec`], which is shared verbatim with the other two modes — one
//! row-evaluated predicate or projection no longer demotes the rest of the
//! statement. `columnar_fallbacks` in [`crate::ExecStats`] counts each
//! row-bridged operator, and `columnar_partial` counts statements that mixed
//! batch and row evaluation.
//!
//! Batch kernels are selection-unaware: they evaluate every *physical* row
//! of a chunk, dead rows included, and consumers read only the live ones.
//! That is safe because every batch-expressible kernel's errors are
//! value-independent — [`Value::arith`] is total over the four value
//! classes, scalar-function errors depend only on name and arity, and
//! `cast_value` is infallible — so a dead row can never surface an error
//! a live row would not.
//!
//! ## Semantics contract
//!
//! Results must be row-identical to both `PlanMode::Optimized` and the
//! `PlanMode::NestedLoop` oracle, NULL and NaN included. The batch kernels
//! therefore reproduce [`Value::sql_cmp`] / [`Value::arith`] /
//! [`Value::to_truth`] cell for cell — including the deliberate quirks:
//! NaN compares equal to every number (via `cmp_f64`), text that parses
//! as a float (`'nan'` included) compares numerically, and integer
//! comparison goes through `f64` (lossy above 2^53) exactly like the row
//! path. `cell_cmp` is the single batch-side implementation of `sql_cmp`,
//! unit-tested against it over an adversarial value grid.
//!
//! What is *not* preserved: which error surfaces when a statement contains
//! several independent error sites, and the `evaluations` counter (batch
//! kernels count one evaluation per node per row without short-circuiting).
//! Both are sanctioned plan-dependent behavior — see the planner's module
//! docs ([`crate::plan`]).

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::*;
use crate::chunk::{chunk_rows, ArrayBuilder, ColumnArray, DataChunk, NullBitmap, SelChunk};
use crate::error::{SqlError, SqlResult};
use crate::exec::{
    agg_over_values, cast_value, order_key_output_column, select_is_grouped, Executor, Rel, Scope,
};
use crate::functions::eval_scalar_function;
use crate::plan::{expand_projections, ColMeta as ColInfo, PlanNode};
use crate::result::ResultSet;
use crate::storage::{EqKeyMap, GroupKeyMap};
use crate::value::{cmp_f64, like_match, ArithOp, Truth, Value};

/// A reference-counted immutable batch: scans hand out the table's cached
/// snapshot chunks without copying, and filters that keep a whole chunk
/// pass the same `Arc` through untouched.
type SharedChunk = Arc<DataChunk>;

/// Flattens the *live* rows of selection-carrying chunks back into row-major
/// form for the nested-loop join bridge.
fn rows_from_live(chunks: &[SelChunk]) -> Vec<Vec<Value>> {
    let mut out = Vec::with_capacity(chunks.iter().map(|c| c.live_rows()).sum());
    for sc in chunks {
        for i in sc.live_iter() {
            out.push(sc.chunk().row(i));
        }
    }
    out
}

/// Gathers rows addressed by *global* indices (into the concatenation of
/// `chunks`, whose running start offsets are `offsets`) into one owned
/// chunk — the multi-chunk form of [`DataChunk::gather`], used by the hash
/// join so the build side never has to be physically concatenated.
fn gather_shared(
    chunks: &[SharedChunk],
    offsets: &[usize],
    width: usize,
    idx: &[usize],
) -> DataChunk {
    let mut builders: Vec<ArrayBuilder> =
        (0..width).map(|_| ArrayBuilder::with_capacity(idx.len())).collect();
    for &gi in idx {
        let k = offsets.partition_point(|&o| o <= gi) - 1;
        let local = gi - offsets[k];
        for (ci, b) in builders.iter_mut().enumerate() {
            b.push_from(&chunks[k].columns[ci], local);
        }
    }
    DataChunk::new(builders.into_iter().map(ArrayBuilder::finish).collect(), idx.len())
}

/// A borrowed view of one cell of a [`ColumnArray`]: the batch kernels'
/// working currency. Copy for numbers, borrowed for text — no cell is ever
/// cloned to be compared.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CellRef<'a> {
    Null,
    Int(i64),
    Real(f64),
    Text(&'a str),
}

impl<'a> CellRef<'a> {
    #[inline]
    fn as_f64(self) -> Option<f64> {
        match self {
            CellRef::Int(i) => Some(i as f64),
            CellRef::Real(r) => Some(r),
            _ => None,
        }
    }
}

/// The cell at row `i` of `col`, as a borrowed [`CellRef`].
#[inline]
pub(crate) fn cell_ref(col: &ColumnArray, i: usize) -> CellRef<'_> {
    match col {
        ColumnArray::Int { values, nulls } => {
            if nulls.is_null(i) {
                CellRef::Null
            } else {
                CellRef::Int(values[i])
            }
        }
        ColumnArray::Real { values, nulls } => {
            if nulls.is_null(i) {
                CellRef::Null
            } else {
                CellRef::Real(values[i])
            }
        }
        ColumnArray::Text { values, nulls } => {
            if nulls.is_null(i) {
                CellRef::Null
            } else {
                CellRef::Text(&values[i])
            }
        }
        ColumnArray::Mixed { values } => match &values[i] {
            Value::Null => CellRef::Null,
            Value::Integer(v) => CellRef::Int(*v),
            Value::Real(v) => CellRef::Real(*v),
            Value::Text(s) => CellRef::Text(s),
        },
    }
}

/// [`Value::sql_cmp`], cell-for-cell, without materializing values: `None`
/// when either side is NULL; text/text lexicographic; text that parses as a
/// float (`'nan'` included) compares numerically against numbers, text that
/// does not sorts after them; numbers compare through [`cmp_f64`] with its
/// NaN-equals-everything quirk. Unit-tested against `sql_cmp` below.
#[inline]
pub(crate) fn cell_cmp(a: CellRef<'_>, b: CellRef<'_>) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (CellRef::Null, _) | (_, CellRef::Null) => None,
        (CellRef::Text(x), CellRef::Text(y)) => Some(x.cmp(y)),
        (CellRef::Text(x), y) => match x.parse::<f64>() {
            Ok(fx) => y.as_f64().map(|fy| cmp_f64(fx, fy)),
            Err(_) => Some(Ordering::Greater),
        },
        (x, CellRef::Text(y)) => match y.parse::<f64>() {
            Ok(fy) => x.as_f64().map(|fx| cmp_f64(fx, fy)),
            Err(_) => Some(Ordering::Less),
        },
        (x, y) => Some(cmp_f64(x.as_f64().unwrap(), y.as_f64().unwrap())),
    }
}

/// [`Value::to_truth`] over a [`CellRef`].
#[inline]
fn cell_truth(c: CellRef<'_>) -> Truth {
    match c {
        CellRef::Null => Truth::Unknown,
        CellRef::Int(i) => Truth::from_bool(i != 0),
        CellRef::Real(r) => Truth::from_bool(r != 0.0),
        CellRef::Text(s) => Truth::from_bool(!s.is_empty() && s != "0"),
    }
}

/// [`Value::render`] over a [`CellRef`], borrowing text.
fn cell_render(c: CellRef<'_>) -> std::borrow::Cow<'_, str> {
    use std::borrow::Cow;
    match c {
        CellRef::Null => Cow::Borrowed("NULL"),
        CellRef::Int(i) => Cow::Owned(i.to_string()),
        CellRef::Real(r) => Cow::Owned(Value::Real(r).render()),
        CellRef::Text(s) => Cow::Borrowed(s),
    }
}

/// Resolves a column reference against a *single* batch layout: `Some`
/// exactly when the reference binds to one column of this relation. Zero
/// matches (outer references, unknown names) and multiple matches (possibly
/// benign join-key ambiguity, possibly an error — only row values can tell)
/// are both `None`, demoting the expression to the row path, whose
/// `resolve_column` then reproduces the scope-chain / ambiguity semantics.
fn resolve_batch_column(cols: &[ColInfo], table: &Option<String>, column: &str) -> Option<usize> {
    let qual = table.as_ref().map(|t| t.to_ascii_lowercase());
    let mut found = None;
    for (i, c) in cols.iter().enumerate() {
        if !c.name.eq_ignore_ascii_case(column) {
            continue;
        }
        if let Some(q) = &qual {
            if !c.quals.contains(q) {
                continue;
            }
        }
        if found.is_some() {
            return None;
        }
        found = Some(i);
    }
    found
}

/// True when `expr` can be evaluated entirely by batch kernels over this
/// layout: every column reference binds uniquely here (no outer scopes, no
/// ambiguity) and no subquery or aggregate appears. The static twin of
/// [`Executor::try_eval_batch`] — callers pre-check once per expression
/// instead of attempting (and wasting) a batch pass per chunk.
pub(crate) fn is_batch_evaluable(expr: &Expr, cols: &[ColInfo]) -> bool {
    is_batch_evaluable_impl(expr, cols, false)
}

/// [`is_batch_evaluable`] over the finished *group table*, where every
/// collected [`Expr::Aggregate`] node has a precomputed result column the
/// batch evaluator can read (so aggregates count as expressible; their
/// arguments were handled when the columns were built and are not descended
/// into here).
pub(crate) fn is_group_batch_evaluable(expr: &Expr, cols: &[ColInfo]) -> bool {
    is_batch_evaluable_impl(expr, cols, true)
}

fn is_batch_evaluable_impl(expr: &Expr, cols: &[ColInfo], aggs_ok: bool) -> bool {
    match expr {
        Expr::Literal(_) => true,
        Expr::Column { table, column } => resolve_batch_column(cols, table, column).is_some(),
        Expr::Compare { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::Concat { left, right } => {
            is_batch_evaluable_impl(left, cols, aggs_ok)
                && is_batch_evaluable_impl(right, cols, aggs_ok)
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            is_batch_evaluable_impl(a, cols, aggs_ok) && is_batch_evaluable_impl(b, cols, aggs_ok)
        }
        Expr::Not(e) | Expr::Neg(e) => is_batch_evaluable_impl(e, cols, aggs_ok),
        Expr::Like { expr, pattern, .. } => {
            is_batch_evaluable_impl(expr, cols, aggs_ok)
                && is_batch_evaluable_impl(pattern, cols, aggs_ok)
        }
        Expr::IsNull { expr, .. } => is_batch_evaluable_impl(expr, cols, aggs_ok),
        Expr::InList { expr, list, .. } => {
            is_batch_evaluable_impl(expr, cols, aggs_ok)
                && list.iter().all(|e| is_batch_evaluable_impl(e, cols, aggs_ok))
        }
        Expr::Between { expr, low, high, .. } => {
            is_batch_evaluable_impl(expr, cols, aggs_ok)
                && is_batch_evaluable_impl(low, cols, aggs_ok)
                && is_batch_evaluable_impl(high, cols, aggs_ok)
        }
        // Subqueries need the row machinery (scopes, caches, decorrelation).
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
        // Aggregates are expressible only over the group table, where their
        // result columns are pre-installed.
        Expr::Aggregate { .. } => aggs_ok,
        Expr::Function { args, .. } => {
            args.iter().all(|e| is_batch_evaluable_impl(e, cols, aggs_ok))
        }
        Expr::Cast { expr, .. } => is_batch_evaluable_impl(expr, cols, aggs_ok),
        Expr::Case { operand, branches, else_branch } => {
            operand.as_ref().is_none_or(|e| is_batch_evaluable_impl(e, cols, aggs_ok))
                && branches.iter().all(|(w, t)| {
                    is_batch_evaluable_impl(w, cols, aggs_ok)
                        && is_batch_evaluable_impl(t, cols, aggs_ok)
                })
                && else_branch.as_ref().is_none_or(|e| is_batch_evaluable_impl(e, cols, aggs_ok))
        }
    }
}

/// Collects every [`Expr::Aggregate`] node reachable by grouped evaluation,
/// mirroring [`Expr::contains_aggregate`]'s traversal exactly: descend into
/// `InSubquery`'s comparison expression but never into a subquery's body
/// (nested statements handle their own aggregates), and do *not* descend
/// into an aggregate's argument (a nested aggregate is not batch-computable,
/// which [`is_batch_evaluable`] then reports, demoting the statement to the
/// row path and its error).
pub(crate) fn collect_aggregates<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Aggregate { .. } => out.push(expr),
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Compare { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::Concat { left, right } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_aggregates(a, out);
            collect_aggregates(b, out);
        }
        Expr::Not(e) | Expr::Neg(e) => collect_aggregates(e, out),
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_aggregates(expr, out),
        Expr::Between { expr, low, high, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Function { args, .. } => {
            for e in args {
                collect_aggregates(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggregates(expr, out),
        Expr::Case { operand, branches, else_branch } => {
            if let Some(o) = operand {
                collect_aggregates(o, out);
            }
            for (w, t) in branches {
                collect_aggregates(w, out);
                collect_aggregates(t, out);
            }
            if let Some(e) = else_branch {
                collect_aggregates(e, out);
            }
        }
    }
}

/// Broadcasts one literal across `n` rows.
fn broadcast(v: &Value, n: usize) -> ColumnArray {
    match v {
        Value::Null => {
            let mut nulls = NullBitmap::default();
            for _ in 0..n {
                nulls.push(true);
            }
            ColumnArray::Int { values: vec![0; n], nulls }
        }
        Value::Integer(i) => {
            ColumnArray::Int { values: vec![*i; n], nulls: NullBitmap::new_valid(n) }
        }
        Value::Real(r) => {
            ColumnArray::Real { values: vec![*r; n], nulls: NullBitmap::new_valid(n) }
        }
        Value::Text(s) => {
            ColumnArray::Text { values: vec![s.clone(); n], nulls: NullBitmap::new_valid(n) }
        }
    }
}

/// Builds a SQL-boolean (`Int` 0/1 with NULL for unknown) column from a
/// per-row truth computation.
fn truth_col(n: usize, mut f: impl FnMut(usize) -> Truth) -> ColumnArray {
    let mut values = Vec::with_capacity(n);
    let mut nulls = NullBitmap::default();
    for i in 0..n {
        match f(i) {
            Truth::True => {
                values.push(1);
                nulls.push(false);
            }
            Truth::False => {
                values.push(0);
                nulls.push(false);
            }
            Truth::Unknown => {
                values.push(0);
                nulls.push(true);
            }
        }
    }
    ColumnArray::Int { values, nulls }
}

/// Comparison kernel: the batch form of the row path's `Compare` arm.
fn cmp_batch(op: CompareOp, l: &ColumnArray, r: &ColumnArray) -> ColumnArray {
    truth_col(l.len(), |i| match cell_cmp(cell_ref(l, i), cell_ref(r, i)) {
        None => Truth::Unknown,
        Some(ord) => Truth::from_bool(match op {
            CompareOp::Eq => ord.is_eq(),
            CompareOp::NotEq => !ord.is_eq(),
            CompareOp::Lt => ord.is_lt(),
            CompareOp::LtEq => ord.is_le(),
            CompareOp::Gt => ord.is_gt(),
            CompareOp::GtEq => ord.is_ge(),
        }),
    })
}

/// Arithmetic kernel. Typed fast paths reproduce [`Value::arith`] branch for
/// branch: integer/integer stays integral (wrapping, with `/ 0` and `% 0`
/// yielding NULL), any other numeric pairing goes through `f64`, and
/// anything involving text or mixed storage falls to `Value::arith` itself
/// per cell — the authoritative implementation, so coercion semantics can
/// never drift.
fn arith_batch(op: ArithOp, l: &ColumnArray, r: &ColumnArray) -> SqlResult<ColumnArray> {
    let n = l.len();
    match (l, r) {
        (ColumnArray::Int { values: a, nulls: na }, ColumnArray::Int { values: b, nulls: nb }) => {
            let mut values = Vec::with_capacity(n);
            let mut nulls = NullBitmap::default();
            for i in 0..n {
                if na.is_null(i) || nb.is_null(i) {
                    values.push(0);
                    nulls.push(true);
                    continue;
                }
                let (x, y) = (a[i], b[i]);
                let v = match op {
                    ArithOp::Add => Some(x.wrapping_add(y)),
                    ArithOp::Sub => Some(x.wrapping_sub(y)),
                    ArithOp::Mul => Some(x.wrapping_mul(y)),
                    ArithOp::Div => (y != 0).then(|| x / y),
                    ArithOp::Mod => (y != 0).then(|| x % y),
                };
                match v {
                    Some(v) => {
                        values.push(v);
                        nulls.push(false);
                    }
                    None => {
                        values.push(0);
                        nulls.push(true);
                    }
                }
            }
            Ok(ColumnArray::Int { values, nulls })
        }
        (
            ColumnArray::Int { .. } | ColumnArray::Real { .. },
            ColumnArray::Int { .. } | ColumnArray::Real { .. },
        ) => {
            let mut values = Vec::with_capacity(n);
            let mut nulls = NullBitmap::default();
            for i in 0..n {
                let (Some(x), Some(y)) = (cell_ref(l, i).as_f64(), cell_ref(r, i).as_f64()) else {
                    values.push(0.0);
                    nulls.push(true);
                    continue;
                };
                let v = match op {
                    ArithOp::Add => Some(x + y),
                    ArithOp::Sub => Some(x - y),
                    ArithOp::Mul => Some(x * y),
                    ArithOp::Div => (y != 0.0).then(|| x / y),
                    ArithOp::Mod => (y != 0.0).then(|| x % y),
                };
                match v {
                    Some(v) => {
                        values.push(v);
                        nulls.push(false);
                    }
                    None => {
                        values.push(0.0);
                        nulls.push(true);
                    }
                }
            }
            Ok(ColumnArray::Real { values, nulls })
        }
        _ => {
            let mut b = ArrayBuilder::with_capacity(n);
            for i in 0..n {
                b.push(&l.value_at(i).arith(op, &r.value_at(i))?);
            }
            Ok(b.finish())
        }
    }
}

/// MIN/MAX fold step by [`Value::total_cmp`], reproducing
/// `Iterator::min_by` / `max_by` tie behavior exactly: MIN keeps the first
/// of ties (replace only on `Greater`), MAX keeps the last (replace on
/// anything but `Greater`) — which is what makes `MIN([NaN, 5]) = NaN` but
/// `MIN([5, NaN]) = 5` under `cmp_f64`'s NaN-equals-everything quirk.
fn minmax_update(slot: &mut Value, new: Value, max: bool) {
    if slot.is_null() {
        *slot = new;
        return;
    }
    let ord = slot.total_cmp(&new);
    let replace = if max { ord != Ordering::Greater } else { ord == Ordering::Greater };
    if replace {
        *slot = new;
    }
}

/// Per-group accumulator state for one aggregate node: tight typed update
/// loops for the COUNT/SUM/AVG/MIN/MAX × `Int`/`Real` storage matrix,
/// null-bitmap-segregated with a no-null fast path, plus coercing loops for
/// text/mixed storage and a value-collecting form for DISTINCT (which must
/// dedup before folding). `finish` reproduces [`agg_over_values`] — SUM's
/// wrapping integer fold, scan-order float summation, and per-group result
/// class included — so the typed paths can never drift from the row path.
enum AggAcc {
    /// COUNT(x): non-NULL rows per group.
    Count { counts: Vec<i64> },
    /// SUM/AVG, mirroring `sum_values`: parallel wrapping-integer and
    /// scan-order float sums, with a per-group "all integers" flag choosing
    /// the result class (and AVG always landing on `Real`).
    Sum { avg: bool, counts: Vec<i64>, isum: Vec<i64>, fsum: Vec<f64>, all_int: Vec<bool> },
    /// MIN/MAX via [`minmax_update`]; `Null` marks a group with no values.
    MinMax { max: bool, best: Vec<Value> },
    /// DISTINCT aggregates collect per-group values and defer to
    /// [`agg_over_values`], whose first-seen dedup picks representatives in
    /// a way no streaming fold can reproduce.
    Distinct { kind: AggregateKind, vals: Vec<Vec<Value>> },
}

impl AggAcc {
    fn new(kind: AggregateKind, distinct: bool, n_groups: usize) -> AggAcc {
        if distinct {
            return AggAcc::Distinct { kind, vals: vec![Vec::new(); n_groups] };
        }
        match kind {
            AggregateKind::Count => AggAcc::Count { counts: vec![0; n_groups] },
            AggregateKind::Sum | AggregateKind::Avg => AggAcc::Sum {
                avg: kind == AggregateKind::Avg,
                counts: vec![0; n_groups],
                isum: vec![0; n_groups],
                // -0.0 is the additive identity std's `Sum for f64` folds
                // from; starting at +0.0 would turn SUM of [-0.0] into +0.0
                // and diverge from the row path's `.sum()`.
                fsum: vec![-0.0; n_groups],
                all_int: vec![true; n_groups],
            },
            AggregateKind::Min => AggAcc::MinMax { max: false, best: vec![Value::Null; n_groups] },
            AggregateKind::Max => AggAcc::MinMax { max: true, best: vec![Value::Null; n_groups] },
        }
    }

    /// Folds one chunk's argument column into the per-group state; `gids[i]`
    /// is the group of the chunk's `i`-th row. Chunks arrive in scan order,
    /// which the float sum (non-associative) relies on.
    fn update(&mut self, col: &ColumnArray, gids: &[u32]) {
        match self {
            AggAcc::Count { counts } => match col {
                ColumnArray::Int { nulls, .. }
                | ColumnArray::Real { nulls, .. }
                | ColumnArray::Text { nulls, .. } => {
                    if nulls.any_null() {
                        for (i, &g) in gids.iter().enumerate() {
                            if !nulls.is_null(i) {
                                counts[g as usize] += 1;
                            }
                        }
                    } else {
                        for &g in gids {
                            counts[g as usize] += 1;
                        }
                    }
                }
                ColumnArray::Mixed { values } => {
                    for (i, &g) in gids.iter().enumerate() {
                        if !values[i].is_null() {
                            counts[g as usize] += 1;
                        }
                    }
                }
            },
            AggAcc::Sum { counts, isum, fsum, all_int, .. } => match col {
                ColumnArray::Int { values, nulls } => {
                    if nulls.any_null() {
                        for (i, &g) in gids.iter().enumerate() {
                            if !nulls.is_null(i) {
                                let g = g as usize;
                                counts[g] += 1;
                                isum[g] = isum[g].wrapping_add(values[i]);
                                fsum[g] += values[i] as f64;
                            }
                        }
                    } else {
                        for (i, &g) in gids.iter().enumerate() {
                            let g = g as usize;
                            counts[g] += 1;
                            isum[g] = isum[g].wrapping_add(values[i]);
                            fsum[g] += values[i] as f64;
                        }
                    }
                }
                ColumnArray::Real { values, nulls } => {
                    if nulls.any_null() {
                        for (i, &g) in gids.iter().enumerate() {
                            if !nulls.is_null(i) {
                                let g = g as usize;
                                counts[g] += 1;
                                fsum[g] += values[i];
                                all_int[g] = false;
                            }
                        }
                    } else {
                        for (i, &g) in gids.iter().enumerate() {
                            let g = g as usize;
                            counts[g] += 1;
                            fsum[g] += values[i];
                            all_int[g] = false;
                        }
                    }
                }
                // Text and mixed storage coerce per cell, like `sum_values`.
                _ => {
                    for (i, &g) in gids.iter().enumerate() {
                        let v = col.value_at(i);
                        if v.is_null() {
                            continue;
                        }
                        let g = g as usize;
                        counts[g] += 1;
                        match v.coerce_numeric() {
                            Value::Integer(x) => {
                                isum[g] = isum[g].wrapping_add(x);
                                fsum[g] += x as f64;
                            }
                            Value::Real(x) => {
                                fsum[g] += x;
                                all_int[g] = false;
                            }
                            // coerce_numeric maps every non-NULL value to a
                            // number.
                            _ => {}
                        }
                    }
                }
            },
            AggAcc::MinMax { max, best } => {
                let mx = *max;
                match col {
                    ColumnArray::Int { values, nulls } => {
                        for (i, &g) in gids.iter().enumerate() {
                            if !nulls.is_null(i) {
                                minmax_update(&mut best[g as usize], Value::Integer(values[i]), mx);
                            }
                        }
                    }
                    ColumnArray::Real { values, nulls } => {
                        for (i, &g) in gids.iter().enumerate() {
                            if !nulls.is_null(i) {
                                minmax_update(&mut best[g as usize], Value::Real(values[i]), mx);
                            }
                        }
                    }
                    _ => {
                        for (i, &g) in gids.iter().enumerate() {
                            if !col.is_null(i) {
                                minmax_update(&mut best[g as usize], col.value_at(i), mx);
                            }
                        }
                    }
                }
            }
            AggAcc::Distinct { vals, .. } => {
                for (i, &g) in gids.iter().enumerate() {
                    if !col.is_null(i) {
                        vals[g as usize].push(col.value_at(i));
                    }
                }
            }
        }
    }

    /// The finished per-group results as one column (one row per group).
    fn finish(self) -> ColumnArray {
        match self {
            AggAcc::Count { counts } => {
                let n = counts.len();
                ColumnArray::Int { values: counts, nulls: NullBitmap::new_valid(n) }
            }
            AggAcc::Sum { avg, counts, isum, fsum, all_int } => {
                let mut b = ArrayBuilder::with_capacity(counts.len());
                for g in 0..counts.len() {
                    let v = if counts[g] == 0 {
                        Value::Null
                    } else if avg {
                        let total = if all_int[g] { isum[g] as f64 } else { fsum[g] };
                        Value::Real(total / counts[g] as f64)
                    } else if all_int[g] {
                        Value::Integer(isum[g])
                    } else {
                        Value::Real(fsum[g])
                    };
                    b.push(&v);
                }
                b.finish()
            }
            AggAcc::MinMax { best, .. } => {
                let mut b = ArrayBuilder::with_capacity(best.len());
                for v in &best {
                    b.push(v);
                }
                b.finish()
            }
            AggAcc::Distinct { kind, vals } => {
                let mut b = ArrayBuilder::with_capacity(vals.len());
                for group_vals in vals {
                    b.push(&agg_over_values(kind, true, group_vals));
                }
                b.finish()
            }
        }
    }
}

impl<'a> Executor<'a> {
    /// Evaluates `expr` over every row of `chunk` with batch kernels,
    /// returning `None` when the expression needs the row machinery (see
    /// [`is_batch_evaluable`], its static twin). A bare column reference is
    /// *borrowed* from the chunk (`Cow::Borrowed`) — the hottest case,
    /// `SELECT`ed and filtered columns, never copies cell data. Each
    /// successfully produced node counts `chunk.rows()` evaluations; unlike
    /// the row path, `AND` / `OR` / `IN` / `CASE` evaluate all operand
    /// columns eagerly — Kleene logic makes that value-identical, and which
    /// *error* surfaces from a multi-error statement is sanctioned
    /// plan-dependent behavior.
    pub(crate) fn try_eval_batch<'c>(
        &mut self,
        expr: &Expr,
        chunk: &'c DataChunk,
        cols: &[ColInfo],
    ) -> SqlResult<Option<Cow<'c, ColumnArray>>> {
        self.try_eval_batch_agg(expr, chunk, cols, None)
    }

    /// [`Executor::try_eval_batch`] over a *group table*: `aggs` maps
    /// collected [`Expr::Aggregate`] node addresses to their precomputed
    /// per-group result columns, which an `Aggregate` node resolves to by
    /// borrow — the mechanism behind batch-evaluated HAVING, projections,
    /// and ORDER BY keys in [`Executor::columnar_grouped`].
    fn try_eval_batch_agg<'c>(
        &mut self,
        expr: &Expr,
        chunk: &'c DataChunk,
        cols: &[ColInfo],
        aggs: Option<&'c HashMap<usize, ColumnArray>>,
    ) -> SqlResult<Option<Cow<'c, ColumnArray>>> {
        let n = chunk.rows();
        macro_rules! batch {
            ($e:expr) => {
                match self.try_eval_batch_agg($e, chunk, cols, aggs)? {
                    Some(c) => c,
                    None => return Ok(None),
                }
            };
        }
        let col = match expr {
            Expr::Literal(v) => broadcast(v, n),
            Expr::Column { table, column } => match resolve_batch_column(cols, table, column) {
                Some(i) => {
                    self.stats.evaluations += n as u64;
                    return Ok(Some(Cow::Borrowed(&chunk.columns[i])));
                }
                None => return Ok(None),
            },
            Expr::Compare { op, left, right } => {
                let (l, r) = (batch!(left), batch!(right));
                cmp_batch(*op, &l, &r)
            }
            Expr::Arith { op, left, right } => {
                let (l, r) = (batch!(left), batch!(right));
                arith_batch(*op, &l, &r)?
            }
            Expr::Concat { left, right } => {
                let (l, r) = (batch!(left), batch!(right));
                let mut values = Vec::with_capacity(n);
                let mut nulls = NullBitmap::default();
                for i in 0..n {
                    match (cell_ref(&l, i), cell_ref(&r, i)) {
                        (CellRef::Null, _) | (_, CellRef::Null) => {
                            values.push(String::new());
                            nulls.push(true);
                        }
                        (a, b) => {
                            values.push(format!("{}{}", cell_render(a), cell_render(b)));
                            nulls.push(false);
                        }
                    }
                }
                ColumnArray::Text { values, nulls }
            }
            Expr::And(a, b) => {
                let (l, r) = (batch!(a), batch!(b));
                truth_col(n, |i| cell_truth(cell_ref(&l, i)).and(cell_truth(cell_ref(&r, i))))
            }
            Expr::Or(a, b) => {
                let (l, r) = (batch!(a), batch!(b));
                truth_col(n, |i| cell_truth(cell_ref(&l, i)).or(cell_truth(cell_ref(&r, i))))
            }
            Expr::Not(e) => {
                let c = batch!(e);
                truth_col(n, |i| cell_truth(cell_ref(&c, i)).not())
            }
            Expr::Neg(e) => {
                let c = batch!(e);
                match c.as_ref() {
                    ColumnArray::Int { values, nulls } => ColumnArray::Int {
                        values: values.iter().map(|v| v.wrapping_mul(-1)).collect(),
                        nulls: nulls.clone(),
                    },
                    ColumnArray::Real { values, nulls } => ColumnArray::Real {
                        values: values.iter().map(|v| v * -1.0).collect(),
                        nulls: nulls.clone(),
                    },
                    _ => {
                        let mut b = ArrayBuilder::with_capacity(n);
                        for i in 0..n {
                            b.push(&c.value_at(i).arith(ArithOp::Mul, &Value::Integer(-1))?);
                        }
                        b.finish()
                    }
                }
            }
            Expr::Like { negated, expr, pattern } => {
                let (v, p) = (batch!(expr), batch!(pattern));
                truth_col(n, |i| match (cell_ref(&v, i), cell_ref(&p, i)) {
                    (CellRef::Null, _) | (_, CellRef::Null) => Truth::Unknown,
                    (a, b) => {
                        Truth::from_bool(like_match(&cell_render(b), &cell_render(a)) != *negated)
                    }
                })
            }
            Expr::IsNull { negated, expr } => {
                let c = batch!(expr);
                truth_col(n, |i| Truth::from_bool(c.is_null(i) != *negated))
            }
            Expr::InList { negated, expr, list } => {
                let v = batch!(expr);
                let mut items = Vec::with_capacity(list.len());
                for item in list {
                    items.push(batch!(item));
                }
                truth_col(n, |i| {
                    let vc = cell_ref(&v, i);
                    if matches!(vc, CellRef::Null) {
                        return Truth::Unknown;
                    }
                    let found = items
                        .iter()
                        .any(|it| matches!(cell_cmp(vc, cell_ref(it, i)), Some(o) if o.is_eq()));
                    Truth::from_bool(found != *negated)
                })
            }
            Expr::Between { negated, expr, low, high } => {
                let (v, lo, hi) = (batch!(expr), batch!(low), batch!(high));
                truth_col(n, |i| {
                    let vc = cell_ref(&v, i);
                    match (cell_cmp(vc, cell_ref(&lo, i)), cell_cmp(vc, cell_ref(&hi, i))) {
                        (Some(a), Some(b)) => {
                            Truth::from_bool((a.is_ge() && b.is_le()) != *negated)
                        }
                        _ => Truth::Unknown,
                    }
                })
            }
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => {
                return Ok(None)
            }
            Expr::Aggregate { .. } => {
                let Some(map) = aggs else { return Ok(None) };
                match map.get(&(expr as *const Expr as usize)) {
                    Some(col) => {
                        self.stats.evaluations += n as u64;
                        return Ok(Some(Cow::Borrowed(col)));
                    }
                    None => return Ok(None),
                }
            }
            Expr::Function { name, args } => {
                let mut arg_cols = Vec::with_capacity(args.len());
                for a in args {
                    arg_cols.push(batch!(a));
                }
                let mut b = ArrayBuilder::with_capacity(n);
                let mut vals = Vec::with_capacity(args.len());
                for i in 0..n {
                    vals.clear();
                    vals.extend(arg_cols.iter().map(|c| c.value_at(i)));
                    b.push(&eval_scalar_function(name, &vals)?);
                }
                b.finish()
            }
            Expr::Cast { expr, target } => {
                let c = batch!(expr);
                let mut b = ArrayBuilder::with_capacity(n);
                for i in 0..n {
                    b.push(&cast_value(&c.value_at(i), *target));
                }
                b.finish()
            }
            Expr::Case { operand, branches, else_branch } => {
                let op_col = match operand {
                    Some(o) => Some(batch!(o)),
                    None => None,
                };
                let mut branch_cols = Vec::with_capacity(branches.len());
                for (w, t) in branches {
                    branch_cols.push((batch!(w), batch!(t)));
                }
                let else_col = match else_branch {
                    Some(e) => Some(batch!(e)),
                    None => None,
                };
                let mut b = ArrayBuilder::with_capacity(n);
                for i in 0..n {
                    let mut pushed = false;
                    for (wc, tc) in &branch_cols {
                        let hit = match &op_col {
                            Some(oc) => matches!(
                                cell_cmp(cell_ref(oc, i), cell_ref(wc, i)),
                                Some(o) if o.is_eq()
                            ),
                            None => cell_truth(cell_ref(wc, i)).is_true(),
                        };
                        if hit {
                            b.push_from(tc, i);
                            pushed = true;
                            break;
                        }
                    }
                    if !pushed {
                        match &else_col {
                            Some(ec) => b.push_from(ec, i),
                            None => b.push_null(),
                        }
                    }
                }
                b.finish()
            }
        };
        self.stats.evaluations += n as u64;
        Ok(Some(Cow::Owned(col)))
    }

    /// Applies one predicate to every chunk by *refining its selection
    /// vector* — no rows are moved. A batch-evaluable predicate evaluates
    /// over all physical rows (dead-row evaluation is safe; see the module
    /// docs) and intersects the truth column with the live set; anything
    /// else evaluates row-at-a-time over the live rows only (counted once
    /// per predicate in `columnar_fallbacks`). Consecutive predicates refine
    /// the same selection — a fused conjunctive filter. Chunks refined to
    /// emptiness are dropped, and chunks whose selectivity falls below the
    /// [`crate::chunk::SELECTION_COMPACT_DENOM`] threshold are compacted
    /// early so later operators stop paying for dead rows.
    fn filter_chunks(
        &mut self,
        chunks: Vec<SelChunk>,
        cols: &[ColInfo],
        pred: &Expr,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<Vec<SelChunk>> {
        let batch_ok = is_batch_evaluable(pred, cols);
        if !batch_ok {
            self.stats.columnar_fallbacks += 1;
        }
        let mut out = Vec::with_capacity(chunks.len());
        let mut rowbuf: Vec<Value> = Vec::new();
        for mut sc in chunks {
            let chunk = Arc::clone(sc.shared());
            let col = if batch_ok { self.try_eval_batch(pred, &chunk, cols)? } else { None };
            match col {
                Some(c) => sc.refine(|i| c.truth_at(i).is_true()),
                None => {
                    let mut kept: Vec<u32> = Vec::with_capacity(sc.live_rows());
                    for i in sc.live_iter() {
                        chunk.read_row_into(i, &mut rowbuf);
                        let scope = Scope { cols, row: &rowbuf, parent: outer };
                        if self.eval(pred, &scope, None)?.to_truth().is_true() {
                            kept.push(i as u32);
                        }
                    }
                    sc.set_selection(kept);
                }
            }
            if sc.live_rows() == 0 {
                continue;
            }
            if sc.should_compact() {
                sc.compact_in_place();
            }
            out.push(sc);
        }
        Ok(out)
    }

    /// Tallies the batches flowing out of an operator in
    /// [`crate::ExecStats`] — cached snapshot chunks count on every
    /// execution, so the counters stay per-statement deterministic. Rows are
    /// counted live (operators emit all-live chunks, so this matches the
    /// physical count at every call site).
    fn count_batches(&mut self, chunks: &[SelChunk]) {
        self.stats.batches_built += chunks.len() as u64;
        self.stats.batch_rows += chunks.iter().map(|c| c.live_rows() as u64).sum::<u64>();
    }

    /// Executes one physical operator columnar-natively, producing the same
    /// layout and (flattened, live) rows as [`Executor::exec_plan_node`]
    /// with identical `rows_scanned` / `index_lookups` / `hash_*`
    /// accounting. Outputs carry selection vectors: scans emit all-live
    /// chunks, pushed-down filters refine selections, and joins — a
    /// pipeline boundary — compact their inputs before build/probe and emit
    /// all-live chunks again.
    fn exec_plan_node_columnar(
        &mut self,
        node: &PlanNode,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<(Vec<ColInfo>, Vec<SelChunk>)> {
        if self.profiler.is_none() {
            return self.exec_plan_node_columnar_inner(node, outer);
        }
        // Inclusive timing, same keying as the row path: children recurse
        // back through this wrapper, and `EXPLAIN ANALYZE` looks entries up
        // by plan-node address.
        let started = std::time::Instant::now();
        let result = self.exec_plan_node_columnar_inner(node, outer);
        let nanos = started.elapsed().as_nanos() as u64;
        let (rows_out, batches) = result
            .as_ref()
            .map(|(_, chunks)| {
                (chunks.iter().map(|c| c.live_rows() as u64).sum::<u64>(), chunks.len() as u64)
            })
            .unwrap_or((0, 0));
        if let Some(p) = self.profiler.as_mut() {
            p.record(
                node as *const PlanNode as usize,
                || crate::plan::node_label(node),
                rows_out,
                batches,
                nanos,
            );
        }
        result
    }

    fn exec_plan_node_columnar_inner(
        &mut self,
        node: &PlanNode,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<(Vec<ColInfo>, Vec<SelChunk>)> {
        match node {
            PlanNode::SeqScan { table, quals, pushed, lookup } => {
                let t = self.db.table(table)?;
                let cols: Vec<ColInfo> = t
                    .schema
                    .columns
                    .iter()
                    .map(|c| ColInfo { quals: quals.clone(), name: c.name.clone() })
                    .collect();
                // Full scans hand out the table's cached columnar snapshot
                // (`Arc`-shared, built once per table version) — repeated
                // scans never re-transpose row storage.
                let shared: Vec<SharedChunk> = match lookup {
                    Some(l) => match t.pk_lookup(&l.value) {
                        Some(row_ids) => {
                            self.stats.index_lookups += 1;
                            self.stats.rows_scanned += row_ids.len() as u64;
                            let rows: Vec<Vec<Value>> =
                                row_ids.iter().map(|&i| t.rows()[i].clone()).collect();
                            chunk_rows(cols.len(), &rows).into_iter().map(Arc::new).collect()
                        }
                        None => {
                            self.stats.rows_scanned += t.rows().len() as u64;
                            t.columnar_chunks()
                        }
                    },
                    None => {
                        self.stats.rows_scanned += t.rows().len() as u64;
                        t.columnar_chunks()
                    }
                };
                let mut chunks: Vec<SelChunk> = shared.into_iter().map(SelChunk::all).collect();
                self.count_batches(&chunks);
                for pred in pushed {
                    chunks = self.filter_chunks(chunks, &cols, pred, outer)?;
                }
                Ok((cols, chunks))
            }
            PlanNode::SubqueryScan { query, alias, pushed } => {
                // The derived statement recurses through the columnar mode.
                let rs = self.run_select(query, outer)?;
                let quals = vec![alias.to_ascii_lowercase()];
                let cols: Vec<ColInfo> = rs
                    .columns
                    .iter()
                    .map(|c| ColInfo { quals: quals.clone(), name: c.clone() })
                    .collect();
                let mut chunks: Vec<SelChunk> = chunk_rows(cols.len(), &rs.rows)
                    .into_iter()
                    .map(|c| SelChunk::all(Arc::new(c)))
                    .collect();
                self.count_batches(&chunks);
                for pred in pushed {
                    chunks = self.filter_chunks(chunks, &cols, pred, outer)?;
                }
                Ok((cols, chunks))
            }
            PlanNode::HashJoin { left, right, kind, left_key, right_key, on } => {
                let (lcols, lsel) = self.exec_plan_node_columnar(left, outer)?;
                let (rcols, rsel) = self.exec_plan_node_columnar(right, outer)?;
                // Build/probe is a pipeline boundary: gather each input's
                // survivors into dense chunks (all-live inputs pass their
                // `Arc` through untouched).
                let lchunks: Vec<SharedChunk> = lsel.iter().map(SelChunk::compact).collect();
                let rchunks: Vec<SharedChunk> = rsel.iter().map(SelChunk::compact).collect();
                let mut cols = lcols.clone();
                cols.extend(rcols.iter().cloned());
                let (lwidth, rwidth) = (lcols.len(), rcols.len());

                // Build over the right input's key column. Hash entries hold
                // *global* row indices in right-scan order (which the probe
                // order below relies on); the build side itself is never
                // physically concatenated — candidates are gathered straight
                // out of the shared input chunks.
                let mut roffsets = Vec::with_capacity(rchunks.len());
                let mut rtotal = 0usize;
                for c in &rchunks {
                    roffsets.push(rtotal);
                    rtotal += c.rows();
                }
                let mut index = EqKeyMap::default();
                for (ci, rchunk) in rchunks.iter().enumerate() {
                    let key = &rchunk.columns[*right_key];
                    for i in 0..rchunk.rows() {
                        index.insert(&key.value_at(i), roffsets[ci] + i);
                    }
                }
                self.stats.hash_build_rows += rtotal as u64;

                let on_batch = on.as_ref().map(|p| is_batch_evaluable(p, &cols));
                let mut out_chunks: Vec<SelChunk> = Vec::new();
                let mut rowbuf: Vec<Value> = Vec::new();
                for lchunk in &lchunks {
                    // Probe: gather candidate (left, right) pairs — left rows
                    // in chunk order, each row's right matches in build-scan
                    // order, exactly the row path's emission order.
                    let lkey = &lchunk.columns[*left_key];
                    let mut cand_l: Vec<usize> = Vec::new();
                    let mut cand_r: Vec<usize> = Vec::new();
                    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(lchunk.rows());
                    for i in 0..lchunk.rows() {
                        self.stats.hash_probes += 1;
                        let start = cand_l.len();
                        for &ri in index.probe(&lkey.value_at(i)).iter() {
                            cand_l.push(i);
                            cand_r.push(ri);
                        }
                        ranges.push((start, cand_l.len()));
                    }
                    // Materialize the candidate chunk: left columns gathered
                    // from this chunk, right columns from the build side.
                    let mut cand_cols = lchunk.gather(&cand_l).columns;
                    cand_cols.extend(gather_shared(&rchunks, &roffsets, rwidth, &cand_r).columns);
                    let cand = DataChunk::new(cand_cols, cand_l.len());
                    // Re-check the full ON predicate per candidate.
                    let keep: Option<Vec<bool>> = match on {
                        None => None,
                        Some(pred) => {
                            let col = if on_batch == Some(true) {
                                self.try_eval_batch(pred, &cand, &cols)?
                            } else {
                                self.stats.columnar_fallbacks += 1;
                                None
                            };
                            Some(match col {
                                Some(c) => {
                                    (0..cand.rows()).map(|i| c.truth_at(i).is_true()).collect()
                                }
                                None => {
                                    let mut v = Vec::with_capacity(cand.rows());
                                    for i in 0..cand.rows() {
                                        cand.read_row_into(i, &mut rowbuf);
                                        let scope =
                                            Scope { cols: &cols, row: &rowbuf, parent: outer };
                                        v.push(self.eval(pred, &scope, None)?.to_truth().is_true());
                                    }
                                    v
                                }
                            })
                        }
                    };
                    let out = match (*kind, &keep) {
                        // Inner join with every candidate kept: the candidate
                        // chunk *is* the output.
                        (JoinKind::Inner, None) => cand,
                        (JoinKind::Inner, Some(k)) => {
                            let kept: Vec<usize> = (0..cand.rows()).filter(|&i| k[i]).collect();
                            cand.gather(&kept)
                        }
                        // Left join: walk left rows in order, padding the
                        // right side with NULLs when nothing survived.
                        (JoinKind::Left, _) => {
                            let mut builders: Vec<ArrayBuilder> =
                                (0..cols.len()).map(|_| ArrayBuilder::new()).collect();
                            let mut rows = 0usize;
                            for (i, &(s, e)) in ranges.iter().enumerate() {
                                let mut matched = false;
                                for p in s..e {
                                    if keep.as_ref().is_none_or(|k| k[p]) {
                                        matched = true;
                                        for (ci, b) in builders.iter_mut().enumerate() {
                                            b.push_from(&cand.columns[ci], p);
                                        }
                                        rows += 1;
                                    }
                                }
                                if !matched {
                                    for (ci, b) in builders.iter_mut().enumerate() {
                                        if ci < lwidth {
                                            b.push_from(&lchunk.columns[ci], i);
                                        } else {
                                            b.push_null();
                                        }
                                    }
                                    rows += 1;
                                }
                            }
                            DataChunk::new(
                                builders.into_iter().map(ArrayBuilder::finish).collect(),
                                rows,
                            )
                        }
                    };
                    if !out.is_empty() {
                        out_chunks.push(SelChunk::all(Arc::new(out)));
                    }
                }
                self.count_batches(&out_chunks);
                Ok((cols, out_chunks))
            }
            PlanNode::NestedLoopJoin { left, right, kind, on } => {
                // Non-equi joins keep the row path's nested loop (and its
                // per-pair accounting) verbatim; only the inputs are batched.
                let (lcols, lchunks) = self.exec_plan_node_columnar(left, outer)?;
                let (rcols, rchunks) = self.exec_plan_node_columnar(right, outer)?;
                self.stats.columnar_fallbacks += 1;
                let l = Rel { cols: lcols, rows: rows_from_live(&lchunks) };
                let r = Rel { cols: rcols, rows: rows_from_live(&rchunks) };
                let join = Join {
                    kind: *kind,
                    table: TableRef::Named { table: String::new(), alias: None },
                    on: on.clone(),
                };
                let rel = self.join(l, r, &join, outer)?;
                let chunks: Vec<SelChunk> = chunk_rows(rel.cols.len(), &rel.rows)
                    .into_iter()
                    .map(|c| SelChunk::all(Arc::new(c)))
                    .collect();
                self.count_batches(&chunks);
                Ok((rel.cols, chunks))
            }
        }
    }

    /// FROM/JOIN/WHERE for the columnar mode: the optimizer's physical plan,
    /// executed over batches, then the WHERE remnant applied conjunct by
    /// conjunct (each conjunct only ever sees the survivors of the previous
    /// one — the same evaluation set as the row path's short-circuit loop).
    fn columnar_from_where(
        &mut self,
        stmt: &SelectStatement,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<(Vec<ColInfo>, Vec<SelChunk>)> {
        let plan = self.plans.get_or_plan(self.db, stmt, &mut self.stats)?;
        let (cols, mut chunks) = match &plan.root {
            Some(node) => self.exec_plan_node_columnar(node, outer)?,
            None => (Vec::new(), vec![SelChunk::all(Arc::new(DataChunk::unit(1)))]),
        };
        // The row path counts every post-join row as scanned when applying
        // the remnant; mirror that before filtering.
        self.stats.rows_scanned += chunks.iter().map(|c| c.live_rows() as u64).sum::<u64>();
        for pred in &plan.where_remnant {
            chunks = self.filter_chunks(chunks, &cols, pred, outer)?;
        }
        Ok((cols, chunks))
    }

    /// Entry point for [`crate::plan::PlanMode::Columnar`] statements: runs
    /// FROM/JOIN/WHERE over batches, then the vectorized grouped or
    /// ungrouped tail. Both tails are total — inexpressible expressions
    /// bridge to the row machinery per *operator* inside them — so the
    /// statement as a whole never demotes. A statement whose execution
    /// raised `columnar_fallbacks` anywhere (nested statements included)
    /// counts once in `columnar_partial`: it mixed batch and row evaluation.
    pub(crate) fn run_select_columnar(
        &mut self,
        stmt: &SelectStatement,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<ResultSet> {
        let fallbacks_before = self.stats.columnar_fallbacks;
        let result = self.run_select_columnar_inner(stmt, outer);
        if self.stats.columnar_fallbacks > fallbacks_before {
            self.stats.columnar_partial += 1;
        }
        result
    }

    fn run_select_columnar_inner(
        &mut self,
        stmt: &SelectStatement,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<ResultSet> {
        let (cols, chunks) = self.columnar_from_where(stmt, outer)?;
        if select_is_grouped(stmt) {
            // Grouping is a pipeline boundary: gather the filter survivors
            // into dense chunks so group ids index physical rows directly.
            let dense: Vec<SharedChunk> = chunks.iter().map(SelChunk::compact).collect();
            self.columnar_grouped(stmt, &cols, &dense, outer)
        } else {
            self.columnar_ungrouped(stmt, &cols, &chunks, outer)
        }
    }

    /// Vectorized projection / DISTINCT / ORDER BY / LIMIT for ungrouped
    /// statements, consuming selection vectors at the output boundary: batch
    /// kernels evaluate all physical rows and only live rows are assembled
    /// into output. Projections or ORDER BY keys the batch layer cannot
    /// express (subqueries, outer references) bridge to the row machinery
    /// per *expression*, evaluated over live rows only — one row-path
    /// projection no longer forfeits batch evaluation of its neighbors.
    fn columnar_ungrouped(
        &mut self,
        stmt: &SelectStatement,
        cols: &[ColInfo],
        chunks: &[SelChunk],
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<ResultSet> {
        let (headers, proj_exprs) = expand_projections(&stmt.projections, cols)?;
        // ORDER BY keys naming output columns (ordinals, aliases) read the
        // projected row; everything else evaluates over the input relation.
        let order_srcs: Vec<Option<usize>> = stmt
            .order_by
            .iter()
            .map(|item| {
                order_key_output_column(
                    &item.expr,
                    proj_exprs.len(),
                    &headers,
                    &stmt.projections,
                    cols,
                )
            })
            .collect();
        let mut proj_batch = Vec::with_capacity(proj_exprs.len());
        for e in &proj_exprs {
            let ok = is_batch_evaluable(e, cols);
            if !ok {
                self.stats.columnar_fallbacks += 1;
            }
            proj_batch.push(ok);
        }
        let mut order_batch = Vec::with_capacity(stmt.order_by.len());
        for (item, src) in stmt.order_by.iter().zip(&order_srcs) {
            let ok = src.is_some() || is_batch_evaluable(&item.expr, cols);
            if !ok {
                self.stats.columnar_fallbacks += 1;
            }
            order_batch.push(ok);
        }

        /// One projected column of one chunk: batch results index *physical*
        /// rows, row-bridged results hold one value per *live* row.
        enum PCol<'c> {
            Batch(Cow<'c, ColumnArray>),
            Rows(Vec<Value>),
        }

        let n_order = stmt.order_by.len();
        let mut out_rows: Vec<Vec<Value>> = Vec::new();
        // Sort-key values for expression-sourced ORDER BY items, flattened
        // across chunks in live-row order.
        let mut key_vals: Vec<Vec<Value>> = vec![Vec::new(); n_order];
        let mut rowbuf: Vec<Value> = Vec::new();
        for sc in chunks {
            if sc.live_rows() == 0 {
                continue;
            }
            let chunk = sc.chunk();
            let mut pcols: Vec<PCol<'_>> = Vec::with_capacity(proj_exprs.len());
            for (e, ok) in proj_exprs.iter().zip(&proj_batch) {
                let col = if *ok { self.try_eval_batch(e, chunk, cols)? } else { None };
                match col {
                    Some(c) => pcols.push(PCol::Batch(c)),
                    None => {
                        let mut vals = Vec::with_capacity(sc.live_rows());
                        for i in sc.live_iter() {
                            chunk.read_row_into(i, &mut rowbuf);
                            let scope = Scope { cols, row: &rowbuf, parent: outer };
                            vals.push(self.eval(e, &scope, None)?);
                        }
                        pcols.push(PCol::Rows(vals));
                    }
                }
            }
            for (k, item) in stmt.order_by.iter().enumerate() {
                if order_srcs[k].is_some() {
                    continue;
                }
                let col = if order_batch[k] {
                    self.try_eval_batch(&item.expr, chunk, cols)?
                } else {
                    None
                };
                match col {
                    Some(c) => {
                        for i in sc.live_iter() {
                            key_vals[k].push(c.value_at(i));
                        }
                    }
                    None => {
                        for i in sc.live_iter() {
                            chunk.read_row_into(i, &mut rowbuf);
                            let scope = Scope { cols, row: &rowbuf, parent: outer };
                            key_vals[k].push(self.eval(&item.expr, &scope, None)?);
                        }
                    }
                }
            }
            for k in 0..sc.live_rows() {
                let phys = sc.live(k);
                // Borrowed (pass-through) columns clone the cell; owned
                // (computed) columns surrender it without a copy.
                out_rows.push(
                    pcols
                        .iter_mut()
                        .map(|c| match c {
                            PCol::Batch(Cow::Borrowed(b)) => b.value_at(phys),
                            PCol::Batch(Cow::Owned(o)) => o.take_at(phys),
                            PCol::Rows(vals) => std::mem::replace(&mut vals[k], Value::Null),
                        })
                        .collect(),
                );
            }
        }

        // DISTINCT — hashed first-seen dedup, same as the row tail.
        if stmt.distinct {
            let mut seen = GroupKeyMap::default();
            let mut kept_rows = Vec::new();
            let mut kept_keys: Vec<Vec<Value>> = vec![Vec::new(); n_order];
            for (i, row) in out_rows.into_iter().enumerate() {
                if seen.insert_if_new(&row) {
                    for k in 0..n_order {
                        if order_srcs[k].is_none() {
                            kept_keys[k].push(std::mem::replace(&mut key_vals[k][i], Value::Null));
                        }
                    }
                    kept_rows.push(row);
                }
            }
            out_rows = kept_rows;
            key_vals = kept_keys;
        }

        if !stmt.order_by.is_empty() {
            let sort_keys: Vec<Vec<(Value, bool)>> = (0..out_rows.len())
                .map(|i| {
                    stmt.order_by
                        .iter()
                        .enumerate()
                        .map(|(k, item)| {
                            let v = match order_srcs[k] {
                                Some(p) => out_rows[i][p].clone(),
                                None => key_vals[k][i].clone(),
                            };
                            (v, item.descending)
                        })
                        .collect()
                })
                .collect();
            sort_rows_by_keys(&mut out_rows, &sort_keys);
        }

        apply_limit_offset(stmt, &mut out_rows);
        Ok(ResultSet { columns: headers, rows: out_rows })
    }

    /// Vectorized grouped pipeline, in five batch passes over dense
    /// (boundary-compacted) chunks: (1) group ids — one batch evaluation per
    /// key expression per chunk, folded through [`GroupKeyMap`] into a
    /// per-row `gids` array (first-seen group order, scan-order membership,
    /// identical to the row path); (2) aggregate columns — each node's
    /// argument is batch-evaluated per chunk and folded into a typed
    /// [`AggAcc`] accumulator, yielding one result column with a row per
    /// group; (3) a *group table*: one representative (first-member) row
    /// per group; (4) HAVING, projections, and ORDER BY expression keys
    /// batch-evaluated over the group table with the aggregate columns
    /// patched in ([`Executor::try_eval_batch_agg`]); (5) DISTINCT / sort /
    /// LIMIT over the finished rows. Every pass bridges to the row
    /// machinery per expression when the batch layer cannot express it
    /// ([`Executor::eval_rows_to_column`], [`Executor::eval_group_column`]),
    /// so the pipeline is total — nothing demotes the whole statement.
    fn columnar_grouped(
        &mut self,
        stmt: &SelectStatement,
        cols: &[ColInfo],
        chunks: &[SharedChunk],
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<ResultSet> {
        let (headers, proj_exprs) = expand_projections(&stmt.projections, cols)?;
        let mut agg_nodes: Vec<&Expr> = Vec::new();
        for e in &proj_exprs {
            collect_aggregates(e, &mut agg_nodes);
        }
        if let Some(h) = &stmt.having {
            collect_aggregates(h, &mut agg_nodes);
        }
        for item in &stmt.order_by {
            collect_aggregates(&item.expr, &mut agg_nodes);
        }

        // Chunk start offsets for global row addressing.
        let mut offsets = Vec::with_capacity(chunks.len());
        let mut total = 0usize;
        for c in chunks {
            offsets.push(total);
            total += c.rows();
        }

        // --- Pass 1: group ids. `gids[global_row] = group`, plus each
        // group's size and first member for COUNT(*) and the group table.
        let mut gids: Vec<u32> = Vec::with_capacity(total);
        let mut group_sizes: Vec<i64> = Vec::new();
        let mut group_first: Vec<usize> = Vec::new();
        if stmt.group_by.is_empty() {
            // One global group — present (possibly empty) even over zero
            // input rows, like the row path's implicit group.
            gids.resize(total, 0);
            group_sizes.push(total as i64);
            group_first.push(0);
        } else {
            let mut key_batch = Vec::with_capacity(stmt.group_by.len());
            for g in &stmt.group_by {
                let ok = is_batch_evaluable(g, cols);
                if !ok {
                    self.stats.columnar_fallbacks += 1;
                }
                key_batch.push(ok);
            }
            let mut map = GroupKeyMap::default();
            let mut key = Vec::with_capacity(stmt.group_by.len());
            for (ci, chunk) in chunks.iter().enumerate() {
                let mut key_cols: Vec<Cow<'_, ColumnArray>> =
                    Vec::with_capacity(stmt.group_by.len());
                for (g, ok) in stmt.group_by.iter().zip(&key_batch) {
                    let col = if *ok { self.try_eval_batch(g, chunk, cols)? } else { None };
                    match col {
                        Some(c) => key_cols.push(c),
                        None => key_cols
                            .push(Cow::Owned(self.eval_rows_to_column(g, chunk, cols, outer)?)),
                    }
                }
                for i in 0..chunk.rows() {
                    key.clear();
                    key.extend(key_cols.iter().map(|c| c.value_at(i)));
                    let (gid, new) = map.get_or_insert(&key);
                    if new {
                        group_sizes.push(0);
                        group_first.push(offsets[ci] + i);
                    }
                    group_sizes[gid] += 1;
                    gids.push(gid as u32);
                }
            }
        }
        let n_groups = group_sizes.len();

        // --- Pass 2: one result column per aggregate node, keyed by node
        // address for [`Executor::try_eval_batch_agg`] and the row-bridge
        // overrides.
        let mut agg_results: HashMap<usize, ColumnArray> = HashMap::with_capacity(agg_nodes.len());
        for node in &agg_nodes {
            let addr = *node as *const Expr as usize;
            if agg_results.contains_key(&addr) {
                continue;
            }
            let Expr::Aggregate { kind, distinct, arg } = *node else {
                unreachable!("collect_aggregates only yields Aggregate nodes")
            };
            let col = match arg.as_deref() {
                // COUNT(*): every group row counts, NULLs included.
                None => match kind {
                    AggregateKind::Count => ColumnArray::Int {
                        values: group_sizes.clone(),
                        nulls: NullBitmap::new_valid(n_groups),
                    },
                    other => {
                        // The row path raises this per group, so zero groups
                        // produce an empty result instead of an error.
                        if n_groups > 0 {
                            return Err(SqlError::Execution(format!(
                                "{} requires an argument",
                                other.name()
                            )));
                        }
                        ColumnArray::Int { values: Vec::new(), nulls: NullBitmap::default() }
                    }
                },
                Some(e) => {
                    let arg_ok = is_batch_evaluable(e, cols);
                    if !arg_ok {
                        self.stats.columnar_fallbacks += 1;
                    }
                    let mut acc = AggAcc::new(*kind, *distinct, n_groups);
                    for (ci, chunk) in chunks.iter().enumerate() {
                        let col = if arg_ok { self.try_eval_batch(e, chunk, cols)? } else { None };
                        let col = match col {
                            Some(c) => c,
                            None => Cow::Owned(self.eval_rows_to_column(e, chunk, cols, outer)?),
                        };
                        acc.update(&col, &gids[offsets[ci]..offsets[ci] + chunk.rows()]);
                    }
                    acc.finish()
                }
            };
            agg_results.insert(addr, col);
        }

        // --- Pass 3: the group table — one representative (first-member)
        // row per group, over which per-group expressions batch-evaluate.
        let mut builders: Vec<ArrayBuilder> =
            (0..cols.len()).map(|_| ArrayBuilder::with_capacity(n_groups)).collect();
        for g in 0..n_groups {
            if group_sizes[g] == 0 {
                // The empty global group of a zero-row ungrouped aggregate:
                // bare columns read as NULL, like the row path's null row.
                for b in &mut builders {
                    b.push_null();
                }
                continue;
            }
            let gi = group_first[g];
            let k = offsets.partition_point(|&o| o <= gi) - 1;
            for (ci, b) in builders.iter_mut().enumerate() {
                b.push_from(&chunks[k].columns[ci], gi - offsets[k]);
            }
        }
        let rep =
            DataChunk::new(builders.into_iter().map(ArrayBuilder::finish).collect(), n_groups);

        // --- Pass 4: HAVING, then projections, over the group table.
        // HAVING evaluates every group (as the row path does); projections
        // and ORDER BY keys row-bridge only for surviving groups, so a
        // correlated subquery in the projection never runs for a group
        // HAVING already rejected.
        let mut keep = vec![true; n_groups];
        if let Some(h) = &stmt.having {
            let hcol = self.eval_group_column(h, &rep, cols, &agg_results, None, outer)?;
            for (g, k) in keep.iter_mut().enumerate() {
                *k = hcol.truth_at(g).is_true();
            }
        }
        let mut pcols: Vec<ColumnArray> = Vec::with_capacity(proj_exprs.len());
        for e in &proj_exprs {
            pcols.push(self.eval_group_column(e, &rep, cols, &agg_results, Some(&keep), outer)?);
        }
        let mut out_rows: Vec<Vec<Value>> = Vec::new();
        let mut kept_gs: Vec<usize> = Vec::new();
        for (g, kept) in keep.iter().enumerate() {
            if *kept {
                out_rows.push(pcols.iter_mut().map(|c| c.take_at(g)).collect());
                kept_gs.push(g);
            }
        }

        // --- Pass 5: DISTINCT / ORDER BY / LIMIT.
        if stmt.distinct {
            let mut seen = GroupKeyMap::default();
            let mut kept_rows = Vec::new();
            let mut kept2 = Vec::new();
            for (row, g) in out_rows.into_iter().zip(kept_gs.iter().copied()) {
                if seen.insert_if_new(&row) {
                    kept_rows.push(row);
                    kept2.push(g);
                }
            }
            out_rows = kept_rows;
            kept_gs = kept2;
        }

        if !stmt.order_by.is_empty() {
            let order_srcs: Vec<Option<usize>> = stmt
                .order_by
                .iter()
                .map(|item| {
                    order_key_output_column(
                        &item.expr,
                        proj_exprs.len(),
                        &headers,
                        &stmt.projections,
                        cols,
                    )
                })
                .collect();
            // Expression keys evaluate over the group table for the final
            // (HAVING- and DISTINCT-surviving) groups only.
            let mut final_keep = vec![false; n_groups];
            for &g in &kept_gs {
                final_keep[g] = true;
            }
            let mut key_cols: Vec<Option<ColumnArray>> = Vec::with_capacity(stmt.order_by.len());
            for (item, src) in stmt.order_by.iter().zip(&order_srcs) {
                key_cols.push(match src {
                    Some(_) => None,
                    None => Some(self.eval_group_column(
                        &item.expr,
                        &rep,
                        cols,
                        &agg_results,
                        Some(&final_keep),
                        outer,
                    )?),
                });
            }
            let mut sort_keys: Vec<Vec<(Value, bool)>> = Vec::with_capacity(out_rows.len());
            for (i, &g) in kept_gs.iter().enumerate() {
                let keys: Vec<(Value, bool)> = stmt
                    .order_by
                    .iter()
                    .enumerate()
                    .map(|(k, item)| {
                        let v = match order_srcs[k] {
                            Some(p) => out_rows[i][p].clone(),
                            None => key_cols[k].as_mut().expect("expression key column").take_at(g),
                        };
                        (v, item.descending)
                    })
                    .collect();
                sort_keys.push(keys);
            }
            sort_rows_by_keys(&mut out_rows, &sort_keys);
        }

        apply_limit_offset(stmt, &mut out_rows);
        Ok(ResultSet { columns: headers, rows: out_rows })
    }

    /// Evaluates one row-bridged expression over every row of a dense chunk
    /// through the ordinary row machinery — the per-operator fallback for
    /// group keys and aggregate arguments the batch layer cannot express.
    fn eval_rows_to_column(
        &mut self,
        expr: &Expr,
        chunk: &DataChunk,
        cols: &[ColInfo],
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<ColumnArray> {
        let mut b = ArrayBuilder::with_capacity(chunk.rows());
        let mut rowbuf: Vec<Value> = Vec::new();
        for i in 0..chunk.rows() {
            chunk.read_row_into(i, &mut rowbuf);
            let scope = Scope { cols, row: &rowbuf, parent: outer };
            let v = self.eval(expr, &scope, None)?;
            b.push(&v);
        }
        Ok(b.finish())
    }

    /// Evaluates one per-group expression (HAVING, a projection, an ORDER BY
    /// key) over the group table: batch-evaluated with the aggregate result
    /// columns patched in when expressible, otherwise row-bridged per group
    /// with the group's aggregate values installed in `agg_overrides`
    /// (counted in `columnar_fallbacks`). `keep` masks groups whose value
    /// can never be observed (HAVING-rejected): the row bridge skips them —
    /// a correlated subquery must not run for a rejected group — while the
    /// batch path evaluates all groups, which is safe because batch-kernel
    /// errors are value-independent (see the module docs).
    fn eval_group_column(
        &mut self,
        expr: &Expr,
        rep: &DataChunk,
        cols: &[ColInfo],
        aggs: &HashMap<usize, ColumnArray>,
        keep: Option<&[bool]>,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<ColumnArray> {
        if is_group_batch_evaluable(expr, cols) {
            if let Some(c) = self.try_eval_batch_agg(expr, rep, cols, Some(aggs))? {
                return Ok(c.into_owned());
            }
        }
        self.stats.columnar_fallbacks += 1;
        let mut b = ArrayBuilder::with_capacity(rep.rows());
        let mut rowbuf: Vec<Value> = Vec::new();
        for g in 0..rep.rows() {
            if keep.is_some_and(|k| !k[g]) {
                b.push_null();
                continue;
            }
            rep.read_row_into(g, &mut rowbuf);
            let mut ov: HashMap<usize, Value> = HashMap::with_capacity(aggs.len());
            for (&addr, col) in aggs {
                ov.insert(addr, col.value_at(g));
            }
            let scope = Scope { cols, row: &rowbuf, parent: outer };
            let saved = self.agg_overrides.replace(ov);
            let r = self.eval(expr, &scope, None);
            self.agg_overrides = saved;
            b.push(&r?);
        }
        Ok(b.finish())
    }
}

/// Stable permutation sort by per-row key vectors with [`Value::total_cmp`]
/// and per-key descending flags — identical to the row tail's ORDER BY.
fn sort_rows_by_keys(out_rows: &mut Vec<Vec<Value>>, sort_keys: &[Vec<(Value, bool)>]) {
    let mut order: Vec<usize> = (0..out_rows.len()).collect();
    order.sort_by(|&a, &b| {
        for ((va, desc), (vb, _)) in sort_keys[a].iter().zip(sort_keys[b].iter()) {
            let ord = va.total_cmp(vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    *out_rows = order.into_iter().map(|i| std::mem::take(&mut out_rows[i])).collect();
}

/// OFFSET then LIMIT, identical to the row tail.
fn apply_limit_offset(stmt: &SelectStatement, out_rows: &mut Vec<Vec<Value>>) {
    let offset = stmt.offset.unwrap_or(0) as usize;
    if offset > 0 {
        out_rows.drain(..offset.min(out_rows.len()));
    }
    if let Some(limit) = stmt.limit {
        out_rows.truncate(limit as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An adversarial value grid covering every cross-class comparison quirk:
    /// NULL, zeros of both classes, negative zero, NaN, values beyond 2^53
    /// (where the f64 comparison path is lossy), numeric text, `'nan'` text
    /// (which parses as a float!), and plain text.
    fn grid() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Integer(0),
            Value::Integer(2),
            Value::Integer(-3),
            Value::Integer(i64::MAX),
            Value::Integer(i64::MAX - 1),
            Value::Real(0.0),
            Value::Real(-0.0),
            Value::Real(2.0),
            Value::Real(2.5),
            Value::Real(f64::NAN),
            Value::Real(-f64::NAN),
            Value::Real(1e300),
            Value::text(""),
            Value::text("0"),
            Value::text("2"),
            Value::text("2.5"),
            Value::text("nan"),
            Value::text("-inf"),
            Value::text("abc"),
            Value::text(" 2"),
        ]
    }

    /// One-value column preserving the value's storage class, so `cell_ref`
    /// is exercised through real column storage.
    fn single(v: &Value) -> ColumnArray {
        ColumnArray::from_values(std::slice::from_ref(v))
    }

    #[test]
    fn cell_cmp_matches_sql_cmp_over_adversarial_grid() {
        let vals = grid();
        for a in &vals {
            for b in &vals {
                let ca = single(a);
                let cb = single(b);
                assert_eq!(
                    cell_cmp(cell_ref(&ca, 0), cell_ref(&cb, 0)),
                    a.sql_cmp(b),
                    "cell_cmp({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn cell_cmp_matches_sql_cmp_through_mixed_storage() {
        // Force Mixed storage by building one class-conflicting column, then
        // compare every pair through it: CellRef must behave identically
        // whether it came from typed or Mixed storage.
        let vals = grid();
        let mixed = ColumnArray::from_values(&vals);
        assert!(matches!(mixed, ColumnArray::Mixed { .. }));
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(
                    cell_cmp(cell_ref(&mixed, i), cell_ref(&mixed, j)),
                    a.sql_cmp(b),
                    "mixed cell_cmp({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn cell_truth_and_render_match_value_semantics() {
        for v in grid() {
            let col = single(&v);
            assert_eq!(cell_truth(cell_ref(&col, 0)), v.to_truth(), "truth of {v:?}");
            assert_eq!(cell_render(cell_ref(&col, 0)), v.render(), "render of {v:?}");
        }
    }

    #[test]
    fn arith_batch_matches_value_arith_per_cell() {
        let vals = grid();
        let n = vals.len();
        // Pair every value with every other via two gathered columns.
        let base = ColumnArray::from_values(&vals);
        let left_idx: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat_n(i, n)).collect();
        let right_idx: Vec<usize> = (0..n).cycle().take(n * n).collect();
        let l = base.gather(&left_idx);
        let r = base.gather(&right_idx);
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div, ArithOp::Mod] {
            let out = arith_batch(op, &l, &r).unwrap();
            for k in 0..n * n {
                let expect = vals[left_idx[k]].arith(op, &vals[right_idx[k]]).unwrap();
                let got = out.value_at(k);
                assert_eq!(
                    std::mem::discriminant(&got),
                    std::mem::discriminant(&expect),
                    "{op:?} class on {:?} vs {:?}",
                    vals[left_idx[k]],
                    vals[right_idx[k]],
                );
                assert!(
                    got.grouping_eq(&expect) || (got.is_null() && expect.is_null()),
                    "{op:?} on {:?} vs {:?}: got {got:?}, want {expect:?}",
                    vals[left_idx[k]],
                    vals[right_idx[k]],
                );
            }
        }
    }

    #[test]
    fn cmp_batch_handles_typed_and_mixed_columns() {
        // Int column vs Text column: numeric text compares numerically,
        // non-numeric text sorts after numbers — per sql_cmp.
        let l = ColumnArray::from_values(&[
            Value::Integer(2),
            Value::Integer(2),
            Value::Integer(2),
            Value::Null,
        ]);
        let r = ColumnArray::from_values(&[
            Value::text("2"),
            Value::text("abc"),
            Value::text("1.5"),
            Value::text("2"),
        ]);
        let eq = cmp_batch(CompareOp::Eq, &l, &r);
        assert_eq!(eq.value_at(0), Value::Integer(1));
        assert_eq!(eq.value_at(1), Value::Integer(0));
        assert_eq!(eq.value_at(2), Value::Integer(0));
        assert!(eq.is_null(3));
        let gt = cmp_batch(CompareOp::Gt, &l, &r);
        assert_eq!(gt.value_at(1), Value::Integer(0)); // text sorts after numbers
        assert_eq!(gt.value_at(2), Value::Integer(1));
    }

    #[test]
    fn broadcast_covers_every_class() {
        for v in [Value::Null, Value::Integer(7), Value::Real(0.5), Value::text("x")] {
            let col = broadcast(&v, 3);
            assert_eq!(col.len(), 3);
            for i in 0..3 {
                assert_eq!(col.value_at(i), v.clone());
                assert_eq!(col.is_null(i), v.is_null());
            }
        }
    }
}
