//! Error types for the SQL engine.

use std::fmt;

/// Errors produced while parsing or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The tokenizer encountered an invalid character or unterminated literal.
    Lex(String),
    /// The parser rejected the token stream.
    Parse(String),
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column could not be resolved.
    UnknownColumn(String),
    /// A column reference is ambiguous between joined tables.
    AmbiguousColumn(String),
    /// A function name is unknown or called with a bad arity.
    UnknownFunction(String),
    /// A type error during expression evaluation.
    Type(String),
    /// Execution-level failure (e.g. a scalar subquery returning many rows).
    Execution(String),
    /// Schema-level failure (duplicate table, arity mismatch on insert, ...).
    Schema(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            SqlError::UnknownFunction(n) => write!(f, "unknown function: {n}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
            SqlError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenient result alias used throughout the engine.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = SqlError::UnknownTable("frpm".into());
        assert_eq!(e.to_string(), "unknown table: frpm");
        let e = SqlError::Parse("unexpected token".into());
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SqlError::UnknownColumn("a".into()), SqlError::UnknownColumn("a".into()));
        assert_ne!(SqlError::UnknownColumn("a".into()), SqlError::UnknownColumn("b".into()));
    }
}
