//! Query execution: the operator runtime behind every `SELECT`.
//!
//! An executor runs one top-level statement against a borrowed
//! [`Database`] snapshot. The FROM/JOIN/WHERE section executes either
//! through the physical plan ([`PlanMode::Optimized`]: hash equi-joins, PK
//! point lookups, predicate pushdown — see [`crate::plan`]) or through the
//! legacy cross-product path ([`PlanMode::NestedLoop`]), which is kept
//! verbatim as the semantic reference the conformance suites compare
//! against. Projection, grouping ([`GroupKeyMap`]-hashed), `HAVING`,
//! `DISTINCT`, `ORDER BY`, and `LIMIT`/`OFFSET` then run identically for
//! both modes.
//!
//! ## Subquery strategy
//!
//! Expression-position subqueries (scalar, `IN`, `EXISTS`) pick the
//! cheapest sound strategy, in order:
//!
//! 1. **Uncorrelated** ([`is_uncorrelated`]): execute once per statement,
//!    replay the result for every outer row (`subquery_result_*` counters).
//! 2. **Correlated but decorrelatable** ([`mod@crate::decorrelate`]): rewrite
//!    into a hash semi/anti/group join — the uncorrelated build side
//!    executes once, an [`EqKeyMap`] is built over the correlation keys,
//!    and every outer row becomes an O(1) probe (`decorrelated_*`
//!    counters). Correlated scalar aggregates additionally memoize one
//!    result per distinct outer key.
//! 3. **Correlated, not rewritable**: re-execute per outer row, re-planning
//!    avoided by the per-statement [`PlanCache`] (`plan_cache_*` counters).
//!
//! The nested-loop mode uses none of these (it re-executes every subquery
//! per outer row unconditionally), so a defect in any cache or rewrite
//! shows up as a mode divergence instead of bending both sides equally.
//!
//! All work is tallied in [`ExecStats`], the deterministic cost proxy the
//! VES metric uses in place of wall-clock time.

use std::collections::HashMap;
use std::rc::Rc;

use std::sync::Arc;

use crate::ast::*;
use crate::decorrelate::{
    synthetic_agg_name, DecorrelatedKind, DecorrelatedSubquery, SubqueryPosition,
};
use crate::error::{SqlError, SqlResult};
use crate::functions::eval_scalar_function;
use crate::plan::{expand_projections, is_uncorrelated, PlanCache, PlanMode, PlanNode};
use crate::profile::{Profiler, QueryProfile};
use crate::result::{ExecStats, ResultSet};
use crate::schema::{ColumnDef, DataType, ForeignKey, TableSchema};
use crate::storage::{Database, EqKeyMap, GroupKeyMap};
use crate::value::{like_match, Truth, Value};

/// Executes a SQL string against a database, returning the result rows.
pub fn execute(db: &Database, sql: &str) -> SqlResult<ResultSet> {
    execute_with_stats(db, sql).map(|(rs, _)| rs)
}

/// Executes a SQL string and also reports deterministic execution statistics
/// (the cost proxy used by the VES metric).
pub fn execute_with_stats(db: &Database, sql: &str) -> SqlResult<(ResultSet, ExecStats)> {
    execute_with_stats_mode(db, sql, PlanMode::default())
}

/// Executes a SQL string under an explicit plan mode. `EXPLAIN [ANALYZE]`
/// is accepted here too (it is read-only, like SELECT): the rendering comes
/// back as the result set and the reported stats stay at their default —
/// explaining a statement must never perturb cost accounting.
pub fn execute_with_stats_mode(
    db: &Database,
    sql: &str,
    mode: PlanMode,
) -> SqlResult<(ResultSet, ExecStats)> {
    match crate::parser::parse_statement(sql)? {
        Statement::Explain(ex) => {
            Ok((crate::explain::explain_statement(db, &ex, mode)?, ExecStats::default()))
        }
        Statement::Select(stmt) => execute_select_with_stats_mode(db, &stmt, mode),
        other => Err(SqlError::Parse(format!("expected SELECT, parsed {other:?}"))),
    }
}

/// Executes an already-parsed SELECT statement.
pub fn execute_select(db: &Database, stmt: &SelectStatement) -> SqlResult<ResultSet> {
    execute_select_with_stats(db, stmt).map(|(rs, _)| rs)
}

/// Executes an already-parsed SELECT with statistics.
pub fn execute_select_with_stats(
    db: &Database,
    stmt: &SelectStatement,
) -> SqlResult<(ResultSet, ExecStats)> {
    execute_select_with_stats_mode(db, stmt, PlanMode::default())
}

/// Executes an already-parsed SELECT under an explicit plan mode. Subqueries
/// inherit the mode, so `PlanMode::Optimized` routes every nesting level
/// through the physical planner and `PlanMode::NestedLoop` reproduces the
/// legacy executor end to end.
pub fn execute_select_with_stats_mode(
    db: &Database,
    stmt: &SelectStatement,
    mode: PlanMode,
) -> SqlResult<(ResultSet, ExecStats)> {
    let (rs, stats, _) = execute_select_with_plan_cache(db, stmt, mode, PlanCache::default())?;
    Ok((rs, stats))
}

/// Executes an already-parsed SELECT with an externally provided plan cache,
/// handing the cache back (extended with whatever this execution planned)
/// alongside the result.
///
/// This is the building block for *sharing* plans across executions: a
/// caller that keeps the returned cache and threads it into the next
/// execution of the same statement skips planning entirely. The cache keys
/// plans by statement address, so the caller must keep the statement (and
/// everything reachable from it) alive and unmoved for as long as the cache
/// is reused — [`crate::prepared::SharedPlanCache`] packages that invariant
/// safely and is what `seed-serve` and the eval runners use.
pub fn execute_select_with_plan_cache(
    db: &Database,
    stmt: &SelectStatement,
    mode: PlanMode,
    plans: PlanCache,
) -> SqlResult<(ResultSet, ExecStats, PlanCache)> {
    let mut exec = Executor::new(db, mode, plans);
    let rs = exec.run_select(stmt, None)?;
    Ok((rs, exec.stats, exec.plans))
}

/// Like [`execute_select_with_plan_cache`], but additionally records a
/// per-operator wall-clock [`QueryProfile`].
///
/// The profile travels *next to* the deterministic `ExecStats`, never
/// inside it: stats, result rows, and [`ExecStats::cost`] are bit-identical
/// to an unprofiled run of the same statement (the determinism guard in
/// `tests/explain_golden.rs` pins this). This is what `EXPLAIN ANALYZE` and
/// the serve layer's always-on profiling run through.
pub fn execute_select_profiled(
    db: &Database,
    stmt: &SelectStatement,
    mode: PlanMode,
    plans: PlanCache,
) -> SqlResult<(ResultSet, ExecStats, PlanCache, QueryProfile)> {
    let mut exec = Executor::new(db, mode, plans);
    exec.profiler = Some(Profiler::new());
    let rs = exec.run_select(stmt, None);
    let profile = exec.profiler.take().map(Profiler::finish).unwrap_or_default();
    Ok((rs?, exec.stats, exec.plans, profile))
}

/// Executes any supported statement, applying DDL/DML to the database.
pub fn execute_statement(db: &mut Database, sql: &str) -> SqlResult<ResultSet> {
    let stmt = crate::parser::parse_statement(sql)?;
    match stmt {
        Statement::Select(s) => execute_select(db, &s),
        Statement::CreateTable(ct) => {
            let columns: Vec<ColumnDef> = ct
                .columns
                .iter()
                .map(|(name, ty, pk)| {
                    let mut c = ColumnDef::new(name.clone(), *ty);
                    if *pk {
                        c = c.primary_key();
                    }
                    c
                })
                .collect();
            db.create_table(TableSchema::new(ct.name.clone(), columns))?;
            for (from_col, to_table, to_col) in ct.foreign_keys {
                db.add_foreign_key(ForeignKey {
                    from_table: ct.name.clone(),
                    from_column: from_col,
                    to_table,
                    to_column: to_col,
                });
            }
            Ok(ResultSet::new(vec![]))
        }
        Statement::Insert(ins) => {
            let schema = db.table(&ins.table)?.schema.clone();
            let positions: Vec<usize> = if ins.columns.is_empty() {
                (0..schema.columns.len()).collect()
            } else {
                ins.columns
                    .iter()
                    .map(|c| {
                        schema
                            .column_index(c)
                            .ok_or_else(|| SqlError::UnknownColumn(format!("{}.{}", ins.table, c)))
                    })
                    .collect::<SqlResult<Vec<_>>>()?
            };
            let mut count = 0usize;
            for row_exprs in &ins.rows {
                if row_exprs.len() != positions.len() {
                    return Err(SqlError::Schema("INSERT arity mismatch".into()));
                }
                let mut row = vec![Value::Null; schema.columns.len()];
                for (expr, &pos) in row_exprs.iter().zip(&positions) {
                    let mut exec = Executor::new(db, PlanMode::default(), PlanCache::default());
                    let scope = Scope { cols: &[], row: &[], parent: None };
                    row[pos] = exec.eval(expr, &scope, None)?;
                }
                db.insert(&ins.table, row)?;
                count += 1;
            }
            let mut rs = ResultSet::new(vec!["rows_inserted".into()]);
            rs.rows.push(vec![Value::Integer(count as i64)]);
            Ok(rs)
        }
        Statement::Update(_) | Statement::Delete(_) => {
            // Plan against the current state, then apply in place through
            // the same table-level maintenance the commit path uses.
            let planned = crate::mutate::plan_mutation(db, &stmt)?;
            let outcome = crate::mutate::apply_planned(db, planned)?;
            *db = outcome.db;
            Ok(outcome.result)
        }
        Statement::Explain(ex) => crate::explain::explain_statement(db, &ex, PlanMode::default()),
    }
}

/// Metadata for one column of a flattened (joined) row; defined in the
/// planner module so static planning and execution share one layout type.
use crate::plan::ColMeta as ColInfo;

/// An intermediate relation: flattened column metadata plus rows.
#[derive(Debug, Clone)]
pub(crate) struct Rel {
    pub(crate) cols: Vec<ColInfo>,
    pub(crate) rows: Vec<Vec<Value>>,
}

/// Evaluation scope: the current flattened row, plus an optional outer scope
/// for correlated subqueries.
pub(crate) struct Scope<'a> {
    pub(crate) cols: &'a [ColInfo],
    pub(crate) row: &'a [Value],
    pub(crate) parent: Option<&'a Scope<'a>>,
}

/// A group of rows sharing the same GROUP BY key: row indices into the
/// filtered relation, so grouping never clones full rows.
pub(crate) struct Group<'a> {
    /// The filtered relation all groups index into.
    pub(crate) all: &'a [Vec<Value>],
    /// Positions of this group's rows within `all`, in scan order.
    pub(crate) idx: &'a [usize],
}

impl<'a> Group<'a> {
    /// Number of rows in the group.
    fn len(&self) -> usize {
        self.idx.len()
    }

    /// The group's rows, in scan order.
    fn rows(&self) -> impl Iterator<Item = &'a Vec<Value>> + '_ {
        self.idx.iter().map(|&i| &self.all[i])
    }
}

/// A decorrelated subquery's build side, materialized once per enclosing
/// statement execution: the build's rows plus a hash index over the first
/// correlation key column. Multi-key correlations narrow through the index
/// on key 0 and verify the remaining keys with [`Value::sql_cmp`] per
/// candidate — the index implements `sql_cmp` equality exactly (NULL and
/// NaN included), so the probe reproduces the correlation predicate's
/// semantics bit for bit.
struct DecorrBuild {
    rw: Arc<DecorrelatedSubquery>,
    rows: Vec<Vec<Value>>,
    index: EqKeyMap,
}

impl DecorrBuild {
    /// Verifies the correlation keys beyond the indexed first one: true when
    /// build row `ri` is `sql_cmp`-equal to the probe keys on every
    /// remaining key column. The single place multi-key probe semantics
    /// live, shared by the collecting and existence probes.
    fn tail_keys_match(&self, ri: usize, keys: &[Value]) -> bool {
        self.rw.key_cols[1..]
            .iter()
            .zip(&keys[1..])
            .all(|(&c, k)| matches!(k.sql_cmp(&self.rows[ri][c]), Some(o) if o.is_eq()))
    }
}

/// Per-distinct-outer-key memo of a group join's scalar results: probe keys
/// (grouped by [`Value::grouping_eq`]) map to the already-computed scalar.
#[derive(Default)]
struct ScalarMemo {
    keys: GroupKeyMap,
    results: Vec<Value>,
}

pub(crate) struct Executor<'a> {
    pub(crate) db: &'a Database,
    pub(crate) stats: ExecStats,
    pub(crate) mode: PlanMode,
    /// Per-statement plan cache: subqueries re-executed per outer row are
    /// planned once and replayed from here afterwards. May arrive pre-seeded
    /// from a [`crate::prepared::SharedPlanCache`]. Also memoizes the
    /// decorrelation analysis (see [`PlanCache::rewrite_for`]).
    pub(crate) plans: PlanCache,
    /// Results of *uncorrelated* expression-position subqueries (scalar,
    /// `IN`, `EXISTS`), keyed by statement address like the plan cache: an
    /// uncorrelated subquery returns the same rows for every outer row, so
    /// it executes once per statement instead of once per row.
    subquery_results: HashMap<usize, Rc<ResultSet>>,
    /// Memoized [`is_uncorrelated`] verdict per subquery address, so the
    /// schema analysis also runs once per statement, not once per row.
    uncorrelated: HashMap<usize, bool>,
    /// Materialized decorrelated build sides per subquery address. `None`
    /// records "not rewritable", so refused shapes skip straight to the
    /// per-outer-row path on every later row.
    decorr_builds: HashMap<usize, Option<Rc<DecorrBuild>>>,
    /// Group-join scalar memos per subquery address.
    decorr_memos: HashMap<usize, ScalarMemo>,
    /// Pre-computed aggregate results, keyed by `Expr::Aggregate` node
    /// address, installed by the columnar grouped pipeline's *row bridge*
    /// for the duration of one group's evaluation when a HAVING, projection,
    /// or ORDER-BY expression is not batch-expressible over the group table
    /// ([`crate::columnar`], `eval_group_column`). `eval` consults it before
    /// demanding a group context, so the row pipeline's scalar machinery
    /// evaluates grouped expressions unchanged while the aggregates
    /// themselves come from batch kernels. Saved and restored around nested
    /// statements; `None` outside the columnar grouped path.
    pub(crate) agg_overrides: Option<HashMap<usize, Value>>,
    /// Wall-clock per-operator profiler, installed only by
    /// [`execute_select_profiled`]. `None` (the default) keeps the plain
    /// execution paths free of timing syscalls; when present, the operator
    /// entry points record inclusive nanos keyed by node address. Never
    /// feeds [`ExecStats`].
    pub(crate) profiler: Option<Profiler>,
}

impl<'a> Executor<'a> {
    pub(crate) fn new(db: &'a Database, mode: PlanMode, plans: PlanCache) -> Self {
        Executor {
            db,
            stats: ExecStats::default(),
            mode,
            plans,
            subquery_results: HashMap::new(),
            uncorrelated: HashMap::new(),
            decorr_builds: HashMap::new(),
            decorr_memos: HashMap::new(),
            agg_overrides: None,
            profiler: None,
        }
    }

    /// Runs a subquery appearing in expression position. Correlated
    /// subqueries re-execute against the current outer row; uncorrelated
    /// ones execute once and replay from the result cache afterwards, with
    /// hits/misses reported in [`ExecStats`].
    ///
    /// The cache only engages in [`PlanMode::Optimized`]: the nested-loop
    /// mode is the independent semantic reference the conformance suite
    /// compares optimized execution against, so it must keep re-executing
    /// per outer row — otherwise a defect in the [`is_uncorrelated`]
    /// analysis would bend both sides identically and become invisible.
    fn run_expr_subquery(
        &mut self,
        query: &SelectStatement,
        scope: &Scope<'_>,
    ) -> SqlResult<Rc<ResultSet>> {
        if self.mode == PlanMode::NestedLoop {
            return Ok(Rc::new(self.run_select(query, Some(scope))?));
        }
        let key = query as *const SelectStatement as usize;
        if let Some(rs) = self.subquery_results.get(&key) {
            self.stats.subquery_result_hits += 1;
            return Ok(Rc::clone(rs));
        }
        let cacheable = match self.uncorrelated.get(&key) {
            Some(&c) => c,
            None => {
                let c = is_uncorrelated(self.db, query);
                self.uncorrelated.insert(key, c);
                c
            }
        };
        // The outer scope is passed either way: an uncorrelated subquery
        // never reads it (that is what `is_uncorrelated` proves), so the
        // cached result is outer-row-independent.
        let rs = Rc::new(self.run_select(query, Some(scope))?);
        if cacheable {
            self.stats.subquery_result_misses += 1;
            self.subquery_results.insert(key, Rc::clone(&rs));
        }
        Ok(rs)
    }

    /// Returns the materialized decorrelated build side for a correlated
    /// subquery, rewriting and executing the build on first sight. `None`
    /// means the shape is not rewritable (or this is the nested-loop
    /// reference mode, which never decorrelates so it stays an independent
    /// oracle) and the caller keeps the per-outer-row path.
    ///
    /// The build executes with no outer scope — the rewrite guarantees it is
    /// self-contained — and its plan lands in the ordinary [`PlanCache`]
    /// keyed by the build statement's address, which the `Arc`-pinned
    /// rewrite keeps stable (see [`PlanCache::rewrite_for`]).
    fn decorr_build(
        &mut self,
        query: &SelectStatement,
        pos: SubqueryPosition,
    ) -> SqlResult<Option<Rc<DecorrBuild>>> {
        if self.mode == PlanMode::NestedLoop {
            return Ok(None);
        }
        let key = query as *const SelectStatement as usize;
        if let Some(cached) = self.decorr_builds.get(&key) {
            return Ok(cached.clone());
        }
        let built = match self.plans.rewrite_for(self.db, query, pos) {
            None => None,
            Some(rw) => {
                let rs = self.run_select(&rw.build, None)?;
                let mut index = EqKeyMap::default();
                for (i, row) in rs.rows.iter().enumerate() {
                    index.insert(&row[rw.key_cols[0]], i);
                }
                self.stats.hash_build_rows += rs.rows.len() as u64;
                self.stats.decorrelated_subqueries += 1;
                Some(Rc::new(DecorrBuild { rw, rows: rs.rows, index }))
            }
        };
        self.decorr_builds.insert(key, built.clone());
        Ok(built)
    }

    /// Evaluates the outer sides of a decorrelated subquery's correlation
    /// equalities against the probing row's scope.
    fn decorr_outer_keys(
        &mut self,
        rw: &DecorrelatedSubquery,
        scope: &Scope<'_>,
    ) -> SqlResult<Vec<Value>> {
        rw.outer_keys.iter().map(|e| self.eval(e, scope, None)).collect()
    }

    /// Counts one probe of a decorrelated build side.
    fn decorr_count_probe(&mut self) {
        self.stats.hash_probes += 1;
        self.stats.decorrelated_probes += 1;
    }

    /// Build-row indices whose correlation keys are `sql_cmp`-equal to the
    /// probe keys, in build-scan order (the order the reference subquery
    /// would have produced those rows in).
    fn decorr_matches(&mut self, build: &DecorrBuild, keys: &[Value]) -> Vec<usize> {
        self.decorr_count_probe();
        let hits = build.index.probe(&keys[0]);
        if build.rw.key_cols.len() == 1 {
            return hits.as_slice().to_vec();
        }
        hits.iter().copied().filter(|&ri| build.tail_keys_match(ri, keys)).collect()
    }

    /// Semi-join probe: does any build row match every correlation key?
    fn decorr_has_match(&mut self, build: &DecorrBuild, keys: &[Value]) -> bool {
        self.decorr_count_probe();
        let hits = build.index.probe(&keys[0]);
        if build.rw.key_cols.len() == 1 {
            return !hits.is_empty();
        }
        hits.iter().copied().any(|ri| build.tail_keys_match(ri, keys))
    }

    /// `IN` semi-join probe: does any build row match every correlation key
    /// *and* carry a value `sql_cmp`-equal to `v`? Short-circuits on the
    /// first match without materializing the match set.
    fn decorr_in_match(&mut self, build: &DecorrBuild, keys: &[Value], v: &Value) -> bool {
        let vc = build.rw.value_col.expect("IN rewrite carries a value column");
        self.decorr_count_probe();
        build.index.probe(&keys[0]).iter().copied().any(|ri| {
            (build.rw.key_cols.len() == 1 || build.tail_keys_match(ri, keys))
                && matches!(v.sql_cmp(&build.rows[ri][vc]), Some(o) if o.is_eq())
        })
    }

    /// Group-join probe for a decorrelated correlated scalar aggregate:
    /// aggregates the build rows matching this outer row's keys and
    /// evaluates the rewritten projection over the aggregate values,
    /// memoizing per distinct (grouping-equal) probe key.
    ///
    /// NaN probe keys bypass the memo: a NaN `sql_cmp`-matches every number,
    /// so its match set is not shared with any grouping-equal key class.
    fn decorr_scalar(
        &mut self,
        build: &Rc<DecorrBuild>,
        query: &SelectStatement,
        scope: &Scope<'_>,
    ) -> SqlResult<Value> {
        let DecorrelatedKind::GroupJoin { aggregates, projection } = &build.rw.kind else {
            return Err(SqlError::Execution(
                "scalar decorrelation without a group-join rewrite".into(),
            ));
        };
        let keys = self.decorr_outer_keys(&build.rw, scope)?;
        let memoizable = !keys.iter().any(|k| matches!(k, Value::Real(r) if r.is_nan()));
        let qkey = query as *const SelectStatement as usize;
        if memoizable {
            if let Some(memo) = self.decorr_memos.get(&qkey) {
                if let Some(gid) = memo.keys.lookup(&keys) {
                    self.stats.decorrelated_memo_hits += 1;
                    return Ok(memo.results[gid].clone());
                }
            }
        }
        let matched = self.decorr_matches(build, &keys);
        let mut agg_vals = Vec::with_capacity(aggregates.len());
        for spec in aggregates {
            agg_vals.push(match spec.arg_col {
                // COUNT(*): every matched row counts, NULLs included.
                None => Value::Integer(matched.len() as i64),
                Some(c) => {
                    let vals: Vec<Value> = matched
                        .iter()
                        .map(|&ri| build.rows[ri][c].clone())
                        .filter(|v| !v.is_null())
                        .collect();
                    agg_over_values(spec.kind, spec.distinct, vals)
                }
            });
        }
        let cols: Vec<ColInfo> = (0..agg_vals.len())
            .map(|i| ColInfo { quals: Vec::new(), name: synthetic_agg_name(i) })
            .collect();
        let pscope = Scope { cols: &cols, row: &agg_vals, parent: None };
        let result = self.eval(projection, &pscope, None)?;
        if memoizable {
            let memo = self.decorr_memos.entry(qkey).or_default();
            let (gid, new) = memo.keys.get_or_insert(&keys);
            if new {
                memo.results.push(result.clone());
            }
            debug_assert_eq!(memo.results.len(), memo.keys.len());
            debug_assert!(gid < memo.results.len());
        }
        Ok(result)
    }

    pub(crate) fn run_select(
        &mut self,
        stmt: &SelectStatement,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<ResultSet> {
        // 1–2. FROM / JOIN / WHERE, by physical plan, by the legacy
        // nested-loop reference path, or by the vectorized pipeline (which
        // owns its whole statement flow and only calls back into
        // `run_select_tail` when it falls back to rows).
        let (rel, filtered) = match self.mode {
            PlanMode::Optimized => self.run_from_where_planned(stmt, outer)?,
            PlanMode::NestedLoop => self.run_from_where_legacy(stmt, outer)?,
            PlanMode::Columnar => return self.run_select_columnar(stmt, outer),
        };
        self.run_select_tail(stmt, &rel.cols, filtered, outer)
    }

    /// Stages 3–6 of `SELECT` execution — projection, grouping, `HAVING`,
    /// `DISTINCT`, `ORDER BY`, `LIMIT`/`OFFSET` — over an already-filtered
    /// row relation. Shared verbatim by all plan modes; the columnar
    /// pipeline routes through it whenever it falls back to rows, so
    /// fallback semantics are the row path's by construction.
    pub(crate) fn run_select_tail(
        &mut self,
        stmt: &SelectStatement,
        cols: &[ColInfo],
        filtered: Vec<Vec<Value>>,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<ResultSet> {
        let rel_cols = cols;
        let grouped = select_is_grouped(stmt);

        // 3. projection headers
        let (headers, proj_exprs) = expand_projections(&stmt.projections, rel_cols)?;

        let mut out_rows: Vec<Vec<Value>> = Vec::new();
        // Each output row keeps the *index* (into `filtered`) of the context
        // row used to evaluate ORDER BY expressions — `None` only for the
        // empty global aggregate group, which has no underlying row. Group
        // membership is likewise tracked as row indices; neither context nor
        // groups clone rows.
        let mut order_ctx: Vec<Option<usize>> = Vec::new();
        let mut order_groups: Vec<Vec<usize>> = Vec::new();
        let null_row: Vec<Value> = vec![Value::Null; rel_cols.len()];

        if grouped {
            let groups = self.group_rows(&filtered, &stmt.group_by, rel_cols, outer)?;
            for g in groups {
                let ctx = g.first().copied();
                let first: &[Value] = match ctx {
                    Some(i) => &filtered[i],
                    None => &null_row,
                };
                let scope = Scope { cols: rel_cols, row: first, parent: outer };
                let group = Group { all: &filtered, idx: &g };
                if let Some(having) = &stmt.having {
                    if !self.eval(having, &scope, Some(&group))?.to_truth().is_true() {
                        continue;
                    }
                }
                let mut out = Vec::with_capacity(proj_exprs.len());
                for e in &proj_exprs {
                    out.push(self.eval(e, &scope, Some(&group))?);
                }
                out_rows.push(out);
                order_ctx.push(ctx);
                order_groups.push(g);
            }
        } else {
            for (ri, row) in filtered.iter().enumerate() {
                let scope = Scope { cols: rel_cols, row, parent: outer };
                let mut out = Vec::with_capacity(proj_exprs.len());
                for e in &proj_exprs {
                    out.push(self.eval(e, &scope, None)?);
                }
                out_rows.push(out);
                order_ctx.push(Some(ri));
                // `order_groups` stays empty: ungrouped ORDER BY keys never
                // consult a group, so the old per-row singleton groups were
                // pure clone overhead.
            }
        }

        // 4. DISTINCT — hashed first-seen dedup (grouping_eq semantics).
        if stmt.distinct {
            let mut seen = GroupKeyMap::default();
            let mut kept_rows = Vec::new();
            let mut kept_ctx = Vec::new();
            let mut kept_groups = Vec::new();
            for (i, (row, ctx)) in out_rows.into_iter().zip(order_ctx).enumerate() {
                if seen.insert_if_new(&row) {
                    kept_rows.push(row);
                    kept_ctx.push(ctx);
                    if grouped {
                        kept_groups.push(std::mem::take(&mut order_groups[i]));
                    }
                }
            }
            out_rows = kept_rows;
            order_ctx = kept_ctx;
            order_groups = kept_groups;
        }

        // 5. ORDER BY — sort a permutation of row indices keyed by the
        // evaluated sort keys, then reorder in place; no row is cloned.
        if !stmt.order_by.is_empty() {
            let mut sort_keys: Vec<Vec<(Value, bool)>> = Vec::with_capacity(out_rows.len());
            for (i, row) in out_rows.iter().enumerate() {
                let ctx_row: &[Value] = match order_ctx[i] {
                    Some(r) => &filtered[r],
                    None => &null_row,
                };
                let group_idx: &[usize] = if grouped { &order_groups[i] } else { &[] };
                let mut keys = Vec::new();
                for item in &stmt.order_by {
                    let v = self.eval_order_key(
                        &item.expr,
                        row,
                        &headers,
                        &stmt.projections,
                        rel_cols,
                        ctx_row,
                        Group { all: &filtered, idx: group_idx },
                        grouped,
                        outer,
                    )?;
                    keys.push((v, item.descending));
                }
                sort_keys.push(keys);
            }
            let mut order: Vec<usize> = (0..out_rows.len()).collect();
            order.sort_by(|&a, &b| {
                for ((va, desc), (vb, _)) in sort_keys[a].iter().zip(sort_keys[b].iter()) {
                    let ord = va.total_cmp(vb);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            out_rows = order.into_iter().map(|i| std::mem::take(&mut out_rows[i])).collect();
        }

        // 6. LIMIT / OFFSET
        let offset = stmt.offset.unwrap_or(0) as usize;
        if offset > 0 {
            out_rows = out_rows.into_iter().skip(offset).collect();
        }
        if let Some(limit) = stmt.limit {
            out_rows.truncate(limit as usize);
        }

        Ok(ResultSet { columns: headers, rows: out_rows })
    }

    /// Legacy FROM/JOIN/WHERE: load everything, nested-loop join, filter
    /// after the fact. Kept verbatim as the semantic reference for the
    /// planner; `PlanMode::NestedLoop` runs queries through it.
    fn run_from_where_legacy(
        &mut self,
        stmt: &SelectStatement,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<(Rel, Vec<Vec<Value>>)> {
        let mut rel = match &stmt.from {
            Some(t) => self.load_table_ref_profiled(t, outer)?,
            None => Rel { cols: vec![], rows: vec![vec![]] },
        };
        for join in &stmt.joins {
            let right = self.load_table_ref_profiled(&join.table, outer)?;
            rel = self.join_profiled(rel, right, join, outer)?;
        }
        let mut keep = Vec::new();
        for row in std::mem::take(&mut rel.rows) {
            self.stats.rows_scanned += 1;
            let ok = match &stmt.where_clause {
                None => true,
                Some(pred) => {
                    let scope = Scope { cols: &rel.cols, row: &row, parent: outer };
                    self.eval(pred, &scope, None)?.to_truth().is_true()
                }
            };
            if ok {
                keep.push(row);
            }
        }
        Ok((rel, keep))
    }

    /// Planner-driven FROM/JOIN/WHERE: lowers the statement to a physical
    /// plan (or replays the cached plan when this statement has executed
    /// before — correlated subqueries hit this on every outer row after the
    /// first), executes the operator tree, then applies the post-join
    /// residue of the WHERE clause.
    fn run_from_where_planned(
        &mut self,
        stmt: &SelectStatement,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<(Rel, Vec<Vec<Value>>)> {
        let plan = self.plans.get_or_plan(self.db, stmt, &mut self.stats)?;
        let mut rel = match &plan.root {
            Some(node) => self.exec_plan_node(node, outer)?,
            None => Rel { cols: vec![], rows: vec![vec![]] },
        };
        let mut keep = Vec::new();
        for row in std::mem::take(&mut rel.rows) {
            self.stats.rows_scanned += 1;
            let mut ok = true;
            for pred in &plan.where_remnant {
                let scope = Scope { cols: &rel.cols, row: &row, parent: outer };
                if !self.eval(pred, &scope, None)?.to_truth().is_true() {
                    ok = false;
                    break;
                }
            }
            if ok {
                keep.push(row);
            }
        }
        Ok((rel, keep))
    }

    /// Executes one physical operator, producing a materialized relation.
    ///
    /// When a profiler is installed, the invocation is timed inclusively
    /// (children recurse back through this wrapper) and recorded under the
    /// node's address — the same key `EXPLAIN ANALYZE` uses to attach
    /// measurements to rendered plan lines.
    fn exec_plan_node(&mut self, node: &PlanNode, outer: Option<&Scope<'_>>) -> SqlResult<Rel> {
        if self.profiler.is_none() {
            return self.exec_plan_node_inner(node, outer);
        }
        let started = std::time::Instant::now();
        let result = self.exec_plan_node_inner(node, outer);
        let nanos = started.elapsed().as_nanos() as u64;
        let rows_out = result.as_ref().map(|rel| rel.rows.len() as u64).unwrap_or(0);
        if let Some(p) = self.profiler.as_mut() {
            p.record(
                node as *const PlanNode as usize,
                || crate::plan::node_label(node),
                rows_out,
                0,
                nanos,
            );
        }
        result
    }

    fn exec_plan_node_inner(
        &mut self,
        node: &PlanNode,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<Rel> {
        match node {
            PlanNode::SeqScan { table, quals, pushed, lookup } => {
                let t = self.db.table(table)?;
                let cols: Vec<ColInfo> = t
                    .schema
                    .columns
                    .iter()
                    .map(|c| ColInfo { quals: quals.clone(), name: c.name.clone() })
                    .collect();
                // Fetch candidates: PK index when planned, full scan otherwise.
                let candidates: Vec<Vec<Value>> = match lookup {
                    Some(l) => match t.pk_lookup(&l.value) {
                        Some(row_ids) => {
                            self.stats.index_lookups += 1;
                            self.stats.rows_scanned += row_ids.len() as u64;
                            row_ids.iter().map(|&i| t.rows()[i].clone()).collect()
                        }
                        None => {
                            self.stats.rows_scanned += t.rows().len() as u64;
                            t.rows().to_vec()
                        }
                    },
                    None => {
                        self.stats.rows_scanned += t.rows().len() as u64;
                        t.rows().to_vec()
                    }
                };
                let rows = self.filter_rows(candidates, &cols, pushed, outer)?;
                Ok(Rel { cols, rows })
            }
            PlanNode::SubqueryScan { query, alias, pushed } => {
                let rs = self.run_select(query, outer)?;
                let quals = vec![alias.to_ascii_lowercase()];
                let cols: Vec<ColInfo> = rs
                    .columns
                    .iter()
                    .map(|c| ColInfo { quals: quals.clone(), name: c.clone() })
                    .collect();
                let rows = self.filter_rows(rs.rows, &cols, pushed, outer)?;
                Ok(Rel { cols, rows })
            }
            PlanNode::HashJoin { left, right, kind, left_key, right_key, on } => {
                let left = self.exec_plan_node(left, outer)?;
                let right = self.exec_plan_node(right, outer)?;
                let mut cols = left.cols.clone();
                cols.extend(right.cols.clone());
                let right_width = right.cols.len();

                // Build phase over the right input's key column.
                let mut index = EqKeyMap::default();
                for (i, rrow) in right.rows.iter().enumerate() {
                    index.insert(&rrow[*right_key], i);
                }
                self.stats.hash_build_rows += right.rows.len() as u64;

                // Probe phase: each left row fetches its sql_cmp-equal
                // candidates (in right-scan order, so output ordering
                // matches the nested-loop reference), then re-checks the
                // full ON predicate.
                let mut rows = Vec::new();
                for lrow in &left.rows {
                    self.stats.hash_probes += 1;
                    let mut matched = false;
                    for &ridx in index.probe(&lrow[*left_key]).iter() {
                        let mut combined = lrow.clone();
                        combined.extend(right.rows[ridx].iter().cloned());
                        let ok = match on {
                            None => true,
                            Some(pred) => {
                                let scope = Scope { cols: &cols, row: &combined, parent: outer };
                                self.eval(pred, &scope, None)?.to_truth().is_true()
                            }
                        };
                        if ok {
                            matched = true;
                            rows.push(combined);
                        }
                    }
                    if !matched && *kind == JoinKind::Left {
                        let mut combined = lrow.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, right_width));
                        rows.push(combined);
                    }
                }
                Ok(Rel { cols, rows })
            }
            PlanNode::NestedLoopJoin { left, right, kind, on } => {
                let left = self.exec_plan_node(left, outer)?;
                let right = self.exec_plan_node(right, outer)?;
                let join = Join {
                    kind: *kind,
                    // The table reference is irrelevant to `join`; only the
                    // predicate and kind drive pairing.
                    table: TableRef::Named { table: String::new(), alias: None },
                    on: on.clone(),
                };
                self.join(left, right, &join, outer)
            }
        }
    }

    /// Keeps the rows for which every pushed predicate is true.
    fn filter_rows(
        &mut self,
        rows: Vec<Vec<Value>>,
        cols: &[ColInfo],
        pushed: &[Expr],
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<Vec<Vec<Value>>> {
        if pushed.is_empty() {
            return Ok(rows);
        }
        let mut keep = Vec::new();
        for row in rows {
            let mut ok = true;
            for pred in pushed {
                let scope = Scope { cols, row: &row, parent: outer };
                if !self.eval(pred, &scope, None)?.to_truth().is_true() {
                    ok = false;
                    break;
                }
            }
            if ok {
                keep.push(row);
            }
        }
        Ok(keep)
    }

    /// [`Self::load_table_ref`] with optional profiling, keyed by the AST
    /// reference's address. Nested-loop mode has no `PlanNode` tree, so its
    /// `EXPLAIN ANALYZE` attaches measurements to AST nodes instead.
    fn load_table_ref_profiled(
        &mut self,
        tref: &TableRef,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<Rel> {
        if self.profiler.is_none() {
            return self.load_table_ref(tref, outer);
        }
        let started = std::time::Instant::now();
        let result = self.load_table_ref(tref, outer);
        let nanos = started.elapsed().as_nanos() as u64;
        let rows_out = result.as_ref().map(|rel| rel.rows.len() as u64).unwrap_or(0);
        if let Some(p) = self.profiler.as_mut() {
            p.record(
                tref as *const TableRef as usize,
                || legacy_ref_label(tref),
                rows_out,
                0,
                nanos,
            );
        }
        result
    }

    /// [`Self::join`] with optional profiling, keyed by the `Join` AST
    /// node's address (see [`Self::load_table_ref_profiled`]).
    fn join_profiled(
        &mut self,
        left: Rel,
        right: Rel,
        join: &Join,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<Rel> {
        if self.profiler.is_none() {
            return self.join(left, right, join, outer);
        }
        let started = std::time::Instant::now();
        let result = self.join(left, right, join, outer);
        let nanos = started.elapsed().as_nanos() as u64;
        let rows_out = result.as_ref().map(|rel| rel.rows.len() as u64).unwrap_or(0);
        if let Some(p) = self.profiler.as_mut() {
            p.record(
                join as *const Join as usize,
                || format!("NestedLoopJoin ({:?})", join.kind),
                rows_out,
                0,
                nanos,
            );
        }
        result
    }

    /// Loads a named table or derived subquery into a relation.
    fn load_table_ref(&mut self, tref: &TableRef, outer: Option<&Scope<'_>>) -> SqlResult<Rel> {
        match tref {
            TableRef::Named { table, alias } => {
                let t = self.db.table(table)?;
                let mut quals = vec![table.to_ascii_lowercase()];
                if let Some(a) = alias {
                    quals.push(a.to_ascii_lowercase());
                }
                let cols = t
                    .schema
                    .columns
                    .iter()
                    .map(|c| ColInfo { quals: quals.clone(), name: c.name.clone() })
                    .collect();
                self.stats.rows_scanned += t.rows().len() as u64;
                Ok(Rel { cols, rows: t.rows().to_vec() })
            }
            TableRef::Derived { query, alias } => {
                let rs = self.run_select(query, outer)?;
                let quals = vec![alias.to_ascii_lowercase()];
                let cols = rs
                    .columns
                    .iter()
                    .map(|c| ColInfo { quals: quals.clone(), name: c.clone() })
                    .collect();
                Ok(Rel { cols, rows: rs.rows })
            }
        }
    }

    /// Nested-loop join of two relations.
    pub(crate) fn join(
        &mut self,
        left: Rel,
        right: Rel,
        join: &Join,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<Rel> {
        let mut cols = left.cols.clone();
        cols.extend(right.cols.clone());
        let right_width = right.cols.len();
        let mut rows = Vec::new();
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right.rows {
                self.stats.rows_scanned += 1;
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                let ok = match &join.on {
                    None => true,
                    Some(pred) => {
                        let scope = Scope { cols: &cols, row: &combined, parent: outer };
                        self.eval(pred, &scope, None)?.to_truth().is_true()
                    }
                };
                if ok {
                    matched = true;
                    rows.push(combined);
                }
            }
            if !matched && join.kind == JoinKind::Left {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                rows.push(combined);
            }
        }
        Ok(Rel { cols, rows })
    }

    /// Groups rows by the GROUP BY keys (or a single global group if none),
    /// returning row indices per group. Hashed via [`GroupKeyMap`]: O(rows)
    /// instead of the old linear scan over previously-seen keys, with
    /// identical group order (first-seen) and membership order (scan order).
    pub(crate) fn group_rows(
        &mut self,
        rows: &[Vec<Value>],
        group_by: &[Expr],
        cols: &[ColInfo],
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<Vec<Vec<usize>>> {
        if group_by.is_empty() {
            return Ok(vec![(0..rows.len()).collect()]);
        }
        let mut map = GroupKeyMap::default();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut key = Vec::with_capacity(group_by.len());
        for (ri, row) in rows.iter().enumerate() {
            let scope = Scope { cols, row, parent: outer };
            key.clear();
            for g in group_by {
                key.push(self.eval(g, &scope, None)?);
            }
            let (gid, new) = map.get_or_insert(&key);
            if new {
                groups.push(Vec::new());
            }
            groups[gid].push(ri);
        }
        Ok(groups)
    }

    /// Evaluates an ORDER BY key, resolving output aliases and ordinals first.
    #[allow(clippy::too_many_arguments)]
    fn eval_order_key(
        &mut self,
        expr: &Expr,
        out_row: &[Value],
        headers: &[String],
        projections: &[Projection],
        cols: &[ColInfo],
        ctx_row: &[Value],
        group: Group<'_>,
        grouped: bool,
        outer: Option<&Scope<'_>>,
    ) -> SqlResult<Value> {
        if let Some(pos) = order_key_output_column(expr, out_row.len(), headers, projections, cols)
        {
            return Ok(out_row[pos].clone());
        }
        let scope = Scope { cols, row: ctx_row, parent: outer };
        if grouped {
            self.eval(expr, &scope, Some(&group))
        } else {
            self.eval(expr, &scope, None)
        }
    }

    /// Resolves a column reference against the scope chain.
    fn resolve_column(
        &self,
        scope: &Scope<'_>,
        table: &Option<String>,
        column: &str,
    ) -> SqlResult<Value> {
        let mut current = Some(scope);
        while let Some(s) = current {
            let mut matches = Vec::new();
            for (i, c) in s.cols.iter().enumerate() {
                if !c.name.eq_ignore_ascii_case(column) {
                    continue;
                }
                match table {
                    Some(t) => {
                        if c.quals.contains(&t.to_ascii_lowercase()) {
                            matches.push(i);
                        }
                    }
                    None => matches.push(i),
                }
            }
            match matches.len() {
                1 => return Ok(s.row[matches[0]].clone()),
                0 => {
                    current = s.parent;
                }
                _ => {
                    // Ambiguity between columns that always hold the same value
                    // (join keys) is harmless; otherwise report it.
                    let first = &s.row[matches[0]];
                    if matches.iter().all(|&i| s.row[i].grouping_eq(first)) {
                        return Ok(first.clone());
                    }
                    return Err(SqlError::AmbiguousColumn(column.to_string()));
                }
            }
        }
        Err(SqlError::UnknownColumn(match table {
            Some(t) => format!("{t}.{column}"),
            None => column.to_string(),
        }))
    }

    /// Evaluates an expression.
    pub(crate) fn eval(
        &mut self,
        expr: &Expr,
        scope: &Scope<'_>,
        group: Option<&Group<'_>>,
    ) -> SqlResult<Value> {
        self.stats.evaluations += 1;
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { table, column } => self.resolve_column(scope, table, column),
            Expr::Compare { op, left, right } => {
                let l = self.eval(left, scope, group)?;
                let r = self.eval(right, scope, group)?;
                let truth = match l.sql_cmp(&r) {
                    None => Truth::Unknown,
                    Some(ord) => Truth::from_bool(match op {
                        CompareOp::Eq => ord.is_eq(),
                        CompareOp::NotEq => !ord.is_eq(),
                        CompareOp::Lt => ord.is_lt(),
                        CompareOp::LtEq => ord.is_le(),
                        CompareOp::Gt => ord.is_gt(),
                        CompareOp::GtEq => ord.is_ge(),
                    }),
                };
                Ok(truth.to_value())
            }
            Expr::Arith { op, left, right } => {
                let l = self.eval(left, scope, group)?;
                let r = self.eval(right, scope, group)?;
                l.arith(*op, &r)
            }
            Expr::Concat { left, right } => {
                let l = self.eval(left, scope, group)?;
                let r = self.eval(right, scope, group)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Text(format!("{}{}", l.render(), r.render())))
            }
            Expr::And(a, b) => {
                let l = self.eval(a, scope, group)?.to_truth();
                if l == Truth::False {
                    return Ok(Truth::False.to_value());
                }
                let r = self.eval(b, scope, group)?.to_truth();
                Ok(l.and(r).to_value())
            }
            Expr::Or(a, b) => {
                let l = self.eval(a, scope, group)?.to_truth();
                if l == Truth::True {
                    return Ok(Truth::True.to_value());
                }
                let r = self.eval(b, scope, group)?.to_truth();
                Ok(l.or(r).to_value())
            }
            Expr::Not(e) => Ok(self.eval(e, scope, group)?.to_truth().not().to_value()),
            Expr::Neg(e) => {
                let v = self.eval(e, scope, group)?;
                v.arith(crate::value::ArithOp::Mul, &Value::Integer(-1))
            }
            Expr::Like { negated, expr, pattern } => {
                let v = self.eval(expr, scope, group)?;
                let p = self.eval(pattern, scope, group)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let m = like_match(&p.render(), &v.render());
                Ok(Value::from_bool(m != *negated))
            }
            Expr::IsNull { negated, expr } => {
                let v = self.eval(expr, scope, group)?;
                Ok(Value::from_bool(v.is_null() != *negated))
            }
            Expr::InList { negated, expr, list } => {
                let v = self.eval(expr, scope, group)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                for item in list {
                    let iv = self.eval(item, scope, group)?;
                    if matches!(v.sql_cmp(&iv), Some(o) if o.is_eq()) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::from_bool(found != *negated))
            }
            Expr::InSubquery { negated, expr, query } => {
                let v = self.eval(expr, scope, group)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                // Correlated IN: semi-join probe against the decorrelated
                // build; the IN comparison runs against exactly the value
                // rows the reference subquery would have produced for this
                // outer row, so NULL and type-coercion semantics are the
                // eval site's own, unchanged.
                if let Some(build) = self.decorr_build(query, SubqueryPosition::In)? {
                    let keys = self.decorr_outer_keys(&build.rw, scope)?;
                    let found = self.decorr_in_match(&build, &keys, &v);
                    return Ok(Value::from_bool(found != *negated));
                }
                let rs = self.run_expr_subquery(query, scope)?;
                let mut found = false;
                for row in &rs.rows {
                    if let Some(cell) = row.first() {
                        if matches!(v.sql_cmp(cell), Some(o) if o.is_eq()) {
                            found = true;
                            break;
                        }
                    }
                }
                Ok(Value::from_bool(found != *negated))
            }
            Expr::Between { negated, expr, low, high } => {
                let v = self.eval(expr, scope, group)?;
                let lo = self.eval(low, scope, group)?;
                let hi = self.eval(high, scope, group)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let inside = a.is_ge() && b.is_le();
                        Ok(Value::from_bool(inside != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            Expr::Exists { negated, query } => {
                // Correlated [NOT] EXISTS: hash semi/anti-join probe — the
                // NOT stays here as the negation of the probe's verdict.
                if let Some(build) = self.decorr_build(query, SubqueryPosition::Exists)? {
                    let keys = self.decorr_outer_keys(&build.rw, scope)?;
                    let found = self.decorr_has_match(&build, &keys);
                    return Ok(Value::from_bool(found != *negated));
                }
                let rs = self.run_expr_subquery(query, scope)?;
                Ok(Value::from_bool(rs.rows.is_empty() == *negated))
            }
            Expr::ScalarSubquery(query) => {
                // Correlated scalar aggregate: group-join probe over the
                // pre-built side (aggregated lazily per distinct outer key).
                if let Some(build) = self.decorr_build(query, SubqueryPosition::Scalar)? {
                    return self.decorr_scalar(&build, query, scope);
                }
                let rs = self.run_expr_subquery(query, scope)?;
                if rs.rows.len() > 1 {
                    return Err(SqlError::Execution(
                        "scalar subquery returned more than one row".into(),
                    ));
                }
                Ok(rs.rows.first().and_then(|r| r.first().cloned()).unwrap_or(Value::Null))
            }
            Expr::Aggregate { kind, distinct, arg } => {
                // Columnar grouped execution computes aggregates with batch
                // kernels and installs the per-group results here, keyed by
                // node address; uncovered nodes fall through to the group
                // requirement below, so a collector gap errors loudly
                // instead of silently diverging.
                if let Some(overrides) = &self.agg_overrides {
                    if let Some(v) = overrides.get(&(expr as *const Expr as usize)) {
                        return Ok(v.clone());
                    }
                }
                let group = group.ok_or_else(|| {
                    SqlError::Execution(format!(
                        "aggregate {} used outside GROUP context",
                        kind.name()
                    ))
                })?;
                self.eval_aggregate(*kind, *distinct, arg.as_deref(), scope, group)
            }
            Expr::Function { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, scope, group)?);
                }
                eval_scalar_function(name, &vals)
            }
            Expr::Cast { expr, target } => {
                let v = self.eval(expr, scope, group)?;
                Ok(cast_value(&v, *target))
            }
            Expr::Case { operand, branches, else_branch } => {
                let op_val = match operand {
                    Some(o) => Some(self.eval(o, scope, group)?),
                    None => None,
                };
                for (when, then) in branches {
                    let hit = match &op_val {
                        Some(v) => {
                            let w = self.eval(when, scope, group)?;
                            matches!(v.sql_cmp(&w), Some(o) if o.is_eq())
                        }
                        None => self.eval(when, scope, group)?.to_truth().is_true(),
                    };
                    if hit {
                        return self.eval(then, scope, group);
                    }
                }
                match else_branch {
                    Some(e) => self.eval(e, scope, group),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    fn eval_aggregate(
        &mut self,
        kind: AggregateKind,
        distinct: bool,
        arg: Option<&Expr>,
        scope: &Scope<'_>,
        group: &Group<'_>,
    ) -> SqlResult<Value> {
        // COUNT(*) — no argument.
        if arg.is_none() {
            return match kind {
                AggregateKind::Count => Ok(Value::Integer(group.len() as i64)),
                other => Err(SqlError::Execution(format!("{} requires an argument", other.name()))),
            };
        }
        let arg = arg.unwrap();
        let mut vals: Vec<Value> = Vec::with_capacity(group.len());
        for row in group.rows() {
            self.stats.evaluations += 1;
            let inner_scope = Scope { cols: scope.cols, row, parent: scope.parent };
            let v = self.eval(arg, &inner_scope, None)?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        Ok(agg_over_values(kind, distinct, vals))
    }
}

/// Resolves an ORDER BY key that refers to an *output* column — an ordinal
/// (`ORDER BY 2`) or a projection alias — to its position in the output
/// row, or `None` when the key is an ordinary expression over the input
/// relation. Row-independent: it only consults headers, projections, and
/// the input layout, so the row tail and the columnar pipeline share one
/// resolution and can never disagree on what a key means.
pub(crate) fn order_key_output_column(
    expr: &Expr,
    out_width: usize,
    headers: &[String],
    projections: &[Projection],
    cols: &[ColInfo],
) -> Option<usize> {
    // Ordinal reference: ORDER BY 2
    if let Expr::Literal(Value::Integer(i)) = expr {
        let idx = *i as usize;
        if idx >= 1 && idx <= out_width {
            return Some(idx - 1);
        }
    }
    // Alias reference: ORDER BY n where n is an output alias
    if let Expr::Column { table: None, column } = expr {
        if let Some(pos) = headers.iter().position(|h| h.eq_ignore_ascii_case(column)) {
            // Only treat it as an alias if it is not also a base column, or
            // if it was explicitly aliased in the projection.
            let explicitly_aliased = projections.iter().any(|p| {
                matches!(p, Projection::Expr { alias: Some(a), .. } if a.eq_ignore_ascii_case(column))
            });
            let is_base_col = cols.iter().any(|c| c.name.eq_ignore_ascii_case(column));
            if explicitly_aliased || !is_base_col {
                return Some(pos);
            }
        }
    }
    None
}

/// True when a `SELECT` executes through the grouped pipeline: explicit
/// `GROUP BY`, or aggregates in the projections or `HAVING`. Shared by the
/// row tail and the columnar pipeline so the two can never disagree on
/// which pipeline a statement takes.
pub(crate) fn select_is_grouped(stmt: &SelectStatement) -> bool {
    !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate())
}

/// Operator label for a nested-loop-mode relation source, matching the
/// labels `EXPLAIN` renders for the legacy tree so `EXPLAIN ANALYZE`
/// measurements line up with the rendered plan.
pub(crate) fn legacy_ref_label(tref: &TableRef) -> String {
    match tref {
        TableRef::Named { table, .. } => format!("SeqScan {table}"),
        TableRef::Derived { alias, .. } => format!("SubqueryScan {alias}"),
    }
}

/// Combines already-evaluated, non-NULL argument values into an aggregate
/// result. Shared by grouped evaluation ([`Executor::eval_aggregate`]), the
/// decorrelated group-join probe, and the columnar grouped pipeline, so all
/// paths have identical DISTINCT, empty-set, and numeric-coercion semantics
/// by construction.
pub(crate) fn agg_over_values(kind: AggregateKind, distinct: bool, mut vals: Vec<Value>) -> Value {
    if distinct {
        // Hashed first-seen dedup, same order as the old linear scan.
        let mut seen = GroupKeyMap::default();
        vals.retain(|v| seen.insert_if_new(std::slice::from_ref(v)));
    }
    match kind {
        AggregateKind::Count => Value::Integer(vals.len() as i64),
        AggregateKind::Sum => {
            if vals.is_empty() {
                Value::Null
            } else {
                sum_values(&vals)
            }
        }
        AggregateKind::Avg => {
            if vals.is_empty() {
                Value::Null
            } else {
                let total = sum_values(&vals).as_f64().unwrap_or(0.0);
                Value::Real(total / vals.len() as f64)
            }
        }
        AggregateKind::Min => {
            vals.iter().cloned().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
        }
        AggregateKind::Max => {
            vals.iter().cloned().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
        }
    }
}

fn sum_values(vals: &[Value]) -> Value {
    let all_int = vals.iter().all(|v| matches!(v.coerce_numeric(), Value::Integer(_)));
    if all_int {
        // Wrapping, like `Value::arith` addition — a bare `.sum()` here
        // panics on overflow in debug builds but wraps in release, making
        // SUM(...) build-dependent near i64::MAX.
        Value::Integer(
            vals.iter()
                .filter_map(|v| v.coerce_numeric().as_i64())
                .fold(0i64, |acc, v| acc.wrapping_add(v)),
        )
    } else {
        Value::Real(vals.iter().filter_map(|v| v.coerce_numeric().as_f64()).sum())
    }
}

/// CAST semantics similar to SQLite.
pub(crate) fn cast_value(v: &Value, target: DataType) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    match target {
        DataType::Integer => match v.coerce_numeric() {
            Value::Integer(i) => Value::Integer(i),
            Value::Real(r) => Value::Integer(r as i64),
            _ => Value::Integer(0),
        },
        DataType::Real => match v.coerce_numeric() {
            Value::Integer(i) => Value::Real(i as f64),
            Value::Real(r) => Value::Real(r),
            _ => Value::Real(0.0),
        },
        DataType::Text | DataType::Date => Value::Text(v.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_select;
    use crate::schema::{ColumnDef, DataType};

    /// A small financial-style database used across executor tests.
    fn db() -> Database {
        let mut db = Database::new("financial");
        db.create_table(TableSchema::new(
            "account",
            vec![
                ColumnDef::new("account_id", DataType::Integer).primary_key(),
                ColumnDef::new("district_id", DataType::Integer),
                ColumnDef::new("frequency", DataType::Text),
            ],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "loan",
            vec![
                ColumnDef::new("loan_id", DataType::Integer).primary_key(),
                ColumnDef::new("account_id", DataType::Integer),
                ColumnDef::new("amount", DataType::Real),
                ColumnDef::new("status", DataType::Text),
            ],
        ))
        .unwrap();
        db.add_foreign_key(ForeignKey {
            from_table: "loan".into(),
            from_column: "account_id".into(),
            to_table: "account".into(),
            to_column: "account_id".into(),
        });
        let freqs =
            ["POPLATEK MESICNE", "POPLATEK TYDNE", "POPLATEK MESICNE", "POPLATEK PO OBRATU"];
        for i in 0..4i64 {
            db.insert(
                "account",
                vec![(i + 1).into(), ((i % 2) + 1).into(), freqs[i as usize].into()],
            )
            .unwrap();
        }
        let loans = [
            (1i64, 1i64, 150_000.0, "A"),
            (2, 1, 250_000.0, "B"),
            (3, 2, 90_000.0, "A"),
            (4, 3, 400_000.0, "C"),
            (5, 4, 50_000.0, "A"),
        ];
        for (id, acc, amt, st) in loans {
            db.insert("loan", vec![id.into(), acc.into(), amt.into(), st.into()]).unwrap();
        }
        db
    }

    fn run(sql: &str) -> ResultSet {
        execute(&db(), sql).unwrap()
    }

    #[test]
    fn simple_filter_and_projection() {
        let rs = run("SELECT loan_id FROM loan WHERE amount > 100000");
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.columns, vec!["loan_id"]);
    }

    #[test]
    fn wildcard_projection() {
        let rs = run("SELECT * FROM account");
        assert_eq!(rs.columns.len(), 3);
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn inner_join_with_aliases() {
        let rs = run("SELECT T1.account_id, T2.amount FROM account AS T1 \
             INNER JOIN loan AS T2 ON T1.account_id = T2.account_id \
             WHERE T1.frequency = 'POPLATEK TYDNE'");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Real(90_000.0));
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut d = db();
        d.insert("account", vec![5.into(), 1.into(), "POPLATEK TYDNE".into()]).unwrap();
        let rs = execute(
            &d,
            "SELECT account.account_id, loan.loan_id FROM account \
             LEFT JOIN loan ON account.account_id = loan.account_id \
             WHERE loan.loan_id IS NULL",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Integer(5));
    }

    #[test]
    fn group_by_count_and_having() {
        let rs = run(
            "SELECT account_id, COUNT(*) AS n FROM loan GROUP BY account_id HAVING COUNT(*) >= 2",
        );
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0], vec![Value::Integer(1), Value::Integer(2)]);
    }

    #[test]
    fn global_aggregates() {
        let rs =
            run("SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM loan");
        assert_eq!(rs.rows[0][0], Value::Integer(5));
        assert_eq!(rs.rows[0][1], Value::Real(940_000.0));
        assert_eq!(rs.rows[0][3], Value::Real(50_000.0));
        assert_eq!(rs.rows[0][4], Value::Real(400_000.0));
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT status) FROM loan");
        assert_eq!(rs.rows[0][0], Value::Integer(3));
    }

    #[test]
    fn order_by_and_limit() {
        let rs = run("SELECT loan_id FROM loan ORDER BY amount DESC LIMIT 2");
        assert_eq!(rs.rows, vec![vec![Value::Integer(4)], vec![Value::Integer(2)]]);
    }

    #[test]
    fn order_by_alias_and_ordinal() {
        let rs = run("SELECT account_id, SUM(amount) AS total FROM loan GROUP BY account_id ORDER BY total ASC LIMIT 1");
        assert_eq!(rs.rows[0][0], Value::Integer(4));
        let rs = run("SELECT loan_id, amount FROM loan ORDER BY 2 ASC LIMIT 1");
        assert_eq!(rs.rows[0][0], Value::Integer(5));
    }

    #[test]
    fn distinct_rows() {
        let rs = run("SELECT DISTINCT status FROM loan");
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn where_like_and_in() {
        let rs = run("SELECT account_id FROM account WHERE frequency LIKE 'POPLATEK M%'");
        assert_eq!(rs.len(), 2);
        let rs = run("SELECT loan_id FROM loan WHERE status IN ('B', 'C')");
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn in_subquery_and_exists() {
        let rs = run("SELECT loan_id FROM loan WHERE account_id IN \
             (SELECT account_id FROM account WHERE frequency = 'POPLATEK MESICNE')");
        assert_eq!(rs.len(), 3);
        let rs = run(
            "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.account_id = account.account_id AND loan.amount > 300000)",
        );
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Integer(3));
    }

    #[test]
    fn scalar_subquery_comparison() {
        let rs = run("SELECT loan_id FROM loan WHERE amount > (SELECT AVG(amount) FROM loan)");
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn case_expression() {
        let rs = run(
            "SELECT loan_id, CASE WHEN amount >= 200000 THEN 'big' ELSE 'small' END AS size FROM loan ORDER BY loan_id",
        );
        assert_eq!(rs.rows[0][1], Value::text("small"));
        assert_eq!(rs.rows[1][1], Value::text("big"));
    }

    #[test]
    fn cast_division_produces_ratio() {
        let rs = run("SELECT CAST(SUM(amount) AS REAL) / COUNT(*) FROM loan");
        assert_eq!(rs.rows[0][0], Value::Real(188_000.0));
    }

    #[test]
    fn derived_table() {
        let rs = run("SELECT t.n FROM (SELECT COUNT(*) AS n FROM loan) AS t");
        assert_eq!(rs.rows[0][0], Value::Integer(5));
    }

    #[test]
    fn comma_join_with_where() {
        let rs = run("SELECT loan.loan_id FROM loan, account \
             WHERE loan.account_id = account.account_id AND account.district_id = 1");
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn unknown_column_is_error() {
        let err = execute(&db(), "SELECT nonexistent FROM loan").unwrap_err();
        assert!(matches!(err, SqlError::UnknownColumn(_)));
    }

    #[test]
    fn unknown_table_is_error() {
        let err = execute(&db(), "SELECT x FROM nonexistent").unwrap_err();
        assert!(matches!(err, SqlError::UnknownTable(_)));
    }

    #[test]
    fn stats_grow_with_joins() {
        let d = db();
        let (_, simple) = execute_with_stats(&d, "SELECT * FROM loan").unwrap();
        let (_, join) = execute_with_stats(
            &d,
            "SELECT * FROM loan INNER JOIN account ON loan.account_id = account.account_id",
        )
        .unwrap();
        assert!(join.cost() > simple.cost());
    }

    #[test]
    fn create_and_insert_via_sql() {
        let mut d = Database::new("scratch");
        execute_statement(&mut d, "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)").unwrap();
        execute_statement(&mut d, "INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')").unwrap();
        let rs = execute(&d, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(rs.rows[0][0], Value::Integer(2));
    }

    #[test]
    fn empty_group_count_zero() {
        let rs = run("SELECT COUNT(*) FROM loan WHERE amount > 10000000");
        assert_eq!(rs.rows[0][0], Value::Integer(0));
    }

    #[test]
    fn case_sensitive_text_equality_matters() {
        // The BIRD case-sensitivity defect: 'a' vs 'A' must not match.
        let rs = run("SELECT COUNT(*) FROM loan WHERE status = 'a'");
        assert_eq!(rs.rows[0][0], Value::Integer(0));
        let rs = run("SELECT COUNT(*) FROM loan WHERE status = 'A'");
        assert_eq!(rs.rows[0][0], Value::Integer(3));
    }

    /// Runs a query in both plan modes and asserts identical rows (order
    /// included), returning the shared result.
    fn run_both_modes(d: &Database, sql: &str) -> ResultSet {
        let (opt, _) = execute_with_stats_mode(d, sql, PlanMode::Optimized).unwrap();
        let (legacy, _) = execute_with_stats_mode(d, sql, PlanMode::NestedLoop).unwrap();
        assert_eq!(opt.rows, legacy.rows, "mode divergence for: {sql}");
        opt
    }

    #[test]
    fn null_join_keys_never_hash_match() {
        let mut d = db();
        // Two rows with NULL join keys on each side: NULL = NULL is unknown,
        // so neither inner nor hash semantics may pair them.
        d.insert("account", vec![10.into(), Value::Null, "X".into()]).unwrap();
        d.insert("loan", vec![10.into(), Value::Null, 1.0.into(), "A".into()]).unwrap();
        let rs = run_both_modes(
            &d,
            "SELECT loan.loan_id FROM loan \
             INNER JOIN account ON loan.account_id = account.account_id",
        );
        assert_eq!(rs.len(), 5, "only the five non-NULL pairings survive");
        assert!(rs.rows.iter().all(|r| r[0] != Value::Integer(10)));

        // In a LEFT JOIN the NULL-keyed left row must survive, NULL-padded.
        let rs = run_both_modes(
            &d,
            "SELECT loan.loan_id, account.account_id FROM loan \
             LEFT JOIN account ON loan.account_id = account.account_id \
             WHERE account.account_id IS NULL",
        );
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Integer(10));
    }

    #[test]
    fn quoted_identifiers_flow_through_planner() {
        let d = db();
        // Backtick, double-quote, and bracket quoting must all plan and
        // execute; the equi-key extraction sees the unquoted names.
        for sql in [
            "SELECT `loan`.`loan_id` FROM loan INNER JOIN account \
             ON `loan`.`account_id` = `account`.`account_id` WHERE `account`.`district_id` = 1",
            "SELECT \"loan\".\"loan_id\" FROM loan INNER JOIN account \
             ON \"loan\".\"account_id\" = \"account\".\"account_id\" WHERE \"account\".\"district_id\" = 1",
            "SELECT [loan].[loan_id] FROM loan INNER JOIN account \
             ON [loan].[account_id] = [account].[account_id] WHERE [account].[district_id] = 1",
        ] {
            let rs = run_both_modes(&d, sql);
            assert_eq!(rs.len(), 3, "{sql}");
        }
        let stmt = crate::parser::parse_select(
            "SELECT `loan`.`loan_id` FROM loan INNER JOIN account \
             ON `loan`.`account_id` = `account`.`account_id`",
        )
        .unwrap();
        let plan = plan_select(&d, &stmt).unwrap();
        assert!(plan.uses_hash_join(), "quoted equi-join still hashes:\n{}", plan.explain());
    }

    #[test]
    fn nested_subqueries_execute_through_planner() {
        let d = db();
        // The IN-subquery contains its own join; in Optimized mode every
        // nesting level plans independently.
        let rs = run_both_modes(
            &d,
            "SELECT loan_id FROM loan WHERE account_id IN \
             (SELECT T1.account_id FROM account AS T1 \
              INNER JOIN loan AS T2 ON T1.account_id = T2.account_id \
              WHERE T2.status = 'A')",
        );
        assert_eq!(rs.len(), 4);
        // Correlated EXISTS over a joined subquery; the outer table needs a
        // distinct alias because the inner join re-binds `account`.
        let rs = run_both_modes(
            &d,
            "SELECT outer_a.account_id FROM account AS outer_a WHERE EXISTS \
             (SELECT 1 FROM loan INNER JOIN account AS a2 \
              ON loan.account_id = a2.account_id \
              WHERE loan.account_id = outer_a.account_id AND loan.amount > 300000)",
        );
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Integer(3));
        // Derived table wrapping a join, joined again on the outside.
        let rs = run_both_modes(
            &d,
            "SELECT t.district_id, COUNT(*) FROM \
             (SELECT account.district_id AS district_id, loan.amount AS amount \
              FROM account INNER JOIN loan ON account.account_id = loan.account_id) AS t \
             WHERE t.amount > 50000 GROUP BY t.district_id ORDER BY t.district_id",
        );
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn numeric_text_join_keys_match_numbers() {
        // A text FK against an integer PK: sql_cmp compares them
        // numerically, and the hash join must agree.
        let mut d = Database::new("mixed");
        d.create_table(TableSchema::new(
            "parent",
            vec![ColumnDef::new("id", DataType::Integer).primary_key()],
        ))
        .unwrap();
        d.create_table(TableSchema::new(
            "child",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("parent_id", DataType::Text),
            ],
        ))
        .unwrap();
        for i in 1..=3i64 {
            d.insert("parent", vec![i.into()]).unwrap();
        }
        d.insert("child", vec![1.into(), "2".into()]).unwrap();
        d.insert("child", vec![2.into(), "2.0".into()]).unwrap();
        d.insert("child", vec![3.into(), "nope".into()]).unwrap();
        let rs = run_both_modes(
            &d,
            "SELECT child.id FROM child INNER JOIN parent ON child.parent_id = parent.id",
        );
        assert_eq!(rs.len(), 2, "both numeric-looking texts join to parent 2");
    }

    #[test]
    fn limit_without_order_by_is_mode_stable() {
        // Without ORDER BY the row order is plan-defined; hash joins must
        // preserve nested-loop emission order so LIMIT slices identically.
        let d = db();
        run_both_modes(
            &d,
            "SELECT loan.loan_id, account.frequency FROM loan \
             INNER JOIN account ON loan.account_id = account.account_id LIMIT 3",
        );
        run_both_modes(
            &d,
            "SELECT loan.loan_id FROM loan, account \
             WHERE loan.account_id = account.account_id LIMIT 2 OFFSET 1",
        );
    }

    #[test]
    fn hash_join_reports_cheaper_cost_than_nested_loop() {
        let d = db();
        let sql = "SELECT loan.loan_id FROM loan \
                   INNER JOIN account ON loan.account_id = account.account_id";
        let (rs_opt, opt) = execute_with_stats_mode(&d, sql, PlanMode::Optimized).unwrap();
        let (rs_leg, legacy) = execute_with_stats_mode(&d, sql, PlanMode::NestedLoop).unwrap();
        assert_eq!(rs_opt.rows, rs_leg.rows);
        assert!(opt.hash_probes > 0 && opt.hash_build_rows > 0);
        assert_eq!(legacy.hash_probes, 0);
        assert!(
            opt.cost() < legacy.cost(),
            "hash join must cost less: {} vs {}",
            opt.cost(),
            legacy.cost()
        );
    }

    #[test]
    fn uncorrelated_subquery_result_is_cached_across_outer_rows() {
        let d = db();
        // The scalar AVG subquery has no outer references: it must execute
        // once (one miss) and replay from the result cache for the remaining
        // outer rows, in both plan modes, with identical rows.
        let sql = "SELECT loan_id FROM loan WHERE amount > (SELECT AVG(amount) FROM loan)";
        let (rs, stats) = execute_with_stats_mode(&d, sql, PlanMode::Optimized).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(stats.subquery_result_misses, 1, "one real execution");
        assert_eq!(
            stats.subquery_result_hits, 4,
            "five loans probe the subquery; four replay the cached result"
        );
        // The nested-loop reference mode must keep re-executing per outer
        // row (same rows, no cache counters) so conformance comparisons can
        // catch result-cache defects.
        let (legacy, legacy_stats) =
            execute_with_stats_mode(&d, sql, PlanMode::NestedLoop).unwrap();
        assert_eq!(legacy.rows, rs.rows);
        assert_eq!(legacy_stats.subquery_result_misses, 0);
        assert_eq!(legacy_stats.subquery_result_hits, 0);
        // The cached path must do strictly less work than re-executing the
        // subquery per row used to: the subquery scans 5 loan rows, so a
        // per-row strategy would scan >= 25 rows for it alone.
        let (_, stats) = execute_with_stats(&d, sql).unwrap();
        assert!(
            stats.rows_scanned < 25,
            "subquery re-execution should be gone, scanned {}",
            stats.rows_scanned
        );
    }

    #[test]
    fn correlated_exists_decorrelates_into_a_semi_join() {
        let d = db();
        let sql = "SELECT account_id FROM account WHERE EXISTS \
             (SELECT 1 FROM loan WHERE loan.account_id = account.account_id AND loan.amount > 300000)";
        let (rs, stats) = execute_with_stats(&d, sql).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(stats.subquery_result_hits, 0, "correlated results must never be reused");
        assert_eq!(stats.subquery_result_misses, 0, "correlated subqueries are not cacheable");
        // The subquery is rewritten into a hash semi-join: the build side
        // executes once and every outer row becomes a probe, so the plan
        // cache sees no per-row replays at all.
        assert_eq!(stats.decorrelated_subqueries, 1, "one build side materialized");
        assert_eq!(stats.decorrelated_probes, 4, "one probe per outer account row");
        assert_eq!(stats.plan_cache_hits, 0, "no per-row re-execution remains");

        // The per-outer-row cached-plan path is still there behind
        // `without_decorrelation`, producing identical rows the old way.
        let stmt = crate::parser::parse_select(sql).unwrap();
        let (legacy_rs, legacy_stats, _) = execute_select_with_plan_cache(
            &d,
            &stmt,
            PlanMode::Optimized,
            PlanCache::without_decorrelation(),
        )
        .unwrap();
        assert_eq!(legacy_rs.rows, rs.rows);
        assert_eq!(legacy_stats.decorrelated_subqueries, 0);
        assert!(legacy_stats.plan_cache_hits >= 3, "per-row path replays the cached plan");
    }

    #[test]
    fn join_on_outer_reference_is_correlated_and_never_cached() {
        // Regression: the first join's ON references `c.y`. A relation
        // aliased `cc` joined *later* also answers to the base name `c`,
        // so the reference resolves in the full FROM layout — but at
        // runtime each ON executes with only its left-deep prefix in
        // scope, so `c.y` falls through to the *outer* row and the
        // subquery is correlated. It must re-execute per outer row, not
        // replay a cached first-row result.
        let mut d = Database::new("onref");
        d.create_table(TableSchema::new(
            "c",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("y", DataType::Integer),
            ],
        ))
        .unwrap();
        d.create_table(TableSchema::new(
            "a",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("x", DataType::Integer),
            ],
        ))
        .unwrap();
        d.create_table(TableSchema::new(
            "b",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("x", DataType::Integer),
            ],
        ))
        .unwrap();
        d.insert("a", vec![1.into(), 10.into()]).unwrap();
        d.insert("b", vec![1.into(), 100.into()]).unwrap();
        d.insert("c", vec![1.into(), 100.into()]).unwrap();
        d.insert("c", vec![2.into(), 999.into()]).unwrap();
        let sql = "SELECT id FROM c WHERE EXISTS \
                   (SELECT 1 FROM a INNER JOIN b ON b.x = c.y \
                    INNER JOIN c AS cc ON cc.id = a.id)";
        let rs = run_both_modes(&d, sql);
        assert_eq!(rs.rows, vec![vec![Value::Integer(1)]], "only c.y = 100 satisfies the ON");
        let (_, stats) = execute_with_stats(&d, sql).unwrap();
        assert_eq!(stats.subquery_result_hits, 0, "a correlated subquery must never be cached");
        assert_eq!(stats.subquery_result_misses, 0);
    }

    #[test]
    fn uncorrelated_in_subquery_caches_and_matches_both_modes() {
        let d = db();
        let sql = "SELECT loan_id FROM loan WHERE account_id IN \
             (SELECT account_id FROM account WHERE frequency = 'POPLATEK MESICNE')";
        let rs = run_both_modes(&d, sql);
        assert_eq!(rs.len(), 3);
        let (_, stats) = execute_with_stats(&d, sql).unwrap();
        assert_eq!(stats.subquery_result_misses, 1);
        assert_eq!(stats.subquery_result_hits, 4);
    }

    #[test]
    fn pk_point_lookup_reports_index_stats() {
        let mut d = Database::new("big");
        d.create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("v", DataType::Integer),
            ],
        ))
        .unwrap();
        for i in 0..500i64 {
            d.insert("t", vec![i.into(), (i * 2).into()]).unwrap();
        }
        let sql = "SELECT v FROM t WHERE id = 250";
        let (rs, opt) = execute_with_stats_mode(&d, sql, PlanMode::Optimized).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Integer(500)]]);
        assert_eq!(opt.index_lookups, 1);
        assert!(opt.rows_scanned < 10, "index lookup avoids the full scan");
        let (_, legacy) = execute_with_stats_mode(&d, sql, PlanMode::NestedLoop).unwrap();
        assert!(legacy.rows_scanned >= 500);
        assert!(opt.cost() < legacy.cost());
    }

    /// Regression (found by the columnar differential proptests): SUM over
    /// integers near `i64::MAX` used a bare `.sum()`, which panics on
    /// overflow in debug builds and wraps in release — so the same query
    /// gave build-dependent behavior. SUM now wraps, matching `+`'s
    /// wrapping semantics in `Value::arith`, in every execution mode.
    #[test]
    fn integer_sum_wraps_instead_of_panicking() {
        let mut d = Database::new("edge");
        d.create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("v", DataType::Integer),
            ],
        ))
        .unwrap();
        d.insert("t", vec![0i64.into(), i64::MAX.into()]).unwrap();
        d.insert("t", vec![1i64.into(), (i64::MAX - 1).into()]).unwrap();
        let want = i64::MAX.wrapping_add(i64::MAX - 1);
        for mode in [PlanMode::Optimized, PlanMode::Columnar, PlanMode::NestedLoop] {
            let (rs, _) = execute_with_stats_mode(&d, "SELECT SUM(v) FROM t", mode).unwrap();
            assert_eq!(rs.rows, vec![vec![Value::Integer(want)]], "{mode:?}");
        }
    }
}
