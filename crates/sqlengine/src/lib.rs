//! # seed-sqlengine
//!
//! An in-memory relational SQL engine used as the database substrate for the
//! SEED (ICDE 2025) reproduction. It plays the role SQLite plays in the
//! original paper: the BIRD/Spider-style databases are stored here, SEED's
//! sample-SQL probes run here, and the execution-accuracy / valid-efficiency
//! metrics compare results produced here.
//!
//! The engine supports the SQL subset that BIRD-style gold queries and
//! text-to-SQL systems emit: `SELECT` with joins (inner/left/comma), `WHERE`
//! with three-valued logic, `LIKE`, `IN` (lists and subqueries), `BETWEEN`,
//! `EXISTS`, scalar subqueries, `GROUP BY`/`HAVING` with the five standard
//! aggregates, `ORDER BY` (expressions, aliases, ordinals), `LIMIT`/`OFFSET`,
//! `CASE`, `CAST`, scalar functions, plus `CREATE TABLE` and `INSERT` for
//! building databases from SQL scripts.
//!
//! ```
//! use seed_sqlengine::{Database, execute, execute_statement};
//!
//! let mut db = Database::new("demo");
//! execute_statement(&mut db, "CREATE TABLE client (id INTEGER PRIMARY KEY, gender TEXT)").unwrap();
//! execute_statement(&mut db, "INSERT INTO client VALUES (1, 'F'), (2, 'M'), (3, 'F')").unwrap();
//! let rs = execute(&db, "SELECT COUNT(*) FROM client WHERE gender = 'F'").unwrap();
//! assert_eq!(rs.rows[0][0], seed_sqlengine::Value::Integer(2));
//! ```

pub mod ast;
pub mod error;
pub mod exec;
pub mod functions;
pub mod parser;
pub mod result;
pub mod schema;
pub mod storage;
pub mod token;
pub mod value;

pub use error::{SqlError, SqlResult};
pub use exec::{execute, execute_select, execute_select_with_stats, execute_statement, execute_with_stats};
pub use parser::{parse_select, parse_statement};
pub use result::{ExecStats, ResultSet};
pub use schema::{ColumnDef, DataType, DatabaseSchema, ForeignKey, TableSchema};
pub use storage::{Database, Row, Table};
pub use value::{like_match, ArithOp, Truth, Value};
