//! # seed-sqlengine
//!
//! An in-memory relational SQL engine used as the database substrate for the
//! SEED (ICDE 2025) reproduction. It plays the role SQLite plays in the
//! original paper: the BIRD/Spider-style databases are stored here, SEED's
//! sample-SQL probes run here, and the execution-accuracy / valid-efficiency
//! metrics compare results produced here.
//!
//! The engine supports the SQL subset that BIRD-style gold queries and
//! text-to-SQL systems emit: `SELECT` with joins (inner/left/comma), `WHERE`
//! with three-valued logic, `LIKE`, `IN` (lists and subqueries), `BETWEEN`,
//! `EXISTS`, scalar subqueries, `GROUP BY`/`HAVING` with the five standard
//! aggregates, `ORDER BY` (expressions, aliases, ordinals), `LIMIT`/`OFFSET`,
//! `CASE`, `CAST`, scalar functions, plus `CREATE TABLE` and `INSERT` for
//! building databases from SQL scripts.
//!
//! ## Execution architecture
//!
//! Queries execute in two layers, with three selectable execution modes
//! ([`plan::PlanMode`]): `Optimized` (the row-at-a-time default),
//! `Columnar` (vectorized batches over the same physical plans — the
//! serving default, see [`plan::PlanMode::serving`]), and `NestedLoop`
//! (the original cross-product executor, kept as the semantic oracle).
//!
//! 1. **Physical planning** ([`plan`]): each `SELECT`'s FROM/JOIN/WHERE
//!    section is lowered into a left-deep tree of physical operators —
//!    [`plan::PlanNode::SeqScan`] (with predicate pushdown and optional
//!    primary-key point lookup against the hash index every table maintains
//!    in [`storage`]), [`plan::PlanNode::SubqueryScan`],
//!    [`plan::PlanNode::HashJoin`] for equi-joins (including comma joins
//!    whose equality lives in `WHERE`), and
//!    [`plan::PlanNode::NestedLoopJoin`] as the fallback for everything
//!    else. Hash candidates are re-checked against the full `ON` predicate,
//!    and probes return matches in scan order, so optimized plans reproduce
//!    the legacy executor's rows *and their order* exactly.
//! 2. **Shared pipeline** ([`exec`]): projection, grouping, `HAVING`,
//!    `DISTINCT`, `ORDER BY`, and `LIMIT`/`OFFSET` run identically for
//!    every plan. `GROUP BY`, `DISTINCT`, and `DISTINCT` aggregates are
//!    hashed through [`storage::GroupKeyMap`] — a multi-column grouping-key
//!    map with exact [`value::Value::grouping_eq`] semantics (NULL groups
//!    with NULL, integers and reals cross-match, text is byte-exact, NaN
//!    falls back to a linear side path) — so grouping is O(rows) instead of
//!    O(rows × groups). Groups are tracked as row indices into the filtered
//!    relation; no full-row clones.
//!
//! Each top-level statement executes with a [`plan::PlanCache`]: subqueries
//! (scalar, `IN`, `EXISTS`, derived tables) are planned once, with hit/miss
//! counts reported in [`ExecStats`]. Uncorrelated expression-position
//! subqueries execute once per statement and replay from a result cache;
//! correlated ones are *decorrelated* where provably sound
//! ([`mod@decorrelate`]) — rewritten into hash semi/anti/group joins whose
//! build side runs once and whose probes are O(1) per outer row — and fall
//! back to per-outer-row re-execution of the cached plan otherwise.
//!
//! [`plan::PlanMode::Columnar`] executes the *same* physical plans over
//! [`chunk::DataChunk`] batches of typed [`chunk::ColumnArray`]s
//! (fixed [`chunk::BATCH_SIZE`], null bitmaps): scans slice tables into
//! chunks, filters run batch predicate kernels, hash joins build and probe
//! over column slices, and grouping hashes batch-evaluated key columns
//! through the same [`storage::GroupKeyMap`]. Anything the batch layer
//! cannot express (subqueries, outer references, nested aggregates) falls
//! back to the shared row machinery per statement — counted in
//! [`ExecStats::columnar_fallbacks`] — so results stay row-identical to the
//! other modes by construction (see the [`mod@columnar`] docs for the exact
//! semantics contract).
//!
//! [`plan::PlanMode::NestedLoop`] preserves the original cross-product
//! executor as a semantic reference (it never caches or decorrelates);
//! `tests/engine_conformance.rs` asserts three-way row-identical results
//! (`Optimized` vs `Columnar` vs `NestedLoop`) over every gold query of
//! both synthetic corpora, and
//! `crates/sqlengine/tests/decorrelation_props.rs` /
//! `crates/sqlengine/tests/columnar_props.rs` do the same over randomized
//! correlated and NULL/NaN/cross-typed workloads.
//!
//! ## Cost model
//!
//! [`ExecStats`] is the deterministic stand-in for wall-clock time in the
//! VES metric: scanned rows and expression evaluations as before, plus
//! hash-build rows, hash probes, and index lookups, each weighted cheaper
//! than a scanned row (see the `ExecStats` weight constants). VES compares
//! per-question cost ratios, so the scale is free but determinism and
//! "less work ⇒ lower cost" are contractual.
//!
//! ```
//! use seed_sqlengine::{Database, execute, execute_statement};
//!
//! let mut db = Database::new("demo");
//! execute_statement(&mut db, "CREATE TABLE client (id INTEGER PRIMARY KEY, gender TEXT)").unwrap();
//! execute_statement(&mut db, "INSERT INTO client VALUES (1, 'F'), (2, 'M'), (3, 'F')").unwrap();
//! let rs = execute(&db, "SELECT COUNT(*) FROM client WHERE gender = 'F'").unwrap();
//! assert_eq!(rs.rows[0][0], seed_sqlengine::Value::Integer(2));
//! ```

pub mod ast;
pub mod chunk;
pub mod columnar;
pub mod decorrelate;
pub mod error;
pub mod exec;
pub mod explain;
pub mod functions;
pub mod mutate;
pub mod parser;
pub mod plan;
pub mod prepared;
pub mod profile;
pub mod result;
pub mod schema;
pub mod storage;
pub mod token;
pub mod value;

pub use chunk::{ArrayBuilder, ColumnArray, DataChunk, NullBitmap, BATCH_SIZE};
pub use decorrelate::{decorrelate, DecorrelatedKind, DecorrelatedSubquery, SubqueryPosition};
pub use error::{SqlError, SqlResult};
pub use exec::{
    execute, execute_select, execute_select_profiled, execute_select_with_plan_cache,
    execute_select_with_stats, execute_select_with_stats_mode, execute_statement,
    execute_with_stats, execute_with_stats_mode,
};
pub use explain::{explain_analyze_text, explain_sql, explain_statement, explain_text};
pub use mutate::{
    commit_statement, commit_statement_rebuild, is_write_statement, statement_dependencies,
    CommitOutcome, MutationKind, PlannedMutation,
};
pub use parser::{parse_select, parse_statement};
pub use plan::{
    is_uncorrelated, node_label, plan_select, PhysicalPlan, PlanCache, PlanMode, PlanNode,
};
pub use prepared::{PreparedStatement, SharedPlanCache};
pub use profile::{format_nanos, OpProfile, QueryProfile};
pub use result::{ExecStats, ResultSet};
pub use schema::{ColumnDef, DataType, DatabaseSchema, ForeignKey, TableSchema};
pub use storage::{ColumnTextIndex, Database, EqKeyMap, GroupKeyMap, ProbeHits, Row, Table};
pub use value::{like_match, ArithOp, Truth, Value};
