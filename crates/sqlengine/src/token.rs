//! SQL tokenizer.

use crate::error::{SqlError, SqlResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognised later, case-insensitively).
    Ident(String),
    /// Quoted identifier (backticks, double quotes, or square brackets).
    QuotedIdent(String),
    /// String literal (single quotes).
    String(String),
    /// Integer literal.
    Integer(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operator symbol.
    Symbol(Symbol),
}

/// Operator and punctuation symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    LParen,
    RParen,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
    Semicolon,
}

impl Token {
    /// Returns the keyword form (uppercased identifier) if this is a bare identifier.
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }

    /// True if the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        self.keyword().is_some_and(|k| k == kw.to_ascii_uppercase())
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(sql: &str) -> SqlResult<Vec<Token>> {
    let chars: Vec<char> = sql.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = read_quoted(&chars, i, '\'')?;
                out.push(Token::String(s));
                i = next;
            }
            '`' => {
                let (s, next) = read_quoted(&chars, i, '`')?;
                out.push(Token::QuotedIdent(s));
                i = next;
            }
            '"' => {
                let (s, next) = read_quoted(&chars, i, '"')?;
                out.push(Token::QuotedIdent(s));
                i = next;
            }
            '[' => {
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != ']' {
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(SqlError::Lex("unterminated [identifier]".into()));
                }
                out.push(Token::QuotedIdent(s));
                i = j + 1;
            }
            '0'..='9' => {
                let mut j = i;
                let mut has_dot = false;
                while j < chars.len()
                    && (chars[j].is_ascii_digit() || (chars[j] == '.' && !has_dot))
                {
                    if chars[j] == '.' {
                        has_dot = true;
                    }
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                if has_dot {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| SqlError::Lex(format!("bad number {text}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| SqlError::Lex(format!("bad number {text}")))?;
                    out.push(Token::Integer(v));
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Token::Ident(chars[i..j].iter().collect()));
                i = j;
            }
            ',' => {
                out.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Symbol::Dot));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Symbol::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Symbol::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Symbol::Slash));
                i += 1;
            }
            '%' => {
                out.push(Token::Symbol(Symbol::Percent));
                i += 1;
            }
            '(' => {
                out.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Symbol::Semicolon));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Symbol::Eq));
                i += 1;
                if i < chars.len() && chars[i] == '=' {
                    i += 1; // tolerate '=='
                }
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    out.push(Token::Symbol(Symbol::NotEq));
                    i += 2;
                } else {
                    return Err(SqlError::Lex("unexpected '!'".into()));
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    out.push(Token::Symbol(Symbol::LtEq));
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    out.push(Token::Symbol(Symbol::NotEq));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Symbol::Lt));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    out.push(Token::Symbol(Symbol::GtEq));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            '|' => {
                if i + 1 < chars.len() && chars[i + 1] == '|' {
                    out.push(Token::Symbol(Symbol::Concat));
                    i += 2;
                } else {
                    return Err(SqlError::Lex("unexpected '|'".into()));
                }
            }
            other => return Err(SqlError::Lex(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

/// Reads a quoted run starting at `start` (which must hold the quote char),
/// handling doubled quotes as escapes. Returns the contents and the index
/// just past the closing quote.
fn read_quoted(chars: &[char], start: usize, quote: char) -> SqlResult<(String, usize)> {
    let mut s = String::new();
    let mut i = start + 1;
    loop {
        if i >= chars.len() {
            return Err(SqlError::Lex(format!("unterminated {quote} literal")));
        }
        if chars[i] == quote {
            if i + 1 < chars.len() && chars[i + 1] == quote {
                s.push(quote);
                i += 2;
                continue;
            }
            return Ok((s, i + 1));
        }
        s.push(chars[i]);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks = tokenize("SELECT name, age FROM client WHERE age >= 21").unwrap();
        assert!(toks[0].is_keyword("select"));
        assert!(toks.contains(&Token::Symbol(Symbol::GtEq)));
        assert!(toks.contains(&Token::Integer(21)));
    }

    #[test]
    fn tokenizes_quoted_identifiers_and_strings() {
        let toks =
            tokenize("SELECT `Free Meal Count (K-12)` FROM \"frpm\" WHERE x = 'it''s'").unwrap();
        assert_eq!(toks[1], Token::QuotedIdent("Free Meal Count (K-12)".into()));
        assert_eq!(toks[3], Token::QuotedIdent("frpm".into()));
        assert_eq!(*toks.last().unwrap(), Token::String("it's".into()));
    }

    #[test]
    fn tokenizes_numbers() {
        let toks = tokenize("SELECT 3.5, 42").unwrap();
        assert!(toks.contains(&Token::Float(3.5)));
        assert!(toks.contains(&Token::Integer(42)));
    }

    #[test]
    fn tokenizes_operators() {
        let toks = tokenize("a <> b AND c != d OR e || f").unwrap();
        let n = toks.iter().filter(|t| **t == Token::Symbol(Symbol::NotEq)).count();
        assert_eq!(n, 2);
        assert!(toks.contains(&Token::Symbol(Symbol::Concat)));
    }

    #[test]
    fn skips_line_comments() {
        let toks = tokenize("SELECT 1 -- comment here\n, 2").unwrap();
        assert!(toks.contains(&Token::Integer(2)));
        assert!(!toks.iter().any(|t| t.is_keyword("comment")));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn bracket_identifiers() {
        let toks = tokenize("SELECT [Percent (%) Eligible Free (K-12)] FROM frpm").unwrap();
        assert_eq!(toks[1], Token::QuotedIdent("Percent (%) Eligible Free (K-12)".into()));
    }
}
