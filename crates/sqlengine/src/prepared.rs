//! Prepared statements and the process-wide shared plan cache.
//!
//! [`crate::plan::PlanCache`] shares plans *within* one statement execution
//! (a correlated subquery plans once, runs per outer row). This module
//! extends the same idea *across* statements, sessions, and threads: a
//! [`SharedPlanCache`] pins each SQL string's parsed AST for its own
//! lifetime, so the per-execution plan cache — which keys plans by statement
//! address — can be snapshotted out, used, and folded back safely. Repeated
//! statements (gold queries re-executed for every system/setting of an eval
//! run, hot queries in a serving batch) parse and plan exactly once per
//! process instead of once per execution. Decorrelation rewrites ride along:
//! the analysis result and the rewritten build statement's plan live in the
//! same per-entry [`PlanCache`], so a decorrelated statement is rewritten
//! and its build side planned once per process too.
//!
//! ## Concurrency model
//!
//! The cache is `Sync` and lock-cheap by construction:
//!
//! * the statement registry is **sharded**: entries are striped across
//!   [`SharedPlanCache::shards`] independent [`parking_lot::RwLock`]ed maps
//!   by the hash of `(database name, SQL text)`, so concurrent workers
//!   looking up *different* statements never touch the same lock, and
//!   lookups of already-prepared statements take a per-stripe read lock
//!   only;
//! * each entry's accumulated [`PlanCache`] sits behind its own
//!   [`parking_lot::Mutex`] and is *cloned out* (a few `Arc` refcount bumps)
//!   for the duration of execution, so no lock is held while a query runs;
//! * executions racing on a fresh statement may both plan it; planning is
//!   deterministic, so the last merge simply reconfirms the same plans.
//!
//! ## Address-key soundness
//!
//! `PlanCache` keys plans by `&SelectStatement` address. That is sound here
//! because every address handed to the cache points either into an entry's
//! `Box`-pinned AST (owned by the entry, never moved, never evicted) or into
//! an AST owned by an already-cached plan (`SubqueryScan` nodes), and plans
//! are `Arc`-kept by the entry's cache itself. Entries are only dropped when
//! the whole `SharedPlanCache` drops, taking the plans with them.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::ast::SelectStatement;
use crate::error::SqlResult;
use crate::exec::{execute_select_profiled, execute_select_with_plan_cache};
use crate::plan::{PlanCache, PlanMode};
use crate::profile::QueryProfile;
use crate::result::{ExecStats, ResultSet};
use crate::storage::Database;

/// A parsed SELECT pinned behind a stable heap address, plus the plans its
/// executions have accumulated so far.
#[derive(Debug)]
pub struct PreparedStatement {
    sql: String,
    /// `Box` keeps the AST's address stable for the life of the entry — the
    /// invariant the address-keyed [`PlanCache`] depends on.
    stmt: Box<SelectStatement>,
    /// Every base table the statement can read (lowercased, sorted,
    /// deduplicated; subqueries at any depth included), computed once at
    /// parse. This is the statement's data-dependency set — what
    /// version-keyed caches fingerprint via
    /// [`Database::dependency_fingerprint`].
    referenced_tables: Vec<String>,
    plans: Mutex<PlanCache>,
}

impl PreparedStatement {
    /// Parses `sql` into a pinned statement with an empty plan cache.
    pub fn parse(sql: &str) -> SqlResult<Self> {
        let stmt = crate::parser::parse_select(sql)?;
        Ok(PreparedStatement {
            sql: sql.to_string(),
            referenced_tables: stmt.all_referenced_tables(),
            stmt: Box::new(stmt),
            plans: Mutex::new(PlanCache::default()),
        })
    }

    /// The original SQL text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Every base table the statement can read — lowercased, sorted,
    /// deduplicated, subqueries at any depth included. Computed once at
    /// parse, so serving layers can fingerprint a statement's data
    /// dependencies per execution without re-walking the AST.
    pub fn referenced_tables(&self) -> &[String] {
        &self.referenced_tables
    }

    /// The parsed statement.
    pub fn statement(&self) -> &SelectStatement {
        &self.stmt
    }

    /// Number of distinct statements (top-level plus subqueries) planned by
    /// executions of this prepared statement so far.
    pub fn plans_cached(&self) -> usize {
        self.plans.lock().len()
    }

    /// Executes against `db`, reusing every plan earlier executions of this
    /// prepared statement produced and contributing any newly planned
    /// subqueries back. Plan reuse shows up as `plan_cache_hits` in the
    /// returned [`ExecStats`]; the work counters (and therefore the VES cost)
    /// are identical to a fresh execution.
    ///
    /// Plans are shared across *modes* as well as executions:
    /// [`PlanMode::Optimized`] and [`PlanMode::Columnar`] execute the same
    /// physical plans (columnar only changes how a plan's operators move
    /// data), so a statement planned under one replays as a cache hit under
    /// the other. Only [`PlanMode::NestedLoop`] bypasses the cache entirely.
    pub fn execute(&self, db: &Database, mode: PlanMode) -> SqlResult<(ResultSet, ExecStats)> {
        let snapshot = self.plans.lock().clone();
        let (rs, stats, updated) = execute_select_with_plan_cache(db, &self.stmt, mode, snapshot)?;
        self.plans.lock().merge(&updated);
        Ok((rs, stats))
    }

    /// [`Self::execute`] plus a per-operator wall-clock [`QueryProfile`].
    /// Result rows and stats are bit-identical to an unprofiled execution;
    /// the serve layer runs every canonical execution through this so the
    /// slow-query log always has a profile to record.
    pub fn execute_profiled(
        &self,
        db: &Database,
        mode: PlanMode,
    ) -> SqlResult<(ResultSet, ExecStats, QueryProfile)> {
        let snapshot = self.plans.lock().clone();
        let (rs, stats, updated, profile) =
            execute_select_profiled(db, &self.stmt, mode, snapshot)?;
        self.plans.lock().merge(&updated);
        Ok((rs, stats, profile))
    }

    /// Static `EXPLAIN` rendering of this statement under `mode` (plans but
    /// never executes; see [`crate::explain::explain_text`]).
    pub fn explain(&self, db: &Database, mode: PlanMode) -> SqlResult<String> {
        crate::explain::explain_text(db, &self.stmt, mode)
    }
}

/// Stripe count used by [`SharedPlanCache::new`]. Sized so a serving worker
/// pool (default 4, commonly 8) sees more stripes than workers — two
/// workers preparing *different* statements virtually never contend.
const DEFAULT_PLAN_SHARDS: usize = 16;

/// One lock stripe of the registry. The map is two-level — database name,
/// then SQL text — so the hot lookup path can probe with borrowed `&str`s
/// and never allocates a key; only first-sight insertion owns strings.
type PlanShard = RwLock<HashMap<String, HashMap<String, Arc<PreparedStatement>>>>;

/// A process-wide plan cache: SQL text in, pinned AST + accumulated plans
/// out, shared safely across threads. The registry is striped across
/// independent locks (see [`SharedPlanCache::with_shards`]) so concurrent
/// preparation of distinct statements is contention-free.
///
/// Keys include the database *name* so one cache can serve a whole benchmark
/// (plans depend on schema metadata, which differs per database). Callers
/// must not feed two different databases with the same name through one
/// cache — within a `Benchmark` or a `seed-serve` server that cannot happen.
#[derive(Debug)]
pub struct SharedPlanCache {
    shards: Box<[PlanShard]>,
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache::with_shards(DEFAULT_PLAN_SHARDS)
    }
}

impl SharedPlanCache {
    /// Creates an empty shared cache with the default stripe count.
    pub fn new() -> Self {
        SharedPlanCache::default()
    }

    /// Creates an empty shared cache striped across at least `shards`
    /// independent locks (rounded up to a power of two, minimum 1). Callers
    /// that know their worker count pass it here so no two workers are
    /// forced onto the same stripe by construction.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        SharedPlanCache { shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    /// Number of stripes the registry is spread across.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, db_name: &str, sql: &str) -> &PlanShard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        db_name.hash(&mut hasher);
        sql.hash(&mut hasher);
        // The stripe count is a power of two, so masking is a uniform map.
        &self.shards[(hasher.finish() as usize) & (self.shards.len() - 1)]
    }

    /// Returns the pinned prepared statement for `sql` against the named
    /// database, parsing it on first sight. Parse errors are not cached (a
    /// malformed statement re-reports its error each time, like the
    /// unprepared path).
    pub fn prepare(&self, db_name: &str, sql: &str) -> SqlResult<Arc<PreparedStatement>> {
        let shard = self.shard_for(db_name, sql);
        // Hot path: borrowed-key probe, no allocation per served statement.
        if let Some(entry) = shard.read().get(db_name).and_then(|stmts| stmts.get(sql)) {
            return Ok(Arc::clone(entry));
        }
        let prepared = Arc::new(PreparedStatement::parse(sql)?);
        let mut entries = shard.write();
        // Another thread may have prepared the same statement between the
        // read and write locks; keep the first entry so its accumulated
        // plans are not discarded.
        let entry = entries
            .entry(db_name.to_string())
            .or_default()
            .entry(sql.to_string())
            .or_insert(prepared);
        Ok(Arc::clone(entry))
    }

    /// Parses (or reuses) and executes `sql` against `db`, sharing plans
    /// with every earlier and concurrent execution of the same statement.
    pub fn execute(
        &self,
        db: &Database,
        sql: &str,
        mode: PlanMode,
    ) -> SqlResult<(ResultSet, ExecStats)> {
        self.prepare(db.name(), sql)?.execute(db, mode)
    }

    /// [`Self::execute`] plus the per-operator wall-clock profile (see
    /// [`PreparedStatement::execute_profiled`]).
    pub fn execute_profiled(
        &self,
        db: &Database,
        sql: &str,
        mode: PlanMode,
    ) -> SqlResult<(ResultSet, ExecStats, QueryProfile)> {
        self.prepare(db.name(), sql)?.execute_profiled(db, mode)
    }

    /// Number of prepared statements currently pinned, across all stripes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().values().map(HashMap::len).sum::<usize>()).sum()
    }

    /// True when nothing has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().values().all(HashMap::is_empty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, TableSchema};
    use crate::value::Value;

    fn db() -> Database {
        let mut d = Database::new("prep");
        d.create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("grp", DataType::Integer),
                ColumnDef::new("v", DataType::Real),
            ],
        ))
        .unwrap();
        for i in 0..40i64 {
            d.insert("t", vec![i.into(), (i % 4).into(), ((i * 7) as f64).into()]).unwrap();
        }
        d
    }

    #[test]
    fn repeated_statements_plan_once_across_executions() {
        let d = db();
        let cache = SharedPlanCache::new();
        let sql = "SELECT grp, COUNT(*) FROM t WHERE v > (SELECT AVG(v) FROM t) GROUP BY grp";
        let (rs1, stats1) = cache.execute(&d, sql, PlanMode::Optimized).unwrap();
        let (rs2, stats2) = cache.execute(&d, sql, PlanMode::Optimized).unwrap();
        assert_eq!(rs1.rows, rs2.rows, "prepared re-execution is byte-identical");
        assert!(stats1.plan_cache_misses >= 2, "first run plans top level + subquery");
        assert_eq!(stats2.plan_cache_misses, 0, "second run plans nothing");
        assert!(stats2.plan_cache_hits >= 2, "second run replays every plan");
        // Work counters (the VES cost basis) are identical either way.
        assert_eq!(stats1.rows_scanned, stats2.rows_scanned);
        assert_eq!(stats1.evaluations, stats2.evaluations);
        assert_eq!(stats1.cost(), stats2.cost());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn decorrelated_statements_share_rewrite_and_build_plan_across_executions() {
        let d = db();
        let cache = SharedPlanCache::new();
        // Genuinely correlated scalar aggregate: decorrelates into a group
        // join whose build statement is Arc-pinned by the plan cache.
        let sql = "SELECT id FROM t AS outer_t \
                   WHERE v > (SELECT AVG(i.v) FROM t AS i WHERE i.grp = outer_t.grp)";
        let (rs1, stats1) = cache.execute(&d, sql, PlanMode::Optimized).unwrap();
        let (rs2, stats2) = cache.execute(&d, sql, PlanMode::Optimized).unwrap();
        assert_eq!(rs1.rows, rs2.rows);
        assert_eq!(stats1.decorrelated_subqueries, 1, "rewrite engages on first execution");
        assert_eq!(stats2.decorrelated_subqueries, 1, "build re-executes per execution");
        assert!(stats1.plan_cache_misses >= 2, "first run plans outer + build side");
        assert_eq!(
            stats2.plan_cache_misses, 0,
            "second run replays the outer and build plans from the shared cache"
        );
        assert_eq!(
            stats1.decorrelated_probes + stats1.decorrelated_memo_hits,
            stats2.decorrelated_probes + stats2.decorrelated_memo_hits,
            "probe traffic is deterministic across shared executions"
        );
        // Row identity against the never-decorrelating reference mode.
        let (legacy, _) = cache.execute(&d, sql, PlanMode::NestedLoop).unwrap();
        assert_eq!(legacy.rows, rs1.rows);
    }

    #[test]
    fn repeated_prepared_executions_do_not_grow_the_pin_set() {
        // Regression: merge used to pin every already-known entry and
        // re-absorb the snapshot's own pinned list, doubling the pin set on
        // every execute/merge cycle (2^n blowup made the 30th execution of
        // a hot prepared statement unaffordable). Serial re-execution folds
        // the same Arcs back and must pin nothing.
        let d = db();
        let cache = SharedPlanCache::new();
        let sql = "SELECT id FROM t AS outer_t \
                   WHERE v > (SELECT AVG(i.v) FROM t AS i WHERE i.grp = outer_t.grp)";
        let prepared = cache.prepare(d.name(), sql).unwrap();
        let (first, _) = prepared.execute(&d, PlanMode::Optimized).unwrap();
        for _ in 0..50 {
            let (rs, _) = prepared.execute(&d, PlanMode::Optimized).unwrap();
            assert_eq!(rs.rows, first.rows);
        }
        let plans = prepared.plans.lock();
        assert_eq!(plans.pinned_len(), 0, "same-Arc merges must not pin");
        assert_eq!(plans.len(), 2, "outer statement + decorrelated build side");
    }

    #[test]
    fn columnar_executions_share_plans_with_optimized_and_match_rows() {
        let d = db();
        let cache = SharedPlanCache::new();
        let sql = "SELECT grp, COUNT(*), SUM(v) FROM t WHERE v > 10 GROUP BY grp ORDER BY grp";
        // Plan under the row mode, replay under the columnar serving mode:
        // the physical plans are shared, only data movement differs.
        let (opt, opt_stats) = cache.execute(&d, sql, PlanMode::Optimized).unwrap();
        let (col, col_stats) = cache.execute(&d, sql, PlanMode::Columnar).unwrap();
        assert_eq!(opt.rows, col.rows, "modes must be row-identical");
        assert_eq!(opt.columns, col.columns);
        assert!(opt_stats.plan_cache_misses >= 1, "first execution plans");
        assert_eq!(col_stats.plan_cache_misses, 0, "columnar replays the cached plan");
        assert!(col_stats.plan_cache_hits >= 1);
        assert!(col_stats.batches_built >= 1, "columnar execution moves batches");
        assert_eq!(opt_stats.batches_built, 0, "row execution does not");
        // Re-running columnar is stat-deterministic.
        let (_, again) = cache.execute(&d, sql, PlanMode::Columnar).unwrap();
        assert_eq!(again, col_stats);
    }

    #[test]
    fn statements_are_keyed_per_database_name() {
        let d = db();
        let mut d2 = Database::new("other");
        d2.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("id", DataType::Integer).primary_key()],
        ))
        .unwrap();
        d2.insert("t", vec![1.into()]).unwrap();
        let cache = SharedPlanCache::new();
        let (a, _) = cache.execute(&d, "SELECT COUNT(*) FROM t", PlanMode::Optimized).unwrap();
        let (b, _) = cache.execute(&d2, "SELECT COUNT(*) FROM t", PlanMode::Optimized).unwrap();
        assert_eq!(a.rows[0][0], Value::Integer(40));
        assert_eq!(b.rows[0][0], Value::Integer(1));
        assert_eq!(cache.len(), 2, "same SQL against different databases pins two entries");
    }

    #[test]
    fn striped_registry_counts_entries_across_all_shards() {
        let d = db();
        let cache = SharedPlanCache::with_shards(4);
        assert_eq!(cache.shards(), 4);
        // 32 distinct statements: with 4 stripes and a uniform hash they
        // cannot all land on one stripe, yet len() must still see them all.
        for i in 0..32 {
            cache.prepare(d.name(), &format!("SELECT id FROM t WHERE id > {i}")).unwrap();
        }
        assert_eq!(cache.len(), 32);
        assert!(!cache.is_empty());
        // Re-preparing is idempotent per stripe.
        cache.prepare(d.name(), "SELECT id FROM t WHERE id > 0").unwrap();
        assert_eq!(cache.len(), 32);
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(SharedPlanCache::with_shards(0).shards(), 1);
        assert_eq!(SharedPlanCache::with_shards(3).shards(), 4);
        assert_eq!(SharedPlanCache::with_shards(16).shards(), 16);
    }

    #[test]
    fn parse_errors_surface_and_are_not_cached() {
        let d = db();
        let cache = SharedPlanCache::new();
        assert!(cache.execute(&d, "SELEKT nope", PlanMode::Optimized).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_executions_share_one_entry() {
        let d = std::sync::Arc::new(db());
        let cache = std::sync::Arc::new(SharedPlanCache::new());
        let sql = "SELECT grp, SUM(v) FROM t GROUP BY grp ORDER BY grp";
        let (reference, _) = cache.execute(&d, sql, PlanMode::Optimized).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = std::sync::Arc::clone(&d);
            let cache = std::sync::Arc::clone(&cache);
            let sql = sql.to_string();
            handles.push(std::thread::spawn(move || {
                let (rs, _) = cache.execute(&d, &sql, PlanMode::Optimized).unwrap();
                rs.rows
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), reference.rows);
        }
        assert_eq!(cache.len(), 1);
    }
}
