//! Dynamically-typed SQL values with SQLite-like coercion semantics.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{SqlError, SqlResult};

/// A single SQL value.
///
/// The engine follows SQLite's storage-class model: integers and reals are
/// distinct but compare numerically against each other, text compares
/// lexicographically, and `NULL` participates in three-valued logic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Builds a text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Returns `true` if the value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    ///
    /// Text is *not* implicitly parsed: `'12'` is text, matching the way the
    /// BIRD databases store coded values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view of the value, if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// SQL truthiness: `NULL` is unknown, numbers are true when non-zero,
    /// text is true when non-empty and not `"0"`.
    pub fn to_truth(&self) -> Truth {
        match self {
            Value::Null => Truth::Unknown,
            Value::Integer(i) => Truth::from_bool(*i != 0),
            Value::Real(r) => Truth::from_bool(*r != 0.0),
            Value::Text(s) => Truth::from_bool(!s.is_empty() && s != "0"),
        }
    }

    /// Builds a value from a boolean (SQL integers 0/1).
    pub fn from_bool(b: bool) -> Self {
        Value::Integer(if b { 1 } else { 0 })
    }

    /// Coerces the value into a number for arithmetic, following SQLite's
    /// permissive CAST behaviour (text parses its numeric prefix, NULL stays
    /// NULL).
    pub fn coerce_numeric(&self) -> Value {
        match self {
            Value::Null => Value::Null,
            Value::Integer(i) => Value::Integer(*i),
            Value::Real(r) => Value::Real(*r),
            Value::Text(s) => parse_numeric_prefix(s),
        }
    }

    /// Compares two values with SQL semantics, returning `None` when either
    /// side is `NULL`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Text(a), b) => {
                // Mixed text/number: try numeric comparison if the text parses.
                match a.parse::<f64>() {
                    Ok(x) => b.as_f64().map(|y| cmp_f64(x, y)),
                    Err(_) => Some(Ordering::Greater), // text sorts after numbers (SQLite)
                }
            }
            (a, Value::Text(b)) => match b.parse::<f64>() {
                Ok(y) => a.as_f64().map(|x| cmp_f64(x, y)),
                Err(_) => Some(Ordering::Less),
            },
            (a, b) => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                Some(cmp_f64(x, y))
            }
        }
    }

    /// Total ordering used for `ORDER BY` and `GROUP BY`: `NULL` sorts first,
    /// then numbers, then text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Integer(_) | Value::Real(_) => 1,
                Value::Text(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                cmp_f64(a.as_f64().unwrap(), b.as_f64().unwrap())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality as used by `GROUP BY`/`DISTINCT`/result comparison: NULLs are
    /// equal to each other, numbers compare numerically, text exactly.
    pub fn grouping_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Renders the value the way SQLite's shell would.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Integer(i) => i.to_string(),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.abs() < 1e15 {
                    format!("{:.1}", r)
                } else {
                    format!("{r}")
                }
            }
            Value::Text(s) => s.clone(),
        }
    }

    /// Arithmetic helper shared by the expression evaluator.
    pub fn arith(&self, op: ArithOp, other: &Value) -> SqlResult<Value> {
        let a = self.coerce_numeric();
        let b = other.coerce_numeric();
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        // Integer arithmetic stays integral except for division.
        if let (Value::Integer(x), Value::Integer(y)) = (&a, &b) {
            return Ok(match op {
                ArithOp::Add => Value::Integer(x.wrapping_add(*y)),
                ArithOp::Sub => Value::Integer(x.wrapping_sub(*y)),
                ArithOp::Mul => Value::Integer(x.wrapping_mul(*y)),
                ArithOp::Div => {
                    if *y == 0 {
                        Value::Null
                    } else {
                        // SQLite's `/` on integers is integer division; BIRD gold SQL
                        // frequently relies on CAST(... AS REAL) to avoid it.
                        Value::Integer(x / y)
                    }
                }
                ArithOp::Mod => {
                    if *y == 0 {
                        Value::Null
                    } else {
                        Value::Integer(x % y)
                    }
                }
            });
        }
        let x = a.as_f64().ok_or_else(|| SqlError::Type("non-numeric operand".into()))?;
        let y = b.as_f64().ok_or_else(|| SqlError::Type("non-numeric operand".into()))?;
        Ok(match op {
            ArithOp::Add => Value::Real(x + y),
            ArithOp::Sub => Value::Real(x - y),
            ArithOp::Mul => Value::Real(x * y),
            ArithOp::Div => {
                if y == 0.0 {
                    Value::Null
                } else {
                    Value::Real(x / y)
                }
            }
            ArithOp::Mod => {
                if y == 0.0 {
                    Value::Null
                } else {
                    Value::Real(x % y)
                }
            }
        })
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.grouping_eq(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::from_bool(v)
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Three-valued SQL logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    pub fn from_bool(b: bool) -> Self {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    pub fn to_value(self) -> Value {
        match self {
            Truth::True => Value::Integer(1),
            Truth::False => Value::Integer(0),
            Truth::Unknown => Value::Null,
        }
    }

    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// `WHERE` keeps only rows whose predicate is definitely true.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }
}

/// Float comparison with `sql_cmp`'s NaN quirk: `partial_cmp`'s `None`
/// (a NaN operand) collapses to `Equal`, so NaN compares equal to every
/// number. Shared with the columnar batch kernels ([`crate::columnar`]),
/// which must reproduce this bit for bit.
pub(crate) fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

/// Parses the longest numeric prefix of a string, like SQLite's CAST to NUMERIC.
fn parse_numeric_prefix(s: &str) -> Value {
    let t = s.trim();
    if let Ok(i) = t.parse::<i64>() {
        return Value::Integer(i);
    }
    if let Ok(r) = t.parse::<f64>() {
        return Value::Real(r);
    }
    // Longest prefix that parses as a float.
    let mut end = 0usize;
    let bytes = t.as_bytes();
    let mut seen_digit = false;
    let mut seen_dot = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'-' | b'+' if i == 0 => end = i + 1,
            b'0'..=b'9' => {
                seen_digit = true;
                end = i + 1;
            }
            b'.' if !seen_dot => {
                seen_dot = true;
                end = i + 1;
            }
            _ => break,
        }
    }
    if !seen_digit {
        return Value::Integer(0);
    }
    let prefix = &t[..end];
    if let Ok(i) = prefix.parse::<i64>() {
        Value::Integer(i)
    } else if let Ok(r) = prefix.parse::<f64>() {
        Value::Real(r)
    } else {
        Value::Integer(0)
    }
}

/// SQL `LIKE` matching with `%` and `_` wildcards, case-insensitive like SQLite's
/// default for ASCII.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[char], t: &[char]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            '%' => {
                // Match zero or more characters.
                if inner(&p[1..], t) {
                    return true;
                }
                (1..=t.len()).any(|k| inner(&p[1..], &t[k..]))
            }
            '_' => !t.is_empty() && inner(&p[1..], &t[1..]),
            c => {
                !t.is_empty() && c.to_lowercase().eq(t[0].to_lowercase()) && inner(&p[1..], &t[1..])
            }
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    inner(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_in_comparison() {
        assert_eq!(Value::Null.sql_cmp(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn numeric_comparison_across_types() {
        assert_eq!(Value::Integer(2).sql_cmp(&Value::Real(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Real(1.5).sql_cmp(&Value::Integer(2)), Some(Ordering::Less));
    }

    #[test]
    fn text_comparison_is_lexicographic() {
        assert_eq!(Value::text("Alameda").sql_cmp(&Value::text("Fresno")), Some(Ordering::Less));
        assert_eq!(
            Value::text("restricted").sql_cmp(&Value::text("Restricted")),
            Some(Ordering::Greater),
            "comparison is case sensitive, which is what makes BIRD case errors matter"
        );
    }

    #[test]
    fn truth_table_three_valued() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn arithmetic_integer_division_truncates() {
        let v = Value::Integer(7).arith(ArithOp::Div, &Value::Integer(2)).unwrap();
        assert_eq!(v, Value::Integer(3));
        let v = Value::Real(7.0).arith(ArithOp::Div, &Value::Integer(2)).unwrap();
        assert_eq!(v, Value::Real(3.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let v = Value::Integer(7).arith(ArithOp::Div, &Value::Integer(0)).unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn arithmetic_with_null_is_null() {
        let v = Value::Null.arith(ArithOp::Add, &Value::Integer(2)).unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn text_numeric_prefix_coercion() {
        assert_eq!(Value::text("12abc").coerce_numeric(), Value::Integer(12));
        assert_eq!(Value::text("3.5x").coerce_numeric(), Value::Real(3.5));
        assert_eq!(Value::text("abc").coerce_numeric(), Value::Integer(0));
    }

    #[test]
    fn like_matching_wildcards() {
        assert!(like_match("%Fremont%", "Fremont Unified"));
        assert!(like_match("POPLATEK%", "POPLATEK TYDNE"));
        assert!(like_match("_at", "cat"));
        assert!(!like_match("_at", "cart"));
        assert!(like_match("fremont", "FREMONT"), "LIKE is case-insensitive");
    }

    #[test]
    fn render_matches_sqlite_style() {
        assert_eq!(Value::Integer(5).render(), "5");
        assert_eq!(Value::Real(2.0).render(), "2.0");
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::text("x").render(), "x");
    }

    #[test]
    fn grouping_treats_nulls_as_equal() {
        assert!(Value::Null.grouping_eq(&Value::Null));
        assert!(!Value::Null.grouping_eq(&Value::Integer(0)));
    }

    #[test]
    fn total_order_ranks_null_numbers_text() {
        let mut vals = [Value::text("z"), Value::Integer(3), Value::Null, Value::Real(1.5)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Real(1.5));
        assert_eq!(vals[2], Value::Integer(3));
        assert_eq!(vals[3], Value::text("z"));
    }
}
