//! Catalog types: columns, tables, foreign keys, and whole-database schemas.
//!
//! The schema layer also carries the *description metadata* that the BIRD
//! benchmark ships as per-table CSV files (column descriptions and value
//! descriptions) because SEED's evidence generation reads them.

use serde::{Deserialize, Serialize};

use crate::error::{SqlError, SqlResult};

/// Logical SQL data types used by the engine's catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    Integer,
    Real,
    Text,
    Date,
}

impl DataType {
    /// Renders the type the way a SQLite `CREATE TABLE` statement would.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Real => "REAL",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
        }
    }

    /// Parses a type name from SQL, accepting common SQLite affinity spellings.
    pub fn parse(name: &str) -> DataType {
        let upper = name.to_ascii_uppercase();
        if upper.contains("INT") {
            DataType::Integer
        } else if upper.contains("REAL")
            || upper.contains("FLOA")
            || upper.contains("DOUB")
            || upper.contains("NUMERIC")
            || upper.contains("DECIMAL")
        {
            DataType::Real
        } else if upper.contains("DATE") || upper.contains("TIME") {
            DataType::Date
        } else {
            DataType::Text
        }
    }
}

/// A column definition together with its BIRD-style description metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Physical column name as used in SQL (e.g. `NumTstTakr`).
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// Whether the column is (part of) the primary key.
    pub primary_key: bool,
    /// Human-readable column description from the description file
    /// (e.g. "Number of SAT test takers").
    pub description: String,
    /// Value description from the description file, e.g.
    /// `"F": female, "M": male` or a normal-range note.
    pub value_description: String,
}

impl ColumnDef {
    /// Creates a plain column with no description metadata.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            primary_key: false,
            description: String::new(),
            value_description: String::new(),
        }
    }

    /// Marks the column as a primary key (builder style).
    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self
    }

    /// Attaches a column description (builder style).
    pub fn described(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Attaches a value description (builder style).
    pub fn with_values(mut self, value_description: impl Into<String>) -> Self {
        self.value_description = value_description.into();
        self
    }
}

/// A foreign-key edge between two tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from_table: String,
    pub from_column: String,
    pub to_table: String,
    pub to_column: String,
}

/// Schema of a single table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema { name: name.into(), columns }
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Looks a column up by case-insensitive name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// All column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Renders a `CREATE TABLE` DDL statement for the table.
    pub fn to_create_sql(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| {
                let mut s = format!("`{}` {}", c.name, c.data_type.sql_name());
                if c.primary_key {
                    s.push_str(" PRIMARY KEY");
                }
                s
            })
            .collect();
        format!("CREATE TABLE `{}` ({})", self.name, cols.join(", "))
    }
}

/// Schema of a whole database: tables plus foreign keys plus a name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatabaseSchema {
    pub name: String,
    pub tables: Vec<TableSchema>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl DatabaseSchema {
    pub fn new(name: impl Into<String>) -> Self {
        DatabaseSchema { name: name.into(), tables: Vec::new(), foreign_keys: Vec::new() }
    }

    /// Adds a table schema, failing on duplicates.
    pub fn add_table(&mut self, table: TableSchema) -> SqlResult<()> {
        if self.table(&table.name).is_some() {
            return Err(SqlError::Schema(format!("duplicate table {}", table.name)));
        }
        self.tables.push(table);
        Ok(())
    }

    /// Adds a foreign-key edge.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// Looks up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Foreign keys touching the given table (either direction).
    pub fn foreign_keys_for(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| {
                fk.from_table.eq_ignore_ascii_case(table) || fk.to_table.eq_ignore_ascii_case(table)
            })
            .collect()
    }

    /// Finds a join path (foreign key) connecting two tables, if any.
    pub fn join_between(&self, a: &str, b: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| {
            (fk.from_table.eq_ignore_ascii_case(a) && fk.to_table.eq_ignore_ascii_case(b))
                || (fk.from_table.eq_ignore_ascii_case(b) && fk.to_table.eq_ignore_ascii_case(a))
        })
    }

    /// Total number of columns across every table.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Renders the full DDL for the database, the way text-to-SQL prompts do.
    pub fn to_ddl(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.to_create_sql());
            out.push_str(";\n");
        }
        for fk in &self.foreign_keys {
            out.push_str(&format!(
                "-- FOREIGN KEY: {}.{} -> {}.{}\n",
                fk.from_table, fk.from_column, fk.to_table, fk.to_column
            ));
        }
        out
    }

    /// Finds every (table, column) pair whose name matches `column` case-insensitively.
    pub fn resolve_column(&self, column: &str) -> Vec<(String, String)> {
        let mut hits = Vec::new();
        for t in &self.tables {
            if let Some(c) = t.column(column) {
                hits.push((t.name.clone(), c.name.clone()));
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> DatabaseSchema {
        let mut db = DatabaseSchema::new("financial");
        db.add_table(TableSchema::new(
            "account",
            vec![
                ColumnDef::new("account_id", DataType::Integer).primary_key(),
                ColumnDef::new("district_id", DataType::Integer),
                ColumnDef::new("frequency", DataType::Text)
                    .described("frequency of issuance of statements")
                    .with_values("\"POPLATEK MESICNE\" stands for monthly issuance"),
            ],
        ))
        .unwrap();
        db.add_table(TableSchema::new(
            "loan",
            vec![
                ColumnDef::new("loan_id", DataType::Integer).primary_key(),
                ColumnDef::new("account_id", DataType::Integer),
                ColumnDef::new("amount", DataType::Real),
            ],
        ))
        .unwrap();
        db.add_foreign_key(ForeignKey {
            from_table: "loan".into(),
            from_column: "account_id".into(),
            to_table: "account".into(),
            to_column: "account_id".into(),
        });
        db
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = sample_schema();
        let err = db.add_table(TableSchema::new("account", vec![])).unwrap_err();
        assert!(matches!(err, SqlError::Schema(_)));
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let db = sample_schema();
        let t = db.table("ACCOUNT").unwrap();
        assert!(t.column("Frequency").is_some());
        assert_eq!(t.column_index("FREQUENCY"), Some(2));
    }

    #[test]
    fn join_between_finds_fk_in_either_direction() {
        let db = sample_schema();
        assert!(db.join_between("account", "loan").is_some());
        assert!(db.join_between("loan", "account").is_some());
        assert!(db.join_between("loan", "loan").is_none());
    }

    #[test]
    fn ddl_contains_every_table_and_fk() {
        let db = sample_schema();
        let ddl = db.to_ddl();
        assert!(ddl.contains("CREATE TABLE `account`"));
        assert!(ddl.contains("CREATE TABLE `loan`"));
        assert!(ddl.contains("loan.account_id -> account.account_id"));
    }

    #[test]
    fn resolve_column_reports_all_owners() {
        let db = sample_schema();
        let hits = db.resolve_column("account_id");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn datatype_parse_affinities() {
        assert_eq!(DataType::parse("int"), DataType::Integer);
        assert_eq!(DataType::parse("BIGINT"), DataType::Integer);
        assert_eq!(DataType::parse("double precision"), DataType::Real);
        assert_eq!(DataType::parse("varchar(20)"), DataType::Text);
        assert_eq!(DataType::parse("datetime"), DataType::Date);
    }
}
