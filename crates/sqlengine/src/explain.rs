//! `EXPLAIN` / `EXPLAIN ANALYZE`: rendering physical plans, subquery
//! strategy decisions, and measured per-operator profiles.
//!
//! `EXPLAIN <select>` is purely static: the statement is planned (never
//! executed) and the operator tree is rendered with the same labels
//! [`crate::plan::node_label`] gives every operator, annotated with the
//! plan mode, the decorrelation verdict for each expression-position
//! subquery, and — in columnar mode — the operators whose expressions the
//! vectorized executor will bridge to the row machinery.
//!
//! `EXPLAIN ANALYZE <select>` executes the statement through
//! [`execute_select_profiled`] and attaches each operator's measured
//! invocation count, output rows, batch count, and inclusive wall-clock
//! time to its rendered line, followed by the statement's deterministic
//! [`ExecStats`](crate::result::ExecStats) summary. Profile entries are
//! keyed by node address, and the rendering walks the *same* plan
//! allocation the execution ran (via [`PlanCache::cached_plan`]), so
//! measurements can never attach to the wrong line.
//!
//! Timings live only in the rendered text; result rows, stats, and
//! [`ExecStats::cost`](crate::result::ExecStats::cost) stay bit-identical
//! to an unprofiled run (pinned by the determinism guard in
//! `tests/explain_golden.rs`).

use std::collections::HashSet;

use crate::ast::*;
use crate::columnar::{collect_aggregates, is_batch_evaluable, is_group_batch_evaluable};
use crate::decorrelate::{decorrelate, DecorrelatedKind, SubqueryPosition};
use crate::error::{SqlError, SqlResult};
use crate::exec::{
    execute_select_profiled, legacy_ref_label, order_key_output_column, select_is_grouped,
};
use crate::plan::{
    expand_projections, is_uncorrelated, node_layout, plan_select, PhysicalPlan, PlanCache,
    PlanMode, PlanNode,
};
use crate::profile::{format_nanos, QueryProfile};
use crate::result::ResultSet;
use crate::storage::Database;
use crate::value::Value;

/// Executes an `EXPLAIN [ANALYZE]` statement, returning the rendering as a
/// single-column result set (one row per line), the way interactive SQL
/// frontends expect.
pub fn explain_statement(
    db: &Database,
    ex: &ExplainStatement,
    mode: PlanMode,
) -> SqlResult<ResultSet> {
    let text = if ex.analyze {
        explain_analyze_text(db, &ex.query, mode)?
    } else {
        explain_text(db, &ex.query, mode)?
    };
    let mut rs = ResultSet::new(vec!["QUERY PLAN".into()]);
    for line in text.lines() {
        rs.rows.push(vec![Value::text(line)]);
    }
    Ok(rs)
}

/// Parses and explains a SQL string under an explicit plan mode. Accepts
/// both `EXPLAIN [ANALYZE] SELECT ...` and a bare `SELECT ...` (treated as
/// plain `EXPLAIN`).
pub fn explain_sql(db: &Database, sql: &str, mode: PlanMode) -> SqlResult<ResultSet> {
    match crate::parser::parse_statement(sql)? {
        Statement::Explain(ex) => explain_statement(db, &ex, mode),
        Statement::Select(query) => {
            explain_statement(db, &ExplainStatement { analyze: false, query }, mode)
        }
        _ => Err(SqlError::Execution("EXPLAIN supports SELECT statements only".into())),
    }
}

/// Static `EXPLAIN` rendering: plan mode, operator tree, subquery strategy
/// verdicts, and (columnar mode) the row bridges the vectorized executor
/// will take. Plans but never executes the statement.
pub fn explain_text(db: &Database, stmt: &SelectStatement, mode: PlanMode) -> SqlResult<String> {
    let mut out = format!("Plan mode: {mode:?}\n");
    match mode {
        PlanMode::NestedLoop => {
            out.push_str(&legacy_tree(stmt, &|_| String::new(), &|_| String::new()));
        }
        PlanMode::Optimized | PlanMode::Columnar => {
            let plan = plan_select(db, stmt)?;
            out.push_str(&plan.explain_annotated(&|_| String::new()));
            if mode == PlanMode::Columnar {
                out.push_str(&columnar_bridges_section(db, stmt, &plan)?);
            }
        }
    }
    out.push_str(&subqueries_section(db, stmt, mode));
    Ok(out)
}

/// `EXPLAIN ANALYZE`: executes the statement with per-operator profiling
/// and renders the plan tree annotated with the measured profile, then
/// operators outside the top-level tree (subquery plans, decorrelated
/// builds), the execution summary, and the deterministic stats block.
pub fn explain_analyze_text(
    db: &Database,
    stmt: &SelectStatement,
    mode: PlanMode,
) -> SqlResult<String> {
    let (rs, stats, plans, profile) =
        execute_select_profiled(db, stmt, mode, PlanCache::default())?;
    let mut out = format!("Plan mode: {mode:?}\n");
    let mut covered: HashSet<usize> = HashSet::new();
    match mode {
        PlanMode::NestedLoop => {
            out.push_str(&legacy_tree(
                stmt,
                &|tref| annotate_key(&profile, tref as *const TableRef as usize),
                &|join| annotate_key(&profile, join as *const Join as usize),
            ));
            if let Some(t) = &stmt.from {
                mark_covered(&profile, t as *const TableRef as usize, &mut covered);
            }
            for join in &stmt.joins {
                mark_covered(&profile, join as *const Join as usize, &mut covered);
                mark_covered(&profile, &join.table as *const TableRef as usize, &mut covered);
            }
        }
        PlanMode::Optimized | PlanMode::Columnar => {
            let plan = plans.cached_plan(stmt).ok_or_else(|| {
                SqlError::Execution(
                    "EXPLAIN ANALYZE: executed statement left no cached plan".into(),
                )
            })?;
            if let Some(root) = &plan.root {
                collect_plan_keys(root, &profile, &mut covered);
            }
            out.push_str(&plan.explain_annotated(&|node| {
                annotate_key(&profile, node as *const PlanNode as usize)
            }));
            if mode == PlanMode::Columnar {
                out.push_str(&columnar_bridges_section(db, stmt, &plan)?);
            }
        }
    }
    out.push_str(&subqueries_section(db, stmt, mode));
    let leftovers: Vec<usize> = (0..profile.ops().len()).filter(|i| !covered.contains(i)).collect();
    if !leftovers.is_empty() {
        out.push_str("Other operators (subquery plans, decorrelated builds):\n");
        for i in leftovers {
            let op = &profile.ops()[i];
            out.push_str(&format!("  {} {}\n", op.label, op.annotation()));
        }
    }
    out.push_str(&format!(
        "Execution: {} result row(s), total time {}, cost {:.1}\n",
        rs.rows.len(),
        format_nanos(profile.total_nanos),
        stats.cost()
    ));
    out.push_str("ExecStats:\n");
    for line in stats.to_string().lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

/// Annotation suffix for one operator key: the measured profile when the
/// operator ran, a fixed marker when it never did.
fn annotate_key(profile: &QueryProfile, key: usize) -> String {
    match profile.op_for_key(key) {
        Some(op) => op.annotation(),
        None => "(never executed)".to_string(),
    }
}

fn mark_covered(profile: &QueryProfile, key: usize, covered: &mut HashSet<usize>) {
    if let Some(pos) = profile.op_position(key) {
        covered.insert(pos);
    }
}

fn collect_plan_keys(node: &PlanNode, profile: &QueryProfile, covered: &mut HashSet<usize>) {
    mark_covered(profile, node as *const PlanNode as usize, covered);
    match node {
        PlanNode::HashJoin { left, right, .. } | PlanNode::NestedLoopJoin { left, right, .. } => {
            collect_plan_keys(left, profile, covered);
            collect_plan_keys(right, profile, covered);
        }
        PlanNode::SeqScan { .. } | PlanNode::SubqueryScan { .. } => {}
    }
}

/// Renders the synthetic left-deep tree nested-loop mode executes: the last
/// join is the root, the FROM relation is the deepest leaf, and each join's
/// right-hand table sits beside the subtree it joins against. Annotation
/// closures receive the AST nodes the legacy executor profiles by address.
fn legacy_tree(
    stmt: &SelectStatement,
    annotate_ref: &dyn Fn(&TableRef) -> String,
    annotate_join: &dyn Fn(&Join) -> String,
) -> String {
    fn line(out: &mut String, depth: usize, label: String, suffix: String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&label);
        if !suffix.is_empty() {
            out.push(' ');
            out.push_str(&suffix);
        }
        out.push('\n');
    }
    fn emit(
        stmt: &SelectStatement,
        joins_left: usize,
        depth: usize,
        annotate_ref: &dyn Fn(&TableRef) -> String,
        annotate_join: &dyn Fn(&Join) -> String,
        out: &mut String,
    ) {
        if joins_left == 0 {
            match &stmt.from {
                Some(t) => line(out, depth, legacy_ref_label(t), annotate_ref(t)),
                None => line(out, depth, "Result (no FROM)".into(), String::new()),
            }
            return;
        }
        let join = &stmt.joins[joins_left - 1];
        line(out, depth, format!("NestedLoopJoin ({:?})", join.kind), annotate_join(join));
        emit(stmt, joins_left - 1, depth + 1, annotate_ref, annotate_join, out);
        line(out, depth + 1, legacy_ref_label(&join.table), annotate_ref(&join.table));
    }
    let mut out = String::new();
    emit(stmt, stmt.joins.len(), 0, annotate_ref, annotate_join, &mut out);
    if stmt.where_clause.is_some() {
        out.push_str("Filter: WHERE applied after the cross product\n");
    }
    out
}

/// Lists every expression-position subquery of the statement with the
/// strategy the executor will take for it (uncorrelated result caching,
/// decorrelation into a hash join, or per-outer-row re-execution). Empty
/// string when the statement has no subqueries.
fn subqueries_section(db: &Database, stmt: &SelectStatement, mode: PlanMode) -> String {
    let mut subs: Vec<(SubqueryPosition, &SelectStatement)> = Vec::new();
    collect_statement_subqueries(stmt, &mut subs);
    if subs.is_empty() {
        return String::new();
    }
    let mut out = String::from("Subqueries:\n");
    for (pos, q) in subs {
        let kind = match pos {
            SubqueryPosition::Exists => "EXISTS",
            SubqueryPosition::In => "IN",
            SubqueryPosition::Scalar => "scalar",
        };
        out.push_str(&format!("  {kind} subquery: {}\n", subquery_verdict(db, q, pos, mode)));
    }
    out
}

fn subquery_verdict(
    db: &Database,
    q: &SelectStatement,
    pos: SubqueryPosition,
    mode: PlanMode,
) -> String {
    if mode == PlanMode::NestedLoop {
        return "re-executed per outer row (reference mode)".into();
    }
    if is_uncorrelated(db, q) {
        return "uncorrelated: executes once, result-cached".into();
    }
    match decorrelate(db, q, pos) {
        Some(d) => {
            let shape = match d.kind {
                DecorrelatedKind::SemiJoin => "a hash semi join",
                DecorrelatedKind::InSemiJoin => "a value-carrying hash semi join",
                DecorrelatedKind::GroupJoin { .. } => "a lazily-aggregated group join",
            };
            format!("decorrelated into {shape}")
        }
        None => "decorrelation refused; re-executed per outer row (plan-cached)".into(),
    }
}

/// Collects every top-level expression-position subquery of the statement
/// (subqueries nested inside other subqueries plan and report for
/// themselves when they execute).
fn collect_statement_subqueries<'a>(
    stmt: &'a SelectStatement,
    out: &mut Vec<(SubqueryPosition, &'a SelectStatement)>,
) {
    for p in &stmt.projections {
        if let Projection::Expr { expr, .. } = p {
            collect_expr_subqueries(expr, out);
        }
    }
    for join in &stmt.joins {
        if let Some(on) = &join.on {
            collect_expr_subqueries(on, out);
        }
    }
    if let Some(w) = &stmt.where_clause {
        collect_expr_subqueries(w, out);
    }
    for g in &stmt.group_by {
        collect_expr_subqueries(g, out);
    }
    if let Some(h) = &stmt.having {
        collect_expr_subqueries(h, out);
    }
    for o in &stmt.order_by {
        collect_expr_subqueries(&o.expr, out);
    }
}

fn collect_expr_subqueries<'a>(
    expr: &'a Expr,
    out: &mut Vec<(SubqueryPosition, &'a SelectStatement)>,
) {
    match expr {
        Expr::Exists { query, .. } => out.push((SubqueryPosition::Exists, query)),
        Expr::InSubquery { expr, query, .. } => {
            collect_expr_subqueries(expr, out);
            out.push((SubqueryPosition::In, query));
        }
        Expr::ScalarSubquery(query) => out.push((SubqueryPosition::Scalar, query)),
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Compare { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::Concat { left, right } => {
            collect_expr_subqueries(left, out);
            collect_expr_subqueries(right, out);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_expr_subqueries(a, out);
            collect_expr_subqueries(b, out);
        }
        Expr::Not(e) | Expr::Neg(e) => collect_expr_subqueries(e, out),
        Expr::Like { expr, pattern, .. } => {
            collect_expr_subqueries(expr, out);
            collect_expr_subqueries(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_expr_subqueries(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_expr_subqueries(expr, out);
            for e in list {
                collect_expr_subqueries(e, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_expr_subqueries(expr, out);
            collect_expr_subqueries(low, out);
            collect_expr_subqueries(high, out);
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_expr_subqueries(a, out);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_expr_subqueries(a, out);
            }
        }
        Expr::Cast { expr, .. } => collect_expr_subqueries(expr, out),
        Expr::Case { operand, branches, else_branch } => {
            if let Some(e) = operand {
                collect_expr_subqueries(e, out);
            }
            for (w, t) in branches {
                collect_expr_subqueries(w, out);
                collect_expr_subqueries(t, out);
            }
            if let Some(e) = else_branch {
                collect_expr_subqueries(e, out);
            }
        }
    }
}

/// Static preview of where the columnar executor will bridge to the row
/// machinery: walks the plan tree and the statement tail applying the same
/// batch-expressibility analysis ([`is_batch_evaluable`] /
/// [`is_group_batch_evaluable`]) the runtime applies per operator. A
/// statement with no notes executes fully vectorized.
fn columnar_bridges_section(
    db: &Database,
    stmt: &SelectStatement,
    plan: &PhysicalPlan,
) -> SqlResult<String> {
    let mut notes: Vec<String> = Vec::new();
    if let Some(root) = &plan.root {
        collect_node_bridges(db, root, &mut notes)?;
    }
    for pred in &plan.where_remnant {
        if !is_batch_evaluable(pred, &plan.layout) {
            notes.push("post-join WHERE conjunct: row-bridged".into());
        }
    }
    let (headers, proj_exprs) = expand_projections(&stmt.projections, &plan.layout)?;
    if select_is_grouped(stmt) {
        for key in &stmt.group_by {
            if !is_batch_evaluable(key, &plan.layout) {
                notes.push("GROUP BY key: row-bridged".into());
            }
        }
        let mut aggs: Vec<&Expr> = Vec::new();
        for e in proj_exprs.iter().chain(stmt.having.iter()) {
            collect_aggregates(e, &mut aggs);
        }
        for item in &stmt.order_by {
            collect_aggregates(&item.expr, &mut aggs);
        }
        for agg in aggs {
            if let Expr::Aggregate { arg: Some(a), .. } = agg {
                if !is_batch_evaluable(a, &plan.layout) {
                    notes.push("aggregate argument: row-bridged".into());
                }
            }
        }
        if let Some(h) = &stmt.having {
            if !is_group_batch_evaluable(h, &plan.layout) {
                notes.push("HAVING: row-bridged over the group table".into());
            }
        }
        for (header, expr) in headers.iter().zip(&proj_exprs) {
            if !is_group_batch_evaluable(expr, &plan.layout) {
                notes.push(format!("projection `{header}`: row-bridged over the group table"));
            }
        }
        for item in &stmt.order_by {
            let src = order_key_output_column(
                &item.expr,
                proj_exprs.len(),
                &headers,
                &stmt.projections,
                &plan.layout,
            );
            if src.is_none() && !is_group_batch_evaluable(&item.expr, &plan.layout) {
                notes.push("ORDER BY key: row-bridged over the group table".into());
            }
        }
    } else {
        for (header, expr) in headers.iter().zip(&proj_exprs) {
            if !is_batch_evaluable(expr, &plan.layout) {
                notes.push(format!("projection `{header}`: row-bridged"));
            }
        }
        for item in &stmt.order_by {
            let src = order_key_output_column(
                &item.expr,
                proj_exprs.len(),
                &headers,
                &stmt.projections,
                &plan.layout,
            );
            if src.is_none() && !is_batch_evaluable(&item.expr, &plan.layout) {
                notes.push("ORDER BY key: row-bridged".into());
            }
        }
    }
    if notes.is_empty() {
        return Ok("Columnar: fully vectorized (no row bridges)\n".to_string());
    }
    let mut out = String::from("Columnar bridges:\n");
    for note in notes {
        out.push_str("  ");
        out.push_str(&note);
        out.push('\n');
    }
    Ok(out)
}

fn collect_node_bridges(db: &Database, node: &PlanNode, notes: &mut Vec<String>) -> SqlResult<()> {
    match node {
        PlanNode::SeqScan { pushed, .. } | PlanNode::SubqueryScan { pushed, .. } => {
            let layout = node_layout(db, node)?;
            for pred in pushed {
                if !is_batch_evaluable(pred, &layout) {
                    notes.push(format!(
                        "{}: pushed predicate row-bridged",
                        crate::plan::node_label(node)
                    ));
                }
            }
        }
        PlanNode::HashJoin { left, right, on, .. } => {
            collect_node_bridges(db, left, notes)?;
            collect_node_bridges(db, right, notes)?;
            if let Some(pred) = on {
                let layout = node_layout(db, node)?;
                if !is_batch_evaluable(pred, &layout) {
                    notes.push(format!(
                        "{}: ON re-check row-bridged",
                        crate::plan::node_label(node)
                    ));
                }
            }
        }
        PlanNode::NestedLoopJoin { left, right, .. } => {
            collect_node_bridges(db, left, notes)?;
            collect_node_bridges(db, right, notes)?;
            notes.push(format!(
                "{}: row-path join over batched inputs",
                crate::plan::node_label(node)
            ));
        }
    }
    Ok(())
}
