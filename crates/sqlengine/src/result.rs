//! Query results and the result-comparison semantics used by execution accuracy.

use crate::value::Value;

/// A query result: column names plus rows.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    pub fn new(columns: Vec<String>) -> Self {
        ResultSet { columns, rows: Vec::new() }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a 1x1 result, if that is what this is.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Canonical multiset fingerprint of the rows: each row rendered, rows
    /// sorted. Column names are ignored, mirroring how the BIRD/Spider
    /// execution-accuracy metric compares result *contents* only.
    pub fn fingerprint(&self) -> Vec<String> {
        let mut rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| r.iter().map(render_for_comparison).collect::<Vec<_>>().join("\u{1}"))
            .collect();
        rows.sort();
        rows
    }

    /// Execution-accuracy equivalence: same multiset of rows (order-insensitive,
    /// column-name-insensitive). Numeric values are compared with a small
    /// tolerance so `2` and `2.0` and float round-off agree.
    pub fn result_eq(&self, other: &ResultSet) -> bool {
        self.fingerprint() == other.fingerprint()
    }

    /// Pretty-prints the first `max_rows` rows as an aligned text table, the
    /// way sample-SQL results are embedded in SEED prompts.
    pub fn render_table(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            let cells: Vec<String> = row.iter().map(|v| v.render()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - max_rows));
        }
        out
    }
}

/// Renders a value for execution-accuracy comparison: numbers are normalized
/// so that integer/real representations of the same quantity compare equal.
fn render_for_comparison(v: &Value) -> String {
    match v {
        Value::Null => "<null>".to_string(),
        Value::Integer(i) => format!("{:.6}", *i as f64),
        Value::Real(r) => format!("{:.6}", r),
        Value::Text(s) => format!("t:{s}"),
    }
}

/// Execution statistics used by the valid-efficiency-score (VES) metric.
///
/// The paper measures wall-clock execution time on SQLite; a synthetic engine
/// measures deterministic work instead (rows scanned, comparisons made, and
/// index/hash operations), which preserves the "reward cheaper queries"
/// behaviour without timing noise.
///
/// Per-unit weights mirror relative hardware cost: a full-scan row visit is
/// the unit, an expression evaluation is cheap, a hash-table insert or probe
/// is cheaper than re-scanning, and a primary-key index lookup costs a small
/// constant regardless of table size. VES compares costs as ratios per
/// question, so the absolute scale is irrelevant — only determinism and
/// monotonicity ("less work ⇒ lower cost") matter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows visited across all scans and join loops.
    pub rows_scanned: u64,
    /// Predicate/expression evaluations performed.
    pub evaluations: u64,
    /// Primary-key index point lookups.
    pub index_lookups: u64,
    /// Rows inserted into join hash tables.
    pub hash_build_rows: u64,
    /// Join hash-table probe operations.
    pub hash_probes: u64,
    /// Physical plans served from the per-statement plan cache. Correlated
    /// subqueries re-execute per outer row; every re-execution after the
    /// first is a cache hit instead of a fresh planning pass.
    pub plan_cache_hits: u64,
    /// Physical plans actually computed (cache misses).
    pub plan_cache_misses: u64,
    /// Uncorrelated scalar/`IN`/`EXISTS` subquery evaluations answered from
    /// the per-statement result cache instead of re-executing the subquery.
    pub subquery_result_hits: u64,
    /// Uncorrelated subqueries actually executed (result-cache misses); a
    /// correlated subquery is never cacheable and counts in neither bucket.
    pub subquery_result_misses: u64,
    /// Correlated subqueries rewritten into hash semi/anti/group joins whose
    /// build side was materialized (once per enclosing statement execution).
    /// The work the build does is counted in the ordinary scan/hash units;
    /// this counter proves the rewrite *engaged*.
    pub decorrelated_subqueries: u64,
    /// Per-outer-row evaluations of a decorrelated subquery answered by a
    /// hash probe of the build side instead of a re-execution.
    pub decorrelated_probes: u64,
    /// Group-join (correlated scalar aggregate) probes answered from the
    /// per-distinct-outer-key memo without re-aggregating the matched rows.
    pub decorrelated_memo_hits: u64,
    /// `DataChunk` batches materialized by columnar operators
    /// ([`PlanMode::Columnar`](crate::plan::PlanMode::Columnar) only).
    /// Observability, not cost: the work batches carry is already counted
    /// in the ordinary scan/eval/hash units, identically to the row path.
    pub batches_built: u64,
    /// Total rows carried by those batches.
    pub batch_rows: u64,
    /// *Operators* (predicates, join re-checks, group keys, aggregate
    /// arguments, HAVING, projections, ORDER BY keys) the columnar executor
    /// bridged to the row-at-a-time expression machinery because the
    /// expression was not batch-evaluable (subqueries, outer references,
    /// ambiguous columns) — counted once per operator per statement, not
    /// once per statement: a single opaque predicate no longer forfeits
    /// columnar execution for everything around it. Deterministic per
    /// query; proves how much of a workload is actually vectorized.
    pub columnar_fallbacks: u64,
    /// Statements that *mixed* modes: executed columnar but bridged at
    /// least one operator to the row machinery (`columnar_fallbacks > 0`
    /// during that statement's execution, nested subqueries included — a
    /// nested fallback marks every enclosing statement partial too).
    pub columnar_partial: u64,
}

impl ExecStats {
    /// Per-probe weight relative to a scanned row.
    pub const HASH_PROBE_WEIGHT: f64 = 0.3;
    /// Per-build-row weight relative to a scanned row.
    pub const HASH_BUILD_WEIGHT: f64 = 0.5;
    /// Flat cost of one PK index lookup.
    pub const INDEX_LOOKUP_WEIGHT: f64 = 2.0;

    /// Scalar cost used as the VES time proxy (never zero).
    pub fn cost(&self) -> f64 {
        1.0 + self.rows_scanned as f64
            + 0.1 * self.evaluations as f64
            + Self::INDEX_LOOKUP_WEIGHT * self.index_lookups as f64
            + Self::HASH_BUILD_WEIGHT * self.hash_build_rows as f64
            + Self::HASH_PROBE_WEIGHT * self.hash_probes as f64
    }

    /// Accumulates another stats block into this one, field by field.
    ///
    /// This is the *single* accumulation path: every place that sums stats
    /// blocks (per-worker totals in the parallel runners, batch totals in
    /// `seed-serve`, report aggregation) goes through `merge`, so adding a
    /// counter here is sufficient to make it flow everywhere without
    /// double-counting.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.evaluations += other.evaluations;
        self.index_lookups += other.index_lookups;
        self.hash_build_rows += other.hash_build_rows;
        self.hash_probes += other.hash_probes;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.subquery_result_hits += other.subquery_result_hits;
        self.subquery_result_misses += other.subquery_result_misses;
        self.decorrelated_subqueries += other.decorrelated_subqueries;
        self.decorrelated_probes += other.decorrelated_probes;
        self.decorrelated_memo_hits += other.decorrelated_memo_hits;
        self.batches_built += other.batches_built;
        self.batch_rows += other.batch_rows;
        self.columnar_fallbacks += other.columnar_fallbacks;
        self.columnar_partial += other.columnar_partial;
    }

    /// Every counter as a `(name, value)` pair, in struct declaration
    /// order. The single enumeration point behind [`ExecStats`]'s `Display`
    /// and the eval/serve reporting tables, so a newly added counter only
    /// needs listing here to appear everywhere.
    pub fn counters(&self) -> [(&'static str, u64); 16] {
        [
            ("rows_scanned", self.rows_scanned),
            ("evaluations", self.evaluations),
            ("index_lookups", self.index_lookups),
            ("hash_build_rows", self.hash_build_rows),
            ("hash_probes", self.hash_probes),
            ("plan_cache_hits", self.plan_cache_hits),
            ("plan_cache_misses", self.plan_cache_misses),
            ("subquery_result_hits", self.subquery_result_hits),
            ("subquery_result_misses", self.subquery_result_misses),
            ("decorrelated_subqueries", self.decorrelated_subqueries),
            ("decorrelated_probes", self.decorrelated_probes),
            ("decorrelated_memo_hits", self.decorrelated_memo_hits),
            ("batches_built", self.batches_built),
            ("batch_rows", self.batch_rows),
            ("columnar_fallbacks", self.columnar_fallbacks),
            ("columnar_partial", self.columnar_partial),
        ]
    }
}

impl std::fmt::Display for ExecStats {
    /// Human-readable summary table: one aligned `name  value` line per
    /// counter (zero counters included, so diffs line up), then the derived
    /// VES cost. Used by `eval::report`, `EXPLAIN ANALYZE`, and the serve
    /// slow-query log.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let counters = self.counters();
        let width = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in counters {
            writeln!(f, "{name:width$}  {value}")?;
        }
        write!(f, "{:width$}  {:.1}", "cost", self.cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(cols: &[&str], rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet { columns: cols.iter().map(|s| s.to_string()).collect(), rows }
    }

    #[test]
    fn result_eq_ignores_row_order_and_column_names() {
        let a = rs(&["a"], vec![vec![1.into()], vec![2.into()]]);
        let b = rs(&["other_name"], vec![vec![2.into()], vec![1.into()]]);
        assert!(a.result_eq(&b));
    }

    #[test]
    fn result_eq_respects_multiset_semantics() {
        let a = rs(&["a"], vec![vec![1.into()], vec![1.into()]]);
        let b = rs(&["a"], vec![vec![1.into()]]);
        assert!(!a.result_eq(&b));
    }

    #[test]
    fn result_eq_numeric_tolerance() {
        let a = rs(&["a"], vec![vec![Value::Integer(2)]]);
        let b = rs(&["a"], vec![vec![Value::Real(2.0)]]);
        assert!(a.result_eq(&b));
    }

    #[test]
    fn result_eq_distinguishes_text_from_number() {
        let a = rs(&["a"], vec![vec![Value::text("2")]]);
        let b = rs(&["a"], vec![vec![Value::Integer(2)]]);
        assert!(!a.result_eq(&b));
    }

    #[test]
    fn scalar_only_for_one_by_one() {
        let a = rs(&["a"], vec![vec![5.into()]]);
        assert_eq!(a.scalar(), Some(&Value::Integer(5)));
        let b = rs(&["a"], vec![vec![5.into()], vec![6.into()]]);
        assert!(b.scalar().is_none());
    }

    #[test]
    fn render_table_truncates() {
        let a = rs(&["x"], (0..10).map(|i| vec![Value::Integer(i)]).collect());
        let s = a.render_table(3);
        assert!(s.contains("7 more rows"));
    }

    #[test]
    fn exec_stats_cost_monotone() {
        let cheap = ExecStats { rows_scanned: 10, evaluations: 5, ..Default::default() };
        let pricey = ExecStats { rows_scanned: 10_000, evaluations: 5_000, ..Default::default() };
        assert!(pricey.cost() > cheap.cost());
        let mut total = cheap;
        total.merge(&pricey);
        assert_eq!(total.rows_scanned, 10_010);
    }

    #[test]
    fn exec_stats_hash_and_index_units_are_cheaper_than_scans() {
        // A hash probe or build row must undercut a scanned row, and all
        // new units must contribute to cost and merge.
        let scan = ExecStats { rows_scanned: 100, ..Default::default() };
        let hashed = ExecStats { hash_build_rows: 50, hash_probes: 50, ..Default::default() };
        assert!(hashed.cost() < scan.cost());
        let lookup = ExecStats { index_lookups: 1, rows_scanned: 1, ..Default::default() };
        assert!(lookup.cost() < scan.cost());
        let mut total = hashed;
        total.merge(&lookup);
        assert_eq!(total.index_lookups, 1);
        assert_eq!(total.hash_build_rows, 50);
        assert_eq!(total.hash_probes, 50);
    }

    #[test]
    fn exec_stats_cache_counters_merge_without_affecting_cost() {
        let mut a = ExecStats {
            plan_cache_hits: 3,
            plan_cache_misses: 1,
            subquery_result_hits: 4,
            subquery_result_misses: 1,
            ..Default::default()
        };
        let b = ExecStats {
            plan_cache_hits: 2,
            plan_cache_misses: 2,
            subquery_result_hits: 1,
            subquery_result_misses: 2,
            ..Default::default()
        };
        // Cache counters are observability, not part of the VES cost proxy:
        // a cached plan does the same execution work as a fresh one, and a
        // cached subquery result already reflects its (single) execution's
        // work in the ordinary counters.
        assert_eq!(a.cost(), ExecStats::default().cost());
        a.merge(&b);
        assert_eq!(a.plan_cache_hits, 5);
        assert_eq!(a.plan_cache_misses, 3);
        assert_eq!(a.subquery_result_hits, 5);
        assert_eq!(a.subquery_result_misses, 3);
    }

    #[test]
    fn exec_stats_batch_counters_merge_without_affecting_cost() {
        // Batch counters are columnar observability; the rows inside each
        // batch are already costed through the ordinary scan/eval/hash
        // units, so counting batches in cost() would double-charge the
        // columnar mode and break cross-mode cost comparisons (e.g. the
        // hash-join-cheaper-than-nested-loop invariant).
        let mut a = ExecStats {
            batches_built: 4,
            batch_rows: 4096,
            columnar_fallbacks: 1,
            columnar_partial: 1,
            ..Default::default()
        };
        assert_eq!(a.cost(), ExecStats::default().cost());
        let b = ExecStats {
            batches_built: 2,
            batch_rows: 100,
            columnar_fallbacks: 2,
            columnar_partial: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.batches_built, 6);
        assert_eq!(a.batch_rows, 4196);
        assert_eq!(a.columnar_fallbacks, 3);
        assert_eq!(a.columnar_partial, 2);
    }

    #[test]
    fn exec_stats_display_lists_every_counter_and_cost() {
        let stats = ExecStats { rows_scanned: 42, hash_probes: 7, ..Default::default() };
        let rendered = stats.to_string();
        for (name, value) in stats.counters() {
            assert!(
                rendered.contains(name) && rendered.contains(&value.to_string()),
                "Display missing {name}={value}:\n{rendered}"
            );
        }
        assert_eq!(stats.counters().len(), 16);
        assert!(rendered.contains("cost"));
        assert!(rendered.contains(&format!("{:.1}", stats.cost())));
        assert!(!rendered.ends_with('\n'));
    }

    #[test]
    fn exec_stats_decorrelation_counters_merge_without_affecting_cost() {
        // Decorrelation counters are engagement observability; the build's
        // and probes' actual work is already in the scan/hash units.
        let mut a = ExecStats {
            decorrelated_subqueries: 1,
            decorrelated_probes: 10,
            decorrelated_memo_hits: 4,
            ..Default::default()
        };
        assert_eq!(a.cost(), ExecStats::default().cost());
        let b = ExecStats {
            decorrelated_subqueries: 2,
            decorrelated_probes: 5,
            decorrelated_memo_hits: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.decorrelated_subqueries, 3);
        assert_eq!(a.decorrelated_probes, 15);
        assert_eq!(a.decorrelated_memo_hits, 5);
    }
}
